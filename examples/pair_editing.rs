//! Collaborative editing with floor control: two participants share one
//! editor window; BFCP (Appendix A) moderates whose keyboard and mouse
//! reach the AH, including a temporary keyboard block via HID status.
//!
//! ```text
//! cargo run --release --example pair_editing
//! ```

use adshare::prelude::*;

fn pump(session: &mut SimSession, ms: u64) {
    for _ in 0..ms {
        session.step(1_000);
    }
}

fn main() {
    let mut desktop = Desktop::new(800, 600);
    let editor = desktop.create_window(1, Rect::new(100, 80, 480, 360), [252, 252, 252, 255]);
    let mut session = SimSession::new(desktop, AhConfig::default(), 77);
    session.ah.set_require_floor(true); // HIP requires holding the floor

    let alice = session.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        1,
    );
    let bob = session.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    session
        .run_until(10_000, 20_000_000, |s| {
            s.converged(alice) && s.converged(bob)
        })
        .expect("both sync");
    println!("alice and bob see the editor");

    let type_text = |s: &mut SimSession, who: usize, text: &str| {
        let msg = HipMessage::KeyTyped {
            window_id: WireWindowId(editor.0),
            text: text.into(),
        };
        s.send_hip(who, &msg);
    };
    let click = |s: &mut SimSession, who: usize| {
        s.send_hip(
            who,
            &HipMessage::MousePressed {
                window_id: WireWindowId(editor.0),
                button: MouseButton::Left,
                left: 300,
                top: 200,
            },
        );
    };

    // Without the floor, nothing gets through.
    type_text(&mut session, alice, "hello?");
    pump(&mut session, 200);
    println!(
        "before floor grant: injected {}, rejected {}",
        session.ah.stats().hip_injected,
        session.ah.stats().hip_rejected
    );

    // Alice requests the floor and edits.
    session.request_floor(alice);
    println!(
        "alice floor state: {:?}",
        session.participant(alice).floor().state()
    );
    type_text(&mut session, alice, "fn main() {");
    click(&mut session, alice);
    pump(&mut session, 200);

    // Bob asks too and is queued FIFO.
    session.request_floor(bob);
    println!(
        "bob floor state:   {:?}",
        session.participant(bob).floor().state()
    );
    type_text(&mut session, bob, "let me try"); // rejected: queued, not holding
    pump(&mut session, 200);

    // The AH temporarily blocks keyboard input (a password prompt gained
    // focus) without revoking the floor — Appendix A HID status.
    let notices = session.ah.set_hid_status(HidStatus::MouseAllowed);
    println!(
        "AH blocked keyboards ({} BFCP notice(s) sent)",
        notices.len()
    );
    type_text(&mut session, alice, "blocked");
    click(&mut session, alice); // mouse still fine
    pump(&mut session, 200);
    let _ = session.ah.set_hid_status(HidStatus::AllAllowed);

    // Alice hands over; Bob is granted automatically (FIFO).
    session.release_floor(alice);
    println!(
        "after release, bob: {:?}",
        session.participant(bob).floor().state()
    );
    type_text(&mut session, bob, "    println!(\"hi\");");
    pump(&mut session, 200);

    println!("\n--- injected events at the AH (in order) ---");
    for (user, ev) in session.ah.take_injected() {
        let who = if user == 1 { "alice" } else { "bob" };
        match ev {
            HipMessage::KeyTyped { text, .. } => println!("  {who}: typed {text:?}"),
            HipMessage::MousePressed { left, top, .. } => {
                println!("  {who}: click at ({left},{top})")
            }
            other => println!("  {who}: {other:?}"),
        }
    }
    let s = session.ah.stats();
    println!(
        "\ntotals: injected {}, rejected {} (no-floor, queued, or HID-blocked)",
        s.hip_injected, s.hip_rejected
    );
}
