//! The same sans-IO protocol stack over *real* UDP sockets (loopback):
//! an AH thread paints and packetizes; a participant ingests datagrams,
//! sends a real PLI back, and converges — no simulator involved.
//!
//! ```text
//! cargo run --release --example loopback_udp
//! ```

use std::time::{Duration, Instant};

use adshare::codec::codec::default_pt;
use adshare::codec::{Codec, CodecKind};
use adshare::netsim::real::RealUdp;
use adshare::prelude::*;
use adshare::remoting::message::{RegionUpdate, RemotingMessage, WindowManagerInfo, WindowRecord};
use adshare::remoting::packetizer::RemotingPacketizer;
use adshare::rtp::rtcp::{decode_compound, RtcpPacket};
use adshare::rtp::session::RtpSender;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::io::Result<()> {
    // Real sockets on loopback.
    let mut ah_sock = RealUdp::bind()?;
    let mut viewer_sock = RealUdp::bind()?;
    ah_sock.set_peer(viewer_sock.local_addr()?);
    viewer_sock.set_peer(ah_sock.local_addr()?);
    println!(
        "AH on {}, viewer on {}",
        ah_sock.local_addr()?,
        viewer_sock.local_addr()?
    );

    // AH state: one shared window with content.
    let mut desktop = Desktop::new(640, 480);
    let win = desktop.create_window(1, Rect::new(50, 40, 240, 180), [250, 250, 250, 255]);
    let _ = desktop.take_damage(); // the PLI below will trigger the full send
    let _ = desktop.take_wm_dirty();

    let mut rng = StdRng::seed_from_u64(1);
    let mut packetizer = RemotingPacketizer::new(RtpSender::new(0xA40001, 99, &mut rng), 1400);
    let png = adshare::codec::codec::AnyCodec::new(CodecKind::Png);

    // Viewer state: the very same Participant type the simulator uses.
    let mut viewer = Participant::new(1, Layout::Original, true, 2);
    viewer.request_refresh(); // join PLI (§4.3)

    let start = Instant::now();
    let ticks = |t0: Instant| (t0.elapsed().as_micros() as u64) * 9 / 100;
    let mut frames_sent = 0u32;
    let deadline = Instant::now() + Duration::from_secs(10);

    while Instant::now() < deadline {
        // Viewer → AH: RTCP (the join PLI, NACKs if datagrams drop).
        if let Some(rtcp) = viewer.take_rtcp() {
            viewer_sock.send(&rtcp)?;
        }
        for dg in ah_sock.recv_all()? {
            if let Ok(pkts) = decode_compound(&dg) {
                for pkt in pkts {
                    if matches!(pkt, RtcpPacket::Pli(_)) {
                        // Full refresh: WMI, then the whole window.
                        let rec = desktop.wm().records()[0];
                        let wmi = RemotingMessage::WindowManagerInfo(WindowManagerInfo {
                            windows: vec![WindowRecord {
                                window_id: WireWindowId(rec.id.0),
                                group_id: rec.group,
                                left: rec.rect.left,
                                top: rec.rect.top,
                                width: rec.rect.width,
                                height: rec.rect.height,
                            }],
                        });
                        let content = desktop.window_content(win).unwrap();
                        let full = RemotingMessage::RegionUpdate(RegionUpdate {
                            window_id: WireWindowId(rec.id.0),
                            payload_type: default_pt::PNG,
                            left: rec.rect.left,
                            top: rec.rect.top,
                            payload: Bytes::from(png.encode(content)),
                        });
                        for msg in [&wmi, &full] {
                            for pkt in packetizer.packetize(msg, ticks(start) as u32).unwrap() {
                                ah_sock.send(&pkt.encode())?;
                            }
                        }
                    }
                }
            }
        }

        // AH paints a moving box ~20 times, sending incremental updates.
        if frames_sent < 20 {
            let x = 10 + frames_sent * 8;
            desktop.fill(win, Rect::new(x, 60, 16, 16), [200, 30, 30, 255]);
            for d in desktop.take_damage() {
                let rec = *desktop.wm().get(d.window).unwrap();
                let crop = desktop
                    .window_content(d.window)
                    .unwrap()
                    .crop(d.rect)
                    .unwrap();
                let update = RemotingMessage::RegionUpdate(RegionUpdate {
                    window_id: WireWindowId(d.window.0),
                    payload_type: default_pt::PNG,
                    left: rec.rect.left + d.rect.left,
                    top: rec.rect.top + d.rect.top,
                    payload: Bytes::from(png.encode(&crop)),
                });
                for pkt in packetizer.packetize(&update, ticks(start) as u32).unwrap() {
                    ah_sock.send(&pkt.encode())?;
                }
            }
            frames_sent += 1;
        }

        // Viewer ingests whatever arrived.
        for dg in viewer_sock.recv_all()? {
            viewer.handle_datagram(&dg, ticks(start));
        }

        // Converged?
        if frames_sent >= 20 {
            if let Some(local) = viewer.window_content(win.0) {
                if local == desktop.window_content(win).unwrap() {
                    println!(
                        "converged over real UDP in {:?}: {} regions applied, {} PLIs, {} NACKs",
                        start.elapsed(),
                        viewer.stats().regions_applied,
                        viewer.stats().plis_sent,
                        viewer.stats().nacks_sent,
                    );
                    return Ok(());
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("did not converge within 10 s (loopback should never do this)");
    std::process::exit(1);
}
