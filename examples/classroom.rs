//! E-learning scenario: an instructor shares a slide deck + demo video to
//! a classroom. Most students sit on a lossy multicast tree; one remote
//! student uses unicast UDP over a worse path; a latecomer joins mid-class
//! and bootstraps with a PLI (draft §4.3).
//!
//! ```text
//! cargo run --release --example classroom
//! ```

use adshare::prelude::*;
use adshare::screen::workload::{Scrolling, Video, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut desktop = Desktop::new(1024, 768);
    let slides = desktop.create_window(1, Rect::new(40, 30, 640, 420), [252, 252, 252, 255]);
    let demo = desktop.create_window(2, Rect::new(700, 60, 280, 210), [10, 10, 10, 255]);

    let cfg = AhConfig::default();
    let mut session = SimSession::new(desktop, cfg, 2024);

    // Five classroom students on multicast, each with 1% independent loss.
    let classroom_link = LinkConfig {
        loss: 0.01,
        delay_us: 8_000,
        jitter_us: 2_000,
        ..Default::default()
    };
    let students: Vec<usize> = (0..5)
        .map(|i| {
            session.add_multicast_participant(
                Layout::Original,
                classroom_link,
                LinkConfig::default(),
                100 + i,
            )
        })
        .collect();

    // One remote student over a 3%-loss unicast path.
    let remote_link = LinkConfig {
        loss: 0.03,
        delay_us: 45_000,
        jitter_us: 10_000,
        ..Default::default()
    };
    let remote = session.add_udp_participant(
        Layout::Packed {
            width: 800,
            height: 600,
        },
        remote_link,
        LinkConfig {
            delay_us: 45_000,
            ..Default::default()
        },
        Some(4_000_000), // AH paces this path at 4 Mbit/s (§4.3)
        7,
    );

    let everyone: Vec<usize> = students
        .iter()
        .copied()
        .chain(std::iter::once(remote))
        .collect();
    session
        .run_until(10_000, 60_000_000, |s| {
            everyone.iter().all(|&p| s.converged(p))
        })
        .expect("class syncs");
    println!("class of {} synced; lecture starts", everyone.len());

    // 10 seconds of lecture: slide scrolling + the demo video playing.
    let mut deck = Scrolling::new(slides, 1);
    let mut video = Video::new(demo, Rect::new(10, 10, 260, 190));
    let mut rng = StdRng::seed_from_u64(5);
    let mut late_student = None;
    for tick in 0..300 {
        if tick % 30 == 0 {
            deck.tick(session.ah.desktop_mut(), &mut rng);
        }
        video.tick(session.ah.desktop_mut(), &mut rng);
        session.step(33_333);
        if tick == 150 {
            // A latecomer joins mid-class and must bootstrap via PLI.
            late_student = Some(session.add_multicast_participant(
                Layout::Original,
                classroom_link,
                LinkConfig::default(),
                999,
            ));
            println!(
                "latecomer joined at t={:.1}s",
                session.clock.now_us() as f64 / 1e6
            );
        }
    }

    // Lecture pauses; everyone should reach the final screen.
    let late = late_student.expect("joined");
    let all: Vec<usize> = everyone
        .iter()
        .copied()
        .chain(std::iter::once(late))
        .collect();
    let t = session
        .run_until(10_000, 60_000_000, |s| all.iter().all(|&p| s.converged(p)))
        .expect("everyone consistent after the pause");
    println!(
        "class consistent {:.1} ms after the lecture paused",
        t as f64 / 1000.0
    );

    let ah = session.ah.stats();
    println!("\n--- AH ---");
    println!(
        "regions: {} ({} KiB encoded), moves: {}, WMI: {}",
        ah.region_msgs,
        ah.encoded_bytes / 1024,
        ah.move_msgs,
        ah.wmi_msgs
    );
    println!(
        "RTP packets: {}, retransmissions answered: {}, full refreshes: {}",
        ah.rtp_packets, ah.retransmits, ah.full_refreshes
    );
    println!("\n--- participants ---");
    for (tag, idx) in students
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("student {i}"), s))
        .chain(std::iter::once(("remote".to_string(), remote)))
        .chain(std::iter::once(("latecomer".to_string(), late)))
    {
        let st = session.participant(idx).stats();
        println!(
            "{tag:>10}: regions {} / moves {} applied, NACKs {}, PLIs {}, decode errors {}",
            st.regions_applied, st.moves_applied, st.nacks_sent, st.plis_sent, st.decode_errors
        );
    }
    println!(
        "\nmulticast egress is shared: {} bytes regardless of class size",
        session
            .ah
            .participant_bytes_sent(session.handle(students[0]))
    );
}
