//! Application sharing with a private window and content-adaptive coding:
//! a presenter shares their slide deck (and its demo video) while a private
//! chat window stays on the AH only (§2), and each updated region is
//! encoded "according to their characteristics" (§4.2) — PNG for the
//! slides, DCT for the video.
//!
//! ```text
//! cargo run --release --example app_sharing
//! ```

use adshare::prelude::*;
use adshare::screen::workload::{Scrolling, Terminal, Video, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut desktop = Desktop::new(1024, 768);
    let slides = desktop.create_window(1, Rect::new(40, 30, 560, 420), [252, 252, 252, 255]);
    let demo = desktop.create_window(1, Rect::new(620, 60, 320, 240), [5, 5, 5, 255]);
    // The presenter's private chat: same desktop, never shared.
    let chat = desktop.create_window_with_sharing(
        9,
        Rect::new(650, 350, 300, 360),
        [255, 248, 235, 255],
        false,
    );

    let cfg = AhConfig {
        adaptive_codec: true, // §4.2: classify each region, PNG vs DCT
        ..AhConfig::default()
    };
    let mut session = SimSession::new(desktop, cfg, 99);
    let viewer = session.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 20_000_000,
            delay_us: 25_000,
            send_buf: 256 * 1024,
        },
        LinkConfig::default(),
        1,
    );
    session
        .run_until(10_000, 20_000_000, |s| s.divergence(viewer) < 6.0)
        .expect("viewer syncs");
    println!(
        "viewer sees {} window(s) — the private chat is not one of them: {}",
        session.participant(viewer).z_order().len(),
        session.participant(viewer).window_content(chat.0).is_none(),
    );

    // Presentation proceeds; chat gossips away privately.
    let mut deck = Scrolling::new(slides, 1);
    let mut movie = Video::new(demo, Rect::new(10, 10, 300, 220));
    let mut gossip = Terminal::new(chat, 70, 3);
    let mut rng = StdRng::seed_from_u64(2);
    for tick in 0..150 {
        if tick % 50 == 0 {
            deck.tick(session.ah.desktop_mut(), &mut rng);
        }
        movie.tick(session.ah.desktop_mut(), &mut rng);
        gossip.tick(session.ah.desktop_mut(), &mut rng);
        session.step(33_333);
    }
    session
        .run_until(10_000, 30_000_000, |s| s.divergence(viewer) < 6.0)
        .expect("viewer keeps up");

    let ah = session.ah.stats();
    println!("\n--- after 5 s of presentation ---");
    println!(
        "AH sent {} regions ({} KiB encoded) + {} scroll moves",
        ah.region_msgs,
        ah.encoded_bytes / 1024,
        ah.move_msgs
    );
    // Window-level fidelity tells the codec story: slides stay lossless,
    // the video is DCT-coded with a small bounded error.
    let slides_exact = session.participant(viewer).window_content(slides.0)
        == session.ah.desktop().window_content(slides);
    let video_err = session
        .participant(viewer)
        .window_content(demo.0)
        .zip(session.ah.desktop().window_content(demo))
        .map(|(a, b)| a.mean_abs_error(b))
        .unwrap_or(f64::NAN);
    println!("slides pixel-exact (PNG path): {slides_exact}");
    println!("video mean |err| (DCT path):   {video_err:.2}");
    println!(
        "private chat leaked to the viewer: {}",
        session.participant(viewer).window_content(chat.0).is_some()
    );
}
