//! Quickstart: share one window to one viewer and watch it converge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adshare::prelude::*;

fn main() {
    // The AH side: a simulated desktop with one shared window.
    let mut desktop = Desktop::new(640, 480);
    let editor = desktop.create_window(1, Rect::new(60, 50, 320, 240), [250, 250, 250, 255]);
    println!("AH shares window {editor:?} (320x240 at 60,50)");

    // Wrap it in a session and connect a TCP participant (draft §4.4: TCP
    // viewers receive the window state and a full screen image immediately).
    let mut session = SimSession::new(desktop, AhConfig::default(), 42);
    let viewer = session.add_tcp_participant(
        Layout::Original,
        TcpConfig {
            rate_bps: 20_000_000,
            delay_us: 15_000,
            send_buf: 128 * 1024,
        },
        LinkConfig::default(),
        7,
    );

    let t = session
        .run_until(10_000, 10_000_000, |s| s.converged(viewer))
        .expect("viewer converges");
    println!(
        "initial sync in {:.1} ms of simulated time",
        t as f64 / 1000.0
    );

    // Type into the window; the viewer follows keystroke by keystroke.
    use adshare::screen::workload::{Typing, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut typing = Typing::new(editor, 4);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..25 {
        typing.tick(session.ah.desktop_mut(), &mut rng);
        session.step(33_000); // ~30 fps capture
    }
    session
        .run_until(10_000, 5_000_000, |s| s.converged(viewer))
        .expect("typed content arrives");

    let ah = session.ah.stats();
    let p = session.participant(viewer).stats();
    println!("--- after 25 typing ticks ---");
    println!(
        "AH sent: {} WMI, {} RegionUpdates, {} MoveRectangles, {} pointer msgs",
        ah.wmi_msgs, ah.region_msgs, ah.move_msgs, ah.pointer_msgs
    );
    println!(
        "AH encoded {} regions into {} bytes; {} RTP packets on the wire",
        ah.encodes, ah.encoded_bytes, ah.rtp_packets
    );
    println!(
        "viewer applied: {} WMI, {} regions, {} moves; decode errors: {}",
        p.wmi_applied, p.regions_applied, p.moves_applied, p.decode_errors
    );
    println!(
        "viewer's screen matches the AH pixel-for-pixel: {}",
        session.converged(viewer)
    );
}
