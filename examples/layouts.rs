//! The coordinate-system scenario of draft Figures 2–5: three windows
//! shared to three participants that lay them out differently — original
//! coordinates, shifted, and packed onto a small screen.
//!
//! ```text
//! cargo run --release --example layouts
//! ```

use adshare::prelude::*;

fn main() {
    // Figure 2: windows A, C, B on a 1280x1024 AH desktop.
    let mut desktop = Desktop::new(1280, 1024);
    desktop.create_window(1, Rect::new(220, 150, 350, 450), [235, 235, 235, 255]); // A
    desktop.create_window(2, Rect::new(850, 320, 160, 150), [215, 230, 250, 255]); // C
    desktop.create_window(1, Rect::new(450, 400, 350, 300), [250, 250, 250, 255]); // B
    let mut session = SimSession::new(desktop, AhConfig::default(), 9);

    // Participant 1: original coordinates (Figure 3).
    let p1 = session.add_tcp_participant(
        Layout::Original,
        TcpConfig::default(),
        LinkConfig::default(),
        1,
    );
    // Participant 2: everything shifted 220 left, 150 up (Figure 4).
    let p2 = session.add_tcp_participant(
        Layout::Shifted { dx: 220, dy: 150 },
        TcpConfig::default(),
        LinkConfig::default(),
        2,
    );
    // Participant 3: packed onto a 640x480 screen (Figure 5).
    let p3 = session.add_tcp_participant(
        Layout::Packed {
            width: 640,
            height: 480,
        },
        TcpConfig::default(),
        LinkConfig::default(),
        3,
    );

    session
        .run_until(10_000, 20_000_000, |s| {
            s.converged(p1) && s.converged(p2) && s.converged(p3)
        })
        .expect("all three participants converge");

    let names = ["A", "C", "B"];
    for (label, idx, screen) in [
        ("participant 1 (original, Figure 3)", p1, (1024u32, 768u32)),
        ("participant 2 (shifted, Figure 4)", p2, (1280, 1024)),
        ("participant 3 (packed, Figure 5)", p3, (640, 480)),
    ] {
        println!("\n{label} — screen {}x{}:", screen.0, screen.1);
        let v = session.participant(idx);
        for (i, id) in v.z_order().iter().enumerate() {
            let (x, y) = v.window_local_pos(*id).unwrap();
            let r = v.window_ah_rect(*id).unwrap();
            println!(
                "  window {} ({}x{}): AH ({},{})  ->  local ({x},{y})",
                names[i], r.width, r.height, r.left, r.top
            );
        }
        println!("  content matches AH exactly: {}", session.converged(idx));
    }

    // All coordinates on the wire stay absolute: one update stream serves
    // all three layouts. Paint something and watch everyone receive it.
    let win_b = session.ah.desktop().wm().records()[2].id;
    let patch = Image::filled(80, 40, [255, 80, 80, 255]).unwrap();
    session.ah.desktop_mut().draw(win_b, 100, 100, &patch);
    session
        .run_until(10_000, 10_000_000, |s| {
            s.converged(p1) && s.converged(p2) && s.converged(p3)
        })
        .expect("update reaches all layouts");
    println!("\nOne RegionUpdate stream (absolute coordinates) updated all three layouts.");
}
