//! Offline stand-in for the `criterion` benchmark harness (the subset this
//! workspace uses).
//!
//! Behaviour:
//! - Under `cargo bench` (cargo passes `--bench` to `harness = false`
//!   targets) each benchmark is warmed up and timed over `sample_size`
//!   samples; median/mean per-iteration time and derived throughput are
//!   printed in a stable, greppable one-line-per-benchmark format.
//! - Under `cargo test` (no `--bench` argument) each benchmark body runs
//!   exactly once as a smoke test, so the tier-1 suite stays fast.
//!
//! No statistical analysis, plots, or baseline storage — the workspace's
//! structured measurement path is `adshare-bench`'s own tables and the
//! `adshare-obs` JSON snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Per-iteration sample durations collected by `iter`.
    samples: Vec<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure for real.
    Measure,
    /// `cargo test`: run the body once.
    Smoke,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm up and size the inner batch so one sample is ~1ms.
        let warmup_start = Instant::now();
        let mut warmup_iters: u32 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / warmup_iters.max(1) as u128;
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 100_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set throughput used to derive rate figures in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (report separator under `cargo bench`).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.mode == Mode::Smoke {
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("bench {full:<50} (no iter() call)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / (1u64 << 30) as f64 / median.as_secs_f64().max(1e-12);
                format!("  {gib:9.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / 1e6 / median.as_secs_f64().max(1e-12);
                format!("  {me:9.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "bench {full:<50} median {:>12} mean {:>12}{rate}",
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{:.2} ms", ns as f64 / 1e6)
    }
}

/// The benchmark manager: entry point mirroring upstream's `Criterion`.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--bench") {
            Mode::Measure
        } else {
            Mode::Smoke
        };
        // First free argument (if any) filters benchmarks by substring,
        // matching cargo's `cargo bench -- <filter>` convention.
        let filter = args.iter().skip(1).find(|a| !a.starts_with("--")).cloned();
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("once", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            mode: Mode::Measure,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 7), &3u64, |b, &x| {
            b.iter(|| {
                total = total.wrapping_add(x);
                black_box(total)
            })
        });
        g.finish();
        assert!(total > 3, "routine should have run more than once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("wanted".into()),
        };
        let mut ran = Vec::new();
        let mut g = c.benchmark_group("grp");
        g.bench_function("wanted_one", |b| b.iter(|| ran.push("a")));
        g.bench_function("other", |b| b.iter(|| ran.push("b")));
        g.finish();
        assert_eq!(ran, vec!["a"]);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("enc", 1400).to_string(), "enc/1400");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    mod as_harness {
        fn bench_a(c: &mut crate::Criterion) {
            let mut g = c.benchmark_group("a");
            g.bench_function("noop", |b| b.iter(|| crate::black_box(1 + 1)));
            g.finish();
        }
        crate::criterion_group!(benches, bench_a);

        #[test]
        fn group_macro_produces_runner() {
            benches();
        }
    }
}
