//! Offline stand-in for the `bytes` crate (the subset this workspace uses).
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer backed by
//! an `Arc<[u8]>`. Clones share the allocation, matching the upstream crate's
//! key property (O(1) clone of packet payloads). Mutation and the `Buf`/
//! `BufMut` traits are intentionally absent — nothing here needs them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice. The shim copies it once into a
    /// shared allocation; upstream's zero-copy behaviour is an optimisation
    /// no caller here observes.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing the same allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![7u8; 4096]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_views_share_and_bound() {
        let a = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let s = a.slice(4..12);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 4);
        let s2 = s.slice(2..);
        assert_eq!(&s2[..], &[6, 7, 8, 9, 10, 11]);
        assert!(Arc::ptr_eq(&a.data, &s2.data));
    }

    #[test]
    fn hash_matches_slice_semantics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from(vec![1, 2]));
        assert!(set.contains(&Bytes::copy_from_slice(&[1, 2])));
    }

    #[test]
    fn debug_escapes() {
        let d = format!("{:?}", Bytes::from_static(b"a\x00b"));
        assert_eq!(d, "b\"a\\x00b\"");
    }
}
