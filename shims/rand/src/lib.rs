//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` APIs the codebase uses are reimplemented here:
//! [`RngCore`], [`Rng`] (blanket impl, like upstream), [`SeedableRng`],
//! and a deterministic [`rngs::StdRng`] built on xoshiro256++ seeded via
//! SplitMix64.
//!
//! The generator is *not* bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); every consumer in this workspace only relies on
//! per-seed determinism and reasonable statistical quality, both of which
//! hold here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A distribution that can produce values of `T` from raw random words.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "any value of the type, uniformly" distribution (`rng.gen()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly sampleable over a closed range (mirrors upstream's
/// `SampleUniform`, collapsed to a single method).
pub trait SampleUniform: Sized {
    /// A value in `[lo, hi]`; `half_open` excludes `hi`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        half_open: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, half_open: bool, rng: &mut R) -> Self {
                if half_open {
                    assert!(lo < hi, "gen_range: empty range");
                } else {
                    assert!(lo <= hi, "gen_range: empty inclusive range");
                }
                let span = (hi as i128 - lo as i128) as u128 + if half_open { 0 } else { 1 };
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _half_open: bool,
        rng: &mut R,
    ) -> Self {
        let unit: f64 = Standard.sample(rng);
        lo + (hi - lo) * unit
    }
}

/// A range usable with [`Rng::gen_range`]. The single generic impl (rather
/// than per-type impls) is what lets integer literals in `gen_range(0..100)`
/// unify with surrounding type context, exactly like upstream.
pub trait SampleRange<T> {
    /// Draw one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, true, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), false, rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`], blanket-implemented
/// exactly like upstream `rand` so `&mut dyn RngCore` gets them too.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`0.0..=1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: ratio above 1");
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..=32_000).contains(&hits), "got {hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let x: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut rng;
        let _ = dynr.gen_range(0..100);
        let _ = dynr.gen_ratio(1, 6);
        let mut buf = [0u8; 13];
        dynr.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn standard_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
