//! Offline stand-in for the `proptest` crate (the subset this workspace uses).
//!
//! Implements the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`] with `prop_map`, integer-range / tuple / vec / `any::<T>()` /
//! string-pattern strategies, deterministic case generation, and
//! `*.proptest-regressions` replay. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports its seed (and appends it to the
//!   regression file) instead of minimising the input.
//! - **Deterministic seeds.** Case seeds derive from the test name, so runs
//!   are reproducible without `PROPTEST_` env vars.
//! - String patterns support only the `\PC{m,n}` form the workspace uses
//!   (plus plain literals); anything else panics loudly rather than
//!   silently generating the wrong distribution.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies while generating a case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Construct from a case seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed `prop_assert!`; carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a single generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of fresh cases to generate (regression replays run in addition).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` fresh cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of an output type.
///
/// Unlike upstream there is no `ValueTree`: `generate` yields the value
/// directly and failures are replayed by seed rather than shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy yielding exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Marker for "any value of `T`" (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy: a uniformly random `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Any<T>
where
    T: Debug,
    rand::Standard: rand::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// String-pattern strategy: `"\\PC{m,n}"` (m..=n non-control chars) or a
/// plain literal with no regex metacharacters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix("\\PC") {
            let (lo, hi) =
                parse_repeat(rest).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let len = rng.gen_range(lo..=hi);
            return (0..len).map(|_| gen_non_control_char(rng)).collect();
        }
        if self.chars().any(|c| "\\[](){}*+?|^$.".contains(c)) {
            panic!(
                "unsupported string pattern {self:?}: this proptest shim only \
                 implements \\PC{{m,n}} and plain literals"
            );
        }
        (*self).to_string()
    }
}

fn parse_repeat(s: &str) -> Option<(usize, usize)> {
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn gen_non_control_char(rng: &mut TestRng) -> char {
    loop {
        // Mix ASCII with several multi-byte scripts so UTF-8 boundary
        // handling actually gets exercised.
        let v: u32 = match rng.gen_range(0u32..10) {
            0..=4 => rng.gen_range(0x20u32..0x7f),   // ASCII printable
            5 | 6 => rng.gen_range(0xA1u32..0x250),  // Latin supplements
            7 => rng.gen_range(0x400u32..0x4FF),     // Cyrillic
            8 => rng.gen_range(0x4E00u32..0x9FFF),   // CJK
            _ => rng.gen_range(0x1F300u32..0x1F64F), // emoji
        };
        if v == 0xAD {
            continue; // soft hyphen is category Cf, excluded by \PC
        }
        if let Some(c) = char::from_u32(v) {
            if !c.is_control() {
                return c;
            }
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in the given range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(elem, 0..100)`: a vector of `elem`-generated values.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Locate the `*.proptest-regressions` file for `source_file` (as produced by
/// `file!()`), trying the path as-is, under the manifest dir, and with leading
/// directories stripped (cargo runs test binaries from the package root, while
/// `file!()` is workspace-relative).
fn regression_path(source_file: &str, manifest_dir: &str) -> Option<std::path::PathBuf> {
    let stem = source_file.strip_suffix(".rs").unwrap_or(source_file);
    let rel = format!("{stem}.proptest-regressions");
    let mut candidates = vec![
        std::path::PathBuf::from(&rel),
        std::path::Path::new(manifest_dir).join(&rel),
    ];
    let mut parts: Vec<&str> = rel.split('/').collect();
    while parts.len() > 1 {
        parts.remove(0);
        candidates.push(std::path::PathBuf::from(parts.join("/")));
        candidates.push(std::path::Path::new(manifest_dir).join(parts.join("/")));
    }
    candidates.into_iter().find(|p| p.exists())
}

fn load_regression_seeds(path: &std::path::Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let tok = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
            if !tok.chars().all(|c| c.is_ascii_hexdigit()) {
                return None;
            }
            // Our own entries are `{seed:064x}` so the low 16 hex digits are
            // the seed verbatim; foreign 256-bit entries still map to a
            // stable replay seed.
            let tail = &tok[tok.len().saturating_sub(16)..];
            u64::from_str_radix(tail, 16).ok()
        })
        .collect()
}

fn append_regression(path: &std::path::Path, seed: u64, detail: &str) {
    use std::io::Write;
    let header_needed = !path.exists();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        if header_needed {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated."
            );
        }
        let _ = writeln!(f, "cc {seed:064x} # {detail}");
    }
}

/// Drive one property: replay regression seeds, then run `config.cases` fresh
/// deterministic cases. `case` returns `Err` on `prop_assert!` failure; plain
/// panics inside the body are also caught so the seed can be reported.
pub fn run_proptest<F>(
    config: ProptestConfig,
    source_file: &str,
    manifest_dir: &str,
    test_name: &str,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let reg_path = regression_path(source_file, manifest_dir);
    let mut seeds: Vec<u64> = reg_path
        .as_deref()
        .map(load_regression_seeds)
        .unwrap_or_default();
    let base = fnv1a(test_name.as_bytes()) ^ fnv1a(source_file.as_bytes());
    seeds.extend(
        (0..config.cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15))),
    );

    for seed in seeds {
        let mut rng = TestRng::from_seed_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if let Some(p) = reg_path.as_deref() {
                    append_regression(p, seed, &format!("{test_name}: {e}"));
                }
                panic!("proptest case failed [{test_name}, seed=0x{seed:016x}]: {e}");
            }
            Err(payload) => {
                if let Some(p) = reg_path.as_deref() {
                    append_regression(p, seed, &format!("{test_name}: panicked"));
                }
                eprintln!("proptest case panicked [{test_name}, seed=0x{seed:016x}]");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a proptest body; failure reports the case seed instead of
/// aborting the whole test binary.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::run_proptest(
                config,
                file!(),
                env!("CARGO_MANIFEST_DIR"),
                stringify!($name),
                move |rng| {
                    let ($($pat,)+) = $crate::Strategy::generate(&strat, rng);
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    result
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed_u64(1);
        let strat = (1u32..48, 5usize..=9, any::<u16>());
        for _ in 0..500 {
            let (a, b, _c) = Strategy::generate(&strat, &mut rng);
            assert!((1..48).contains(&a));
            assert!((5..=9).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_length_bounds() {
        let mut rng = TestRng::from_seed_u64(2);
        let strat = collection::vec(any::<u8>(), 3..7);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..200 {
            lens.insert(strat.generate(&mut rng).len());
        }
        assert!(lens.iter().all(|l| (3..7).contains(l)));
        assert!(lens.len() > 1, "length should vary");
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::from_seed_u64(3);
        let strat = (0u8..10).prop_map(|v| v as u32 * 100);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 100, 0);
            assert!(v < 1000);
        }
    }

    #[test]
    fn pc_pattern_respects_bounds_and_excludes_controls() {
        let mut rng = TestRng::from_seed_u64(4);
        let strat = "\\PC{0,30}";
        let mut saw_multibyte = false;
        for _ in 0..300 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
            saw_multibyte |= s.len() > s.chars().count();
        }
        assert!(saw_multibyte, "should exercise multi-byte UTF-8");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = collection::vec(any::<u64>(), 0..50);
        let a = strat.generate(&mut TestRng::from_seed_u64(9));
        let b = strat.generate(&mut TestRng::from_seed_u64(9));
        let c = strat.generate(&mut TestRng::from_seed_u64(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, bindings, and prop_assert together.
        #[test]
        fn macro_end_to_end(x in 0u32..100, v in collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_reports_seed() {
        crate::run_proptest(
            ProptestConfig::with_cases(4),
            "shims/proptest/nonexistent.rs",
            env!("CARGO_MANIFEST_DIR"),
            "failing_case_reports_seed",
            |rng| {
                let v = Strategy::generate(&(0u32..10), rng);
                prop_assert!(v >= 10, "expected failure for {}", v);
                Ok(())
            },
        );
    }
}
