//! SDP (RFC 4566 subset) for application/desktop sharing sessions.
//!
//! The draft maps its two media types into SDP (§10):
//!
//! * `application/remoting` → `m=application <port> RTP/AVP <pt>` with
//!   `a=rtpmap:<pt> remoting/90000`; the mandatory `retransmissions`
//!   parameter rides in `a=fmtp`.
//! * `application/hip` → `a=rtpmap:<pt> hip/90000`.
//! * The HIP stream and the BFCP session are associated via `a=label` and
//!   `a=floorid ... m-stream:<label>` (RFC 4583).
//!
//! [`parse`]/[`SessionDescription::to_sdp`] round-trip the format;
//! [`offer`] builds the AH's offer (§10.3 shape) and [`answer`] performs
//! capability matching for codecs (§5.2.2: "they should negotiate supported
//! media types during the session establishment").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod offer;
pub mod types;

pub use answer::{build_answer, NegotiatedSession};
pub use offer::{build_ah_offer, build_relay_offer, OfferParams};
pub use types::{MediaDescription, RtpMap, SessionDescription};

/// Errors from SDP parsing/negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A line did not match `<type>=<value>`.
    BadLine(String),
    /// A required field is missing or malformed.
    Invalid(&'static str),
    /// Offer/answer found no common ground.
    NoCompatibleMedia(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadLine(l) => write!(f, "malformed SDP line: {l:?}"),
            Error::Invalid(what) => write!(f, "invalid SDP: {what}"),
            Error::NoCompatibleMedia(what) => write!(f, "negotiation failed: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Parse an SDP document.
pub fn parse(input: &str) -> Result<SessionDescription> {
    types::SessionDescription::parse(input)
}
