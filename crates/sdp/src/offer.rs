//! Building the AH's SDP offer (draft §10.3 shape).

use adshare_codec::CodecKind;

use crate::types::{MediaDescription, RtpMap, SessionDescription};

/// Parameters for an AH offer.
#[derive(Debug, Clone)]
pub struct OfferParams {
    /// Origin/connection address (e.g. "10.0.0.1").
    pub address: String,
    /// BFCP TCP port.
    pub bfcp_port: u16,
    /// Remoting port (same for UDP and TCP per §10.3: "The port numbers
    /// MUST be same if AH is remoting the same content over both TCP and
    /// UDP").
    pub remoting_port: u16,
    /// HIP TCP port.
    pub hip_port: u16,
    /// Payload type for the remoting stream.
    pub remoting_pt: u8,
    /// Payload type for the HIP stream.
    pub hip_pt: u8,
    /// Whether this AH answers Generic NACKs with retransmissions.
    pub retransmissions: bool,
    /// Whether to offer UDP transport for remoting.
    pub offer_udp: bool,
    /// Whether to offer TCP transport for remoting.
    pub offer_tcp: bool,
    /// Image codecs the AH can produce, with their payload types (carried
    /// as additional rtpmaps on the remoting media so the participant can
    /// match them).
    pub codecs: Vec<(u8, CodecKind)>,
    /// The label tying HIP to the BFCP floor (RFC 4583).
    pub floor_label: u16,
    /// Published simulcast quality tiers, as the `adshare-layers`
    /// session-attribute value (comma-separated tier gauges, e.g.
    /// "0,1,2"). `None` omits the attribute: single-tier session.
    pub layers: Option<String>,
}

impl Default for OfferParams {
    fn default() -> Self {
        OfferParams {
            address: "127.0.0.1".to_owned(),
            bfcp_port: 50000,
            remoting_port: 6000,
            hip_port: 6006,
            remoting_pt: 99,
            hip_pt: 100,
            retransmissions: true,
            offer_udp: true,
            offer_tcp: true,
            codecs: vec![
                (101, CodecKind::Png),
                (102, CodecKind::Dct),
                (103, CodecKind::Rle),
                (104, CodecKind::Raw),
            ],
            floor_label: 10,
            layers: None,
        }
    }
}

/// Build the AH's offer in the §10.3 layout: BFCP floor, remoting over UDP
/// and/or TCP, and the HIP stream labelled for floor association.
pub fn build_ah_offer(p: &OfferParams) -> SessionDescription {
    let mut sd = SessionDescription {
        version: 0,
        origin: format!("adshare 0 0 IN IP4 {}", p.address),
        session_name: "application sharing".to_owned(),
        connection: Some(format!("IN IP4 {}", p.address)),
        attributes: Vec::new(),
        media: Vec::new(),
    };

    // Simulcast tier advertisement: relays and participants read this to
    // know which renditions they may subscribe to or locally synthesize.
    if let Some(tiers) = &p.layers {
        sd.attributes
            .push(("adshare-layers".to_owned(), Some(tiers.clone())));
    }

    // BFCP floor control stream.
    let mut bfcp = MediaDescription {
        media: "application".to_owned(),
        port: p.bfcp_port,
        proto: "TCP/BFCP".to_owned(),
        formats: vec!["*".to_owned()],
        attributes: Vec::new(),
    };
    bfcp.push_attr("floorctrl", Some("s-only"));
    bfcp.push_attr("floorid", Some(&format!("0 m-stream:{}", p.floor_label)));
    sd.media.push(bfcp);

    let codec_attrs = |m: &mut MediaDescription| {
        for (pt, kind) in &p.codecs {
            m.push_attr(
                "rtpmap",
                Some(
                    &RtpMap {
                        payload_type: *pt,
                        encoding: kind.encoding_name().to_owned(),
                        clock_rate: 90_000,
                    }
                    .to_value(),
                ),
            );
        }
    };

    if p.offer_udp {
        let mut udp = MediaDescription {
            media: "application".to_owned(),
            port: p.remoting_port,
            proto: "RTP/AVP".to_owned(),
            formats: vec![p.remoting_pt.to_string()],
            attributes: Vec::new(),
        };
        udp.push_attr(
            "rtpmap",
            Some(
                &RtpMap {
                    payload_type: p.remoting_pt,
                    encoding: "remoting".to_owned(),
                    clock_rate: 90_000,
                }
                .to_value(),
            ),
        );
        udp.push_attr(
            "fmtp",
            Some(&format!(
                "{} retransmissions={}",
                p.remoting_pt,
                if p.retransmissions { "yes" } else { "no" }
            )),
        );
        codec_attrs(&mut udp);
        sd.media.push(udp);
    }

    if p.offer_tcp {
        let mut tcp = MediaDescription {
            media: "application".to_owned(),
            port: p.remoting_port,
            proto: "TCP/RTP/AVP".to_owned(),
            formats: vec![p.remoting_pt.to_string()],
            attributes: Vec::new(),
        };
        tcp.push_attr(
            "rtpmap",
            Some(
                &RtpMap {
                    payload_type: p.remoting_pt,
                    encoding: "remoting".to_owned(),
                    clock_rate: 90_000,
                }
                .to_value(),
            ),
        );
        codec_attrs(&mut tcp);
        sd.media.push(tcp);
    }

    let mut hip = MediaDescription {
        media: "application".to_owned(),
        port: p.hip_port,
        proto: "TCP/RTP/AVP".to_owned(),
        formats: vec![p.hip_pt.to_string()],
        attributes: Vec::new(),
    };
    hip.push_attr(
        "rtpmap",
        Some(
            &RtpMap {
                payload_type: p.hip_pt,
                encoding: "hip".to_owned(),
                clock_rate: 90_000,
            }
            .to_value(),
        ),
    );
    hip.push_attr("label", Some(&p.floor_label.to_string()));
    sd.media.push(hip);

    sd
}

/// Re-offer an upstream session from a relay: the media plan (payload
/// types, codecs, retransmission policy) is inherited verbatim so the
/// downstream participant negotiates exactly what the AH offered, but the
/// origin/connection addresses point at the relay and a session-level
/// `adshare-relay-hops` attribute counts the cascade depth (0 = direct
/// from the AH) so participants and nested relays can see how far they sit
/// from the source.
pub fn build_relay_offer(upstream: &SessionDescription, relay_address: &str) -> SessionDescription {
    let mut sd = upstream.clone();
    sd.origin = format!("adshare-relay 0 0 IN IP4 {relay_address}");
    sd.connection = Some(format!("IN IP4 {relay_address}"));
    let hops = upstream.relay_hops() + 1;
    sd.attributes.retain(|(k, _)| k != "adshare-relay-hops");
    sd.attributes
        .push(("adshare-relay-hops".to_owned(), Some(hops.to_string())));
    sd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn default_offer_matches_section_10_3_shape() {
        let sd = build_ah_offer(&OfferParams::default());
        let text = sd.to_sdp();
        let back = parse(&text).unwrap();
        assert_eq!(back.media.len(), 4);
        assert_eq!(back.media[0].proto, "TCP/BFCP");
        assert_eq!(back.media[1].proto, "RTP/AVP");
        assert_eq!(back.media[2].proto, "TCP/RTP/AVP");
        assert_eq!(
            back.media[1].port, back.media[2].port,
            "§10.3 same-port rule"
        );
        assert!(back.media[1].retransmissions());
        let hip = &back.media[3];
        assert_eq!(hip.label(), Some("10"));
        assert!(back.media[0]
            .attribute("floorid")
            .unwrap()
            .ends_with("m-stream:10"));
    }

    #[test]
    fn udp_only_and_tcp_only() {
        let p = OfferParams {
            offer_tcp: false,
            ..OfferParams::default()
        };
        let sd = build_ah_offer(&p);
        assert_eq!(sd.media.len(), 3);
        assert_eq!(sd.media_with_encoding("remoting").len(), 1);

        let p = OfferParams {
            offer_udp: false,
            ..OfferParams::default()
        };
        let sd = build_ah_offer(&p);
        assert_eq!(sd.media_with_encoding("remoting")[0].proto, "TCP/RTP/AVP");
    }

    #[test]
    fn no_retransmissions_advertised() {
        let p = OfferParams {
            retransmissions: false,
            ..OfferParams::default()
        };
        let sd = build_ah_offer(&p);
        assert!(!sd.media[1].retransmissions());
        assert!(sd.media[1]
            .attribute("fmtp")
            .unwrap()
            .contains("retransmissions=no"));
    }

    #[test]
    fn relay_offer_inherits_media_and_counts_hops() {
        let ah = build_ah_offer(&OfferParams::default());
        assert_eq!(ah.relay_hops(), 0, "AH offer has no relay attribute");

        let relay = build_relay_offer(&ah, "10.0.0.9");
        let back = parse(&relay.to_sdp()).unwrap();
        assert_eq!(back.relay_hops(), 1);
        assert_eq!(back.connection.as_deref(), Some("IN IP4 10.0.0.9"));
        assert_eq!(back.media.len(), ah.media.len(), "media plan inherited");
        assert_eq!(back.media[1].formats, ah.media[1].formats);
        assert_eq!(
            back.media[1].retransmissions(),
            ah.media[1].retransmissions()
        );

        // Cascading a second relay bumps the count, not duplicates it.
        let second = build_relay_offer(&back, "10.0.0.10");
        let back2 = parse(&second.to_sdp()).unwrap();
        assert_eq!(back2.relay_hops(), 2);
        assert_eq!(
            back2
                .attributes
                .iter()
                .filter(|(k, _)| k == "adshare-relay-hops")
                .count(),
            1
        );
    }

    #[test]
    fn layers_attribute_round_trips_and_survives_relay_reoffer() {
        let no_layers = build_ah_offer(&OfferParams::default());
        assert_eq!(no_layers.layer_tiers(), None, "single-tier by default");

        let p = OfferParams {
            layers: Some("0,1,2".to_owned()),
            ..OfferParams::default()
        };
        let sd = build_ah_offer(&p);
        let back = parse(&sd.to_sdp()).unwrap();
        assert_eq!(back.layer_tiers(), Some("0,1,2"));

        // A relay re-offer inherits the tier advertisement verbatim: the
        // downstream participant sees exactly what the AH publishes.
        let relay = build_relay_offer(&back, "10.0.0.9");
        let back2 = parse(&relay.to_sdp()).unwrap();
        assert_eq!(back2.layer_tiers(), Some("0,1,2"));
        assert_eq!(back2.relay_hops(), 1);
    }

    #[test]
    fn codec_rtpmaps_present() {
        let sd = build_ah_offer(&OfferParams::default());
        let remoting = &sd.media[1];
        let encodings: Vec<String> = remoting.rtpmaps().into_iter().map(|r| r.encoding).collect();
        assert!(encodings.contains(&"png".to_owned()));
        assert!(encodings.contains(&"dct".to_owned()));
        assert!(encodings.contains(&"rle".to_owned()));
    }
}
