//! SDP document model and line-level parser/serializer.

use crate::{Error, Result};

/// An `a=rtpmap` mapping: payload type → encoding name / clock rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpMap {
    /// RTP payload type.
    pub payload_type: u8,
    /// Encoding name (e.g. "remoting", "hip", "png").
    pub encoding: String,
    /// Clock rate (the draft mandates 90000 typically).
    pub clock_rate: u32,
}

impl RtpMap {
    /// Parse the value of an `a=rtpmap` attribute ("99 remoting/90000").
    pub fn parse(value: &str) -> Result<Self> {
        let mut parts = value.split_whitespace();
        let pt = parts
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(Error::Invalid("rtpmap payload type"))?;
        let enc_clock = parts.next().ok_or(Error::Invalid("rtpmap encoding"))?;
        let (enc, clock) = enc_clock
            .split_once('/')
            .ok_or(Error::Invalid("rtpmap clock"))?;
        // Tolerate trailing "/parameters" (channels) per RFC 4566.
        let clock = clock.split('/').next().unwrap_or(clock);
        Ok(RtpMap {
            payload_type: pt,
            encoding: enc.to_owned(),
            clock_rate: clock
                .parse()
                .map_err(|_| Error::Invalid("rtpmap clock rate"))?,
        })
    }

    /// Serialize the attribute value.
    pub fn to_value(&self) -> String {
        format!(
            "{} {}/{}",
            self.payload_type, self.encoding, self.clock_rate
        )
    }
}

/// One `m=` section with its attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MediaDescription {
    /// Media type ("application" for this protocol).
    pub media: String,
    /// Transport port.
    pub port: u16,
    /// Transport protocol ("RTP/AVP", "TCP/RTP/AVP", "TCP/BFCP").
    pub proto: String,
    /// Format list (payload types, or "*" for BFCP).
    pub formats: Vec<String>,
    /// Attributes in order: (name, optional value).
    pub attributes: Vec<(String, Option<String>)>,
}

impl MediaDescription {
    /// All `a=rtpmap` entries.
    pub fn rtpmaps(&self) -> Vec<RtpMap> {
        self.attributes
            .iter()
            .filter(|(k, _)| k == "rtpmap")
            .filter_map(|(_, v)| v.as_deref().and_then(|v| RtpMap::parse(v).ok()))
            .collect()
    }

    /// First attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether an `a=fmtp` for this media declares `retransmissions=yes`
    /// (the draft's mandatory remoting parameter, §10.1).
    pub fn retransmissions(&self) -> bool {
        self.attributes
            .iter()
            .filter(|(k, _)| k == "fmtp")
            .any(|(_, v)| {
                v.as_deref()
                    .map(|v| v.replace(' ', "").contains("retransmissions=yes"))
                    .unwrap_or(false)
            })
    }

    /// The `a=label` value (RFC 4583 association), if present.
    pub fn label(&self) -> Option<&str> {
        self.attribute("label")
    }

    /// Add an attribute.
    pub fn push_attr(&mut self, name: &str, value: Option<&str>) {
        self.attributes
            .push((name.to_owned(), value.map(str::to_owned)));
    }
}

/// A parsed SDP session description.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionDescription {
    /// `v=` (always 0).
    pub version: u8,
    /// `o=` line verbatim (origin).
    pub origin: String,
    /// `s=` session name.
    pub session_name: String,
    /// `c=` connection line verbatim, if present at session level.
    pub connection: Option<String>,
    /// Session-level attributes.
    pub attributes: Vec<(String, Option<String>)>,
    /// Media sections in order.
    pub media: Vec<MediaDescription>,
}

impl SessionDescription {
    /// Parse an SDP document (tolerant: unknown lines are preserved as
    /// attributes where possible, otherwise skipped).
    pub fn parse(input: &str) -> Result<Self> {
        let mut sd = SessionDescription::default();
        let mut current: Option<MediaDescription> = None;
        for raw in input.lines() {
            let line = raw.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let (kind, value) = line
                .split_once('=')
                .ok_or_else(|| Error::BadLine(line.to_owned()))?;
            let value = value.trim_start();
            match kind {
                "v" => sd.version = value.parse().map_err(|_| Error::Invalid("version"))?,
                "o" => sd.origin = value.to_owned(),
                "s" => sd.session_name = value.to_owned(),
                "c" if current.is_none() => {
                    sd.connection = Some(value.to_owned());
                }
                "m" => {
                    if let Some(m) = current.take() {
                        sd.media.push(m);
                    }
                    let mut parts = value.split_whitespace();
                    let media = parts.next().ok_or(Error::Invalid("media type"))?.to_owned();
                    let port = parts
                        .next()
                        .and_then(|p| p.split('/').next())
                        .and_then(|p| p.parse::<u16>().ok())
                        .ok_or(Error::Invalid("media port"))?;
                    let proto = parts
                        .next()
                        .ok_or(Error::Invalid("media proto"))?
                        .to_owned();
                    let formats = parts.map(str::to_owned).collect();
                    current = Some(MediaDescription {
                        media,
                        port,
                        proto,
                        formats,
                        attributes: Vec::new(),
                    });
                }
                "a" => {
                    let (name, val) = match value.split_once(':') {
                        Some((n, v)) => (n.to_owned(), Some(v.trim_start().to_owned())),
                        None => (value.to_owned(), None),
                    };
                    match &mut current {
                        Some(m) => m.attributes.push((name, val)),
                        None => sd.attributes.push((name, val)),
                    }
                }
                // t=, b=, k=, etc.: accepted and dropped (not needed by the
                // draft's mapping).
                _ => {}
            }
        }
        if let Some(m) = current.take() {
            sd.media.push(m);
        }
        Ok(sd)
    }

    /// Serialize back to SDP text.
    pub fn to_sdp(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("v={}\r\n", self.version));
        if !self.origin.is_empty() {
            out.push_str(&format!("o={}\r\n", self.origin));
        }
        out.push_str(&format!("s={}\r\n", self.session_name));
        if let Some(c) = &self.connection {
            out.push_str(&format!("c={c}\r\n"));
        }
        for (k, v) in &self.attributes {
            match v {
                Some(v) => out.push_str(&format!("a={k}:{v}\r\n")),
                None => out.push_str(&format!("a={k}\r\n")),
            }
        }
        for m in &self.media {
            out.push_str(&format!(
                "m={} {} {} {}\r\n",
                m.media,
                m.port,
                m.proto,
                m.formats.join(" ")
            ));
            for (k, v) in &m.attributes {
                match v {
                    Some(v) => out.push_str(&format!("a={k}:{v}\r\n")),
                    None => out.push_str(&format!("a={k}\r\n")),
                }
            }
        }
        out
    }

    /// How many relay hops sit between this offer's sender and the
    /// originating AH, per the session-level `adshare-relay-hops`
    /// attribute. `0` for an offer straight from the AH.
    pub fn relay_hops(&self) -> u32 {
        self.attributes
            .iter()
            .find(|(k, _)| k == "adshare-relay-hops")
            .and_then(|(_, v)| v.as_deref())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// The session-level `adshare-layers` attribute value: the simulcast
    /// quality tiers this offer publishes (comma-separated tier gauges).
    /// `None` when the session is single-tier. The value parses with
    /// `adshare_layers::TierSet::from_attr`.
    pub fn layer_tiers(&self) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == "adshare-layers")
            .and_then(|(_, v)| v.as_deref())
    }

    /// Find media sections whose rtpmap carries the given encoding name.
    pub fn media_with_encoding(&self, encoding: &str) -> Vec<&MediaDescription> {
        self.media
            .iter()
            .filter(|m| {
                m.rtpmaps()
                    .iter()
                    .any(|r| r.encoding.eq_ignore_ascii_case(encoding))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SDP example of §10.3, verbatim (including its `a=fmtp:` with a
    /// space and the hip rtpmap quirk).
    pub const SECTION_10_3: &str = "\
m=application 50000 TCP/BFCP *\r\n\
a=floorid:0 m-stream:10\r\n\
m=application 6000 RTP/AVP 99\r\n\
a=rtpmap:99 remoting/90000\r\n\
a=fmtp: retransmissions=yes\r\n\
m=application 6000 TCP/RTP/AVP 99\r\n\
a=rtpmap:99 remoting/90000\r\n\
m=application 6006 TCP/RTP/AVP 100\r\n\
a=rtpmap:99 hip/90000\r\n\
a=label:10\r\n";

    #[test]
    fn section_10_3_example_parses() {
        let sd = SessionDescription::parse(SECTION_10_3).unwrap();
        assert_eq!(sd.media.len(), 4);

        let bfcp = &sd.media[0];
        assert_eq!(bfcp.proto, "TCP/BFCP");
        assert_eq!(bfcp.port, 50000);
        assert_eq!(bfcp.formats, vec!["*"]);
        assert_eq!(bfcp.attribute("floorid"), Some("0 m-stream:10"));

        let udp_remoting = &sd.media[1];
        assert_eq!(udp_remoting.proto, "RTP/AVP");
        assert_eq!(udp_remoting.port, 6000);
        let maps = udp_remoting.rtpmaps();
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].payload_type, 99);
        assert_eq!(maps[0].encoding, "remoting");
        assert_eq!(maps[0].clock_rate, 90000);
        assert!(
            udp_remoting.retransmissions(),
            "AH supports UDP retransmissions"
        );

        let tcp_remoting = &sd.media[2];
        assert_eq!(tcp_remoting.proto, "TCP/RTP/AVP");
        // "The port numbers MUST be same if AH is remoting the same content
        // over both TCP and UDP."
        assert_eq!(tcp_remoting.port, udp_remoting.port);

        let hip = &sd.media[3];
        assert_eq!(hip.port, 6006);
        assert_eq!(hip.label(), Some("10"));
        // hip is associated with the BFCP floor via label 10.
        assert!(bfcp.attribute("floorid").unwrap().contains("m-stream:10"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let sd = SessionDescription::parse(SECTION_10_3).unwrap();
        let text = sd.to_sdp();
        let back = SessionDescription::parse(&text).unwrap();
        assert_eq!(back.media, sd.media);
    }

    #[test]
    fn full_document_with_session_level_lines() {
        let input = "v=0\r\no=ah 123 456 IN IP4 10.0.0.1\r\ns=shared app\r\nc=IN IP4 10.0.0.1\r\nt=0 0\r\na=tool:adshare\r\nm=application 6000 RTP/AVP 99\r\na=rtpmap:99 remoting/90000\r\n";
        let sd = SessionDescription::parse(input).unwrap();
        assert_eq!(sd.version, 0);
        assert_eq!(sd.origin, "ah 123 456 IN IP4 10.0.0.1");
        assert_eq!(sd.session_name, "shared app");
        assert_eq!(sd.connection.as_deref(), Some("IN IP4 10.0.0.1"));
        assert_eq!(
            sd.attributes,
            vec![("tool".to_owned(), Some("adshare".to_owned()))]
        );
        assert_eq!(sd.media.len(), 1);
    }

    #[test]
    fn rtpmap_parse_errors() {
        assert!(RtpMap::parse("notanumber remoting/90000").is_err());
        assert!(RtpMap::parse("99").is_err());
        assert!(RtpMap::parse("99 remoting").is_err());
        assert!(RtpMap::parse("99 remoting/abc").is_err());
    }

    #[test]
    fn bad_lines_rejected() {
        assert!(SessionDescription::parse("nonsense without equals").is_err());
        assert!(SessionDescription::parse("m=application notaport RTP/AVP 99").is_err());
    }

    #[test]
    fn flag_attributes_without_value() {
        let input = "v=0\r\ns=x\r\nm=application 1 RTP/AVP 99\r\na=sendonly\r\n";
        let sd = SessionDescription::parse(input).unwrap();
        assert_eq!(sd.media[0].attributes[0], ("sendonly".to_owned(), None));
        assert!(sd.to_sdp().contains("a=sendonly\r\n"));
    }

    #[test]
    fn media_with_encoding_lookup() {
        let sd = SessionDescription::parse(SECTION_10_3).unwrap();
        assert_eq!(sd.media_with_encoding("remoting").len(), 2);
        assert_eq!(sd.media_with_encoding("HIP").len(), 1);
        assert!(sd.media_with_encoding("video").is_empty());
    }
}
