//! Offer/answer capability matching (draft §5.2.2: AH and participant
//! "should negotiate supported media types during the session
//! establishment").

use adshare_codec::CodecKind;

use crate::types::SessionDescription;
use crate::{Error, Result};

/// Preferred transport for the remoting stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// RTP over UDP (`RTP/AVP`).
    Udp,
    /// RTP framed over TCP (`TCP/RTP/AVP`, RFC 4571).
    Tcp,
}

/// The outcome of negotiating an AH offer against participant capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegotiatedSession {
    /// Chosen remoting transport.
    pub transport: Transport,
    /// Remoting stream payload type.
    pub remoting_pt: u8,
    /// Remoting port at the AH.
    pub remoting_port: u16,
    /// HIP payload type.
    pub hip_pt: u8,
    /// HIP port at the AH.
    pub hip_port: u16,
    /// Image codecs both sides support, in offer preference order:
    /// (RTP payload type, codec).
    pub codecs: Vec<(u8, CodecKind)>,
    /// Whether the AH will answer Generic NACKs (UDP only).
    pub retransmissions: bool,
    /// BFCP port, if floor control was offered.
    pub bfcp_port: Option<u16>,
    /// The floor id from `a=floorid`, if offered.
    pub floor_id: Option<u16>,
}

/// Match an AH offer against the participant's transport preference and
/// codec support. PNG must be supported by every implementation (§5.2.2),
/// so `supported` lacking PNG is rejected outright.
pub fn build_answer(
    offer: &SessionDescription,
    prefer: Transport,
    supported: &[CodecKind],
) -> Result<NegotiatedSession> {
    if !supported.contains(&CodecKind::Png) {
        return Err(Error::NoCompatibleMedia(
            "participant must support PNG (draft §5.2.2 MUST)",
        ));
    }
    let remoting = offer.media_with_encoding("remoting");
    if remoting.is_empty() {
        return Err(Error::NoCompatibleMedia("offer has no remoting stream"));
    }
    let pick = |t: Transport| {
        remoting.iter().find(|m| match t {
            Transport::Udp => m.proto == "RTP/AVP",
            Transport::Tcp => m.proto == "TCP/RTP/AVP",
        })
    };
    let (transport, chosen) = match pick(prefer) {
        Some(m) => (prefer, m),
        None => {
            let fallback = match prefer {
                Transport::Udp => Transport::Tcp,
                Transport::Tcp => Transport::Udp,
            };
            match pick(fallback) {
                Some(m) => (fallback, m),
                None => return Err(Error::NoCompatibleMedia("no usable remoting transport")),
            }
        }
    };

    let remoting_pt = chosen
        .rtpmaps()
        .iter()
        .find(|r| r.encoding.eq_ignore_ascii_case("remoting"))
        .map(|r| r.payload_type)
        .ok_or(Error::Invalid("remoting rtpmap"))?;

    // Codec intersection, offer order (= AH preference).
    let codecs: Vec<(u8, CodecKind)> = chosen
        .rtpmaps()
        .iter()
        .filter_map(|r| CodecKind::from_encoding_name(&r.encoding).map(|k| (r.payload_type, k)))
        .filter(|(_, k)| supported.contains(k))
        .collect();
    if !codecs.iter().any(|(_, k)| *k == CodecKind::Png) {
        return Err(Error::NoCompatibleMedia(
            "offer lacks the mandatory PNG codec",
        ));
    }

    let hip = offer
        .media_with_encoding("hip")
        .first()
        .copied()
        .ok_or(Error::NoCompatibleMedia("offer has no hip stream"))?;
    let hip_pt = hip
        .rtpmaps()
        .iter()
        .find(|r| r.encoding.eq_ignore_ascii_case("hip"))
        .map(|r| r.payload_type)
        .ok_or(Error::Invalid("hip rtpmap"))?;

    let bfcp = offer.media.iter().find(|m| m.proto == "TCP/BFCP");
    let floor_id = bfcp
        .and_then(|m| m.attribute("floorid"))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|v| v.parse::<u16>().ok());

    Ok(NegotiatedSession {
        transport,
        remoting_pt,
        remoting_port: chosen.port,
        hip_pt,
        hip_port: hip.port,
        codecs,
        retransmissions: transport == Transport::Udp && chosen.retransmissions(),
        bfcp_port: bfcp.map(|m| m.port),
        floor_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{build_ah_offer, OfferParams};

    fn all_codecs() -> Vec<CodecKind> {
        vec![
            CodecKind::Png,
            CodecKind::Dct,
            CodecKind::Rle,
            CodecKind::Raw,
        ]
    }

    #[test]
    fn negotiates_udp_preference() {
        let offer = build_ah_offer(&OfferParams::default());
        let n = build_answer(&offer, Transport::Udp, &all_codecs()).unwrap();
        assert_eq!(n.transport, Transport::Udp);
        assert_eq!(n.remoting_pt, 99);
        assert_eq!(n.remoting_port, 6000);
        assert_eq!(n.hip_pt, 100);
        assert!(n.retransmissions);
        assert_eq!(n.bfcp_port, Some(50000));
        assert_eq!(n.floor_id, Some(0));
        assert_eq!(n.codecs.len(), 4);
    }

    #[test]
    fn falls_back_to_tcp_when_udp_absent() {
        let p = OfferParams {
            offer_udp: false,
            ..OfferParams::default()
        };
        let offer = build_ah_offer(&p);
        let n = build_answer(&offer, Transport::Udp, &all_codecs()).unwrap();
        assert_eq!(n.transport, Transport::Tcp);
        assert!(!n.retransmissions, "retransmissions are a UDP mechanism");
    }

    #[test]
    fn codec_intersection_preserves_offer_order() {
        let offer = build_ah_offer(&OfferParams::default());
        let n = build_answer(&offer, Transport::Tcp, &[CodecKind::Png, CodecKind::Rle]).unwrap();
        let kinds: Vec<CodecKind> = n.codecs.iter().map(|(_, k)| *k).collect();
        assert_eq!(kinds, vec![CodecKind::Png, CodecKind::Rle]);
    }

    #[test]
    fn participant_without_png_rejected() {
        let offer = build_ah_offer(&OfferParams::default());
        assert!(matches!(
            build_answer(&offer, Transport::Udp, &[CodecKind::Rle]),
            Err(Error::NoCompatibleMedia(_))
        ));
    }

    #[test]
    fn offer_without_png_rejected() {
        let p = OfferParams {
            codecs: vec![(103, CodecKind::Rle)],
            ..OfferParams::default()
        };
        let offer = build_ah_offer(&p);
        assert!(matches!(
            build_answer(&offer, Transport::Udp, &all_codecs()),
            Err(Error::NoCompatibleMedia(_))
        ));
    }

    #[test]
    fn offer_without_hip_rejected() {
        let mut offer = build_ah_offer(&OfferParams::default());
        offer
            .media
            .retain(|m| !m.rtpmaps().iter().any(|r| r.encoding == "hip"));
        assert!(matches!(
            build_answer(&offer, Transport::Udp, &all_codecs()),
            Err(Error::NoCompatibleMedia(_))
        ));
    }
}
