//! RFC 4571 framing: RTP/RTCP packets over connection-oriented transports.
//!
//! "Neither TCP nor RTP declares the length of an RTP packet. Therefore, RTP
//! framing \[RFC4571\] is used to split RTP packets within the TCP byte
//! stream." (draft §4.4). The frame is simply a 16-bit big-endian length
//! prefix followed by that many packet bytes.

use crate::{Error, Result};

/// Maximum payload a single RFC 4571 frame can carry (16-bit length).
pub const MAX_FRAME_LEN: usize = u16::MAX as usize;

/// Prefix `packet` with its 2-byte length.
pub fn frame(packet: &[u8]) -> Result<Vec<u8>> {
    if packet.len() > MAX_FRAME_LEN {
        return Err(Error::FrameTooLarge {
            declared: packet.len(),
            max: MAX_FRAME_LEN,
        });
    }
    let mut out = Vec::with_capacity(2 + packet.len());
    out.extend_from_slice(&(packet.len() as u16).to_be_bytes());
    out.extend_from_slice(packet);
    Ok(out)
}

/// Append a framed `packet` to an existing buffer (avoids an allocation per
/// packet when batching writes).
pub fn frame_into(out: &mut Vec<u8>, packet: &[u8]) -> Result<()> {
    if packet.len() > MAX_FRAME_LEN {
        return Err(Error::FrameTooLarge {
            declared: packet.len(),
            max: MAX_FRAME_LEN,
        });
    }
    out.extend_from_slice(&(packet.len() as u16).to_be_bytes());
    out.extend_from_slice(packet);
    Ok(())
}

/// Incremental deframer: feed arbitrary byte chunks from a TCP stream, pop
/// complete packets as they become available.
#[derive(Debug)]
pub struct Deframer {
    buf: Vec<u8>,
    /// Read cursor into `buf` (compacted opportunistically).
    pos: usize,
    /// Upper bound on accepted frame size (DoS guard; frames above this are
    /// rejected rather than buffered).
    max_frame: usize,
}

impl Default for Deframer {
    fn default() -> Self {
        Self::new(MAX_FRAME_LEN)
    }
}

impl Deframer {
    /// Create a deframer accepting frames up to `max_frame` bytes.
    pub fn new(max_frame: usize) -> Self {
        Deframer {
            buf: Vec::new(),
            pos: 0,
            max_frame: max_frame.min(MAX_FRAME_LEN),
        }
    }

    /// Feed bytes received from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact when the consumed prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pop the next complete frame, if any.
    ///
    /// Returns `Ok(Some(packet))` for a complete frame, `Ok(None)` if more
    /// bytes are needed, or an error if the declared frame length exceeds the
    /// configured maximum (the connection should then be torn down — the
    /// stream cannot be resynchronised).
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([avail[0], avail[1]]) as usize;
        if len > self.max_frame {
            return Err(Error::FrameTooLarge {
                declared: len,
                max: self.max_frame,
            });
        }
        if avail.len() < 2 + len {
            return Ok(None);
        }
        let packet = avail[2..2 + len].to_vec();
        self.pos += 2 + len;
        Ok(Some(packet))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_deframe() {
        let a = frame(b"hello").unwrap();
        let b = frame(b"world!!").unwrap();
        let mut d = Deframer::default();
        d.push(&a);
        d.push(&b);
        assert_eq!(d.pop().unwrap().unwrap(), b"hello");
        assert_eq!(d.pop().unwrap().unwrap(), b"world!!");
        assert_eq!(d.pop().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let wire = frame(&[9u8; 100]).unwrap();
        let mut d = Deframer::default();
        let mut popped = Vec::new();
        for byte in wire {
            d.push(&[byte]);
            while let Some(p) = d.pop().unwrap() {
                popped.push(p);
            }
        }
        assert_eq!(popped, vec![vec![9u8; 100]]);
    }

    #[test]
    fn split_across_arbitrary_chunks() {
        let mut wire = Vec::new();
        let packets: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; i * 37 + 1]).collect();
        for p in &packets {
            frame_into(&mut wire, p).unwrap();
        }
        let mut d = Deframer::default();
        let mut got = Vec::new();
        for chunk in wire.chunks(13) {
            d.push(chunk);
            while let Some(p) = d.pop().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, packets);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn zero_length_frame_ok() {
        let wire = frame(b"").unwrap();
        let mut d = Deframer::default();
        d.push(&wire);
        assert_eq!(d.pop().unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversize_frame_rejected_by_sender() {
        let big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(frame(&big), Err(Error::FrameTooLarge { .. })));
    }

    #[test]
    fn oversize_frame_rejected_by_receiver() {
        let mut d = Deframer::new(64);
        d.push(&1000u16.to_be_bytes());
        assert!(matches!(
            d.pop(),
            Err(Error::FrameTooLarge {
                declared: 1000,
                max: 64
            })
        ));
    }

    #[test]
    fn compaction_does_not_lose_data() {
        let mut d = Deframer::default();
        let pkt = vec![7u8; 1000];
        for _ in 0..50 {
            d.push(&frame(&pkt).unwrap());
        }
        let mut n = 0;
        while let Some(p) = d.pop().unwrap() {
            assert_eq!(p, pkt);
            n += 1;
        }
        assert_eq!(n, 50);
    }
}
