//! A complete RTP packet: fixed header plus opaque payload.

use bytes::Bytes;

use crate::header::RtpHeader;
use crate::{Error, Result};

/// An RTP packet. The payload is reference-counted ([`Bytes`]) so that a
/// single encoded screen update can be fanned out to many participants
/// without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// The fixed header.
    pub header: RtpHeader,
    /// The payload following the header (padding already stripped).
    pub payload: Bytes,
}

impl RtpPacket {
    /// Build a packet from header and payload.
    pub fn new(header: RtpHeader, payload: impl Into<Bytes>) -> Self {
        RtpPacket {
            header,
            payload: payload.into(),
        }
    }

    /// Total serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        self.header.wire_len() + self.payload.len()
    }

    /// Serialize header + payload into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.header.encode_into(&mut out);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse a packet from a datagram. Padding octets indicated by the P bit
    /// are stripped from the payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, consumed, padding) = RtpHeader::decode(buf)?;
        let end = buf.len().checked_sub(padding).ok_or(Error::BadPadding)?;
        if end < consumed {
            return Err(Error::BadPadding);
        }
        Ok(RtpPacket {
            header,
            payload: Bytes::copy_from_slice(&buf[consumed..end]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = RtpHeader::new(99, 7, 1000, 42);
        let p = RtpPacket::new(h.clone(), vec![1u8, 2, 3, 4]);
        let bytes = p.encode();
        let back = RtpPacket::decode(&bytes).unwrap();
        assert_eq!(back.header, h);
        assert_eq!(&back.payload[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_payload_ok() {
        let p = RtpPacket::new(RtpHeader::new(99, 0, 0, 1), Vec::new());
        let back = RtpPacket::decode(&p.encode()).unwrap();
        assert!(back.payload.is_empty());
    }

    #[test]
    fn padding_stripped_from_payload() {
        let h = RtpHeader::new(99, 7, 1000, 42);
        let mut bytes = h.encode();
        bytes[0] |= 0x20; // P bit
        bytes.extend_from_slice(&[10, 20, 30]); // payload
        bytes.extend_from_slice(&[0, 2]); // 2 octets of padding
        let back = RtpPacket::decode(&bytes).unwrap();
        assert_eq!(&back.payload[..], &[10, 20, 30]);
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // Cheap deterministic fuzz over short buffers.
        let mut state = 0x12345678u32;
        for len in 0..64 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = RtpPacket::decode(&buf);
        }
    }
}
