//! Sequence-number arithmetic and receiver statistics (RFC 3550 Appendix A).

/// Compare two 16-bit sequence numbers in wrapping order.
///
/// Returns `true` if `a` is strictly newer than `b` under RFC 1982-style
/// serial-number arithmetic (half the space forward of `b`).
pub fn seq_newer(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// Signed distance from `b` to `a` in wrapping sequence space
/// (positive when `a` is newer than `b`).
pub fn seq_delta(a: u16, b: u16) -> i32 {
    let d = a.wrapping_sub(b);
    if d < 0x8000 {
        d as i32
    } else {
        d as i32 - 0x10000
    }
}

/// Tracks the extended (64-bit) sequence number of a remote sender across
/// 16-bit wraparounds, following the algorithm sketched in RFC 3550 A.1.
#[derive(Debug, Clone)]
pub struct ExtendedSeq {
    cycles: u64,
    max_seq: u16,
    initialized: bool,
}

impl Default for ExtendedSeq {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtendedSeq {
    /// New, uninitialized tracker.
    pub fn new() -> Self {
        ExtendedSeq {
            cycles: 0,
            max_seq: 0,
            initialized: false,
        }
    }

    /// Feed an arriving sequence number; returns the extended 64-bit value.
    pub fn update(&mut self, seq: u16) -> u64 {
        if !self.initialized {
            self.initialized = true;
            self.max_seq = seq;
            return seq as u64;
        }
        let delta = seq_delta(seq, self.max_seq);
        if delta > 0 {
            if seq < self.max_seq {
                // wrapped forward
                self.cycles += 1 << 16;
            }
            self.max_seq = seq;
            self.cycles + seq as u64
        } else {
            // Old or duplicate packet: it may belong to the previous cycle.
            if seq > self.max_seq {
                // e.g. max=5 after a wrap, seq=65530 from before the wrap
                (self.cycles.saturating_sub(1 << 16)) + seq as u64
            } else {
                self.cycles + seq as u64
            }
        }
    }

    /// Highest extended sequence number seen so far.
    pub fn highest(&self) -> u64 {
        self.cycles + self.max_seq as u64
    }

    /// Whether at least one packet was observed.
    pub fn initialized(&self) -> bool {
        self.initialized
    }
}

/// Interarrival jitter estimator (RFC 3550 §6.4.1 / A.8), operating on the
/// 90 kHz RTP timestamp domain.
#[derive(Debug, Clone, Default)]
pub struct JitterEstimator {
    /// Relative transit time of the previous packet (arrival − RTP ts).
    last_transit: Option<i64>,
    /// Current smoothed jitter estimate, in timestamp units, scaled by 16
    /// internally per the RFC's fixed-point recipe.
    jitter_scaled: u64,
}

impl JitterEstimator {
    /// New estimator with zero jitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a packet arrival. `arrival_ts` is the local arrival instant
    /// already converted to the 90 kHz domain; `rtp_ts` is the packet's RTP
    /// timestamp. Returns the updated jitter estimate in timestamp units.
    pub fn on_packet(&mut self, arrival_ts: u64, rtp_ts: u32) -> u32 {
        let transit = arrival_ts as i64 - rtp_ts as i64;
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).unsigned_abs();
            // J += (|D| - J) / 16, in fixed point.
            self.jitter_scaled =
                self.jitter_scaled + d.saturating_mul(16).saturating_sub(self.jitter_scaled) / 16;
        }
        self.last_transit = Some(transit);
        self.jitter()
    }

    /// Current estimate in RTP timestamp units.
    pub fn jitter(&self) -> u32 {
        (self.jitter_scaled / 16).min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newer_basic() {
        assert!(seq_newer(2, 1));
        assert!(!seq_newer(1, 2));
        assert!(!seq_newer(5, 5));
    }

    #[test]
    fn newer_across_wrap() {
        assert!(seq_newer(3, 65533));
        assert!(!seq_newer(65533, 3));
    }

    #[test]
    fn delta_signs() {
        assert_eq!(seq_delta(10, 7), 3);
        assert_eq!(seq_delta(7, 10), -3);
        assert_eq!(seq_delta(2, 65534), 4);
        assert_eq!(seq_delta(65534, 2), -4);
    }

    #[test]
    fn extended_tracks_wrap() {
        let mut e = ExtendedSeq::new();
        assert_eq!(e.update(65534), 65534);
        assert_eq!(e.update(65535), 65535);
        assert_eq!(e.update(0), 65536);
        assert_eq!(e.update(1), 65537);
        assert_eq!(e.highest(), 65537);
    }

    #[test]
    fn extended_handles_stragglers_after_wrap() {
        let mut e = ExtendedSeq::new();
        e.update(65535);
        e.update(1); // wrapped; cycles = 1<<16
                     // A late packet from before the wrap keeps its pre-wrap extension.
        assert_eq!(e.update(65534), 65534);
        // And the highest is unchanged.
        assert_eq!(e.highest(), 65537);
    }

    #[test]
    fn extended_duplicate_is_stable() {
        let mut e = ExtendedSeq::new();
        e.update(100);
        assert_eq!(e.update(100), 100);
        assert_eq!(e.highest(), 100);
    }

    #[test]
    fn jitter_zero_for_perfect_pacing() {
        let mut j = JitterEstimator::new();
        for i in 0..100u64 {
            // Packets generated and arriving in lockstep: transit constant.
            j.on_packet(1_000_000 + i * 3000, (i * 3000) as u32);
        }
        assert_eq!(j.jitter(), 0);
    }

    #[test]
    fn jitter_grows_with_variance() {
        let mut j = JitterEstimator::new();
        for i in 0..200u64 {
            let wobble = if i % 2 == 0 { 0 } else { 900 };
            j.on_packet(1_000_000 + i * 3000 + wobble, (i * 3000) as u32);
        }
        // Alternating ±900 transit converges toward 900 ticks of jitter.
        assert!(
            j.jitter() > 400,
            "jitter {} should reflect 900-tick wobble",
            j.jitter()
        );
    }
}
