//! Sender-side retransmission cache.
//!
//! "AHs MAY support retransmissions" (draft §4.5.1). When it does, the AH
//! keeps recently sent remoting packets so that a Generic NACK (§5.3.2) can
//! be answered with the original packet. The cache is bounded both by packet
//! count and by total byte size; eviction is oldest-first, matching how NACK
//! usefulness decays.

use std::collections::VecDeque;

use adshare_obs::{Gauge, Registry};

use crate::packet::RtpPacket;
use crate::seq::seq_delta;

/// A bounded history of sent packets keyed by sequence number.
#[derive(Debug)]
pub struct RetransmitHistory {
    entries: VecDeque<RtpPacket>,
    max_packets: usize,
    max_bytes: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    // Occupancy gauges (inert until adopted into a registry).
    g_packets: Gauge,
    g_bytes: Gauge,
}

impl RetransmitHistory {
    /// Create a history bounded by `max_packets` packets and `max_bytes`
    /// total payload bytes (whichever is hit first).
    pub fn new(max_packets: usize, max_bytes: usize) -> Self {
        RetransmitHistory {
            entries: VecDeque::new(),
            max_packets: max_packets.max(1),
            max_bytes: max_bytes.max(1),
            bytes: 0,
            hits: 0,
            misses: 0,
            g_packets: Gauge::new(),
            g_bytes: Gauge::new(),
        }
    }

    /// Record a packet that was just sent.
    pub fn record(&mut self, pkt: RtpPacket) {
        self.bytes += pkt.wire_len();
        self.entries.push_back(pkt);
        while self.entries.len() > self.max_packets || self.bytes > self.max_bytes {
            if let Some(evicted) = self.entries.pop_front() {
                self.bytes -= evicted.wire_len();
            } else {
                break;
            }
        }
        self.g_packets.set(self.entries.len() as i64);
        self.g_bytes.set(self.bytes as i64);
    }

    /// Look up a packet by sequence number (binary search: the deque is in
    /// send order, hence in wrapping sequence order).
    pub fn lookup(&mut self, seq: u16) -> Option<&RtpPacket> {
        let base = self.entries.front()?.header.sequence;
        let idx = self
            .entries
            .binary_search_by_key(&seq_delta(seq, base), |p| {
                seq_delta(p.header.sequence, base)
            })
            .ok();
        match idx {
            Some(i) => {
                self.hits += 1;
                self.entries.get(i)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `seq` is currently cached, *without* counting toward the
    /// hit/miss stats. Lets suppression-window probes (relay §6
    /// generalization) check availability before committing to a lookup.
    pub fn contains(&self, seq: u16) -> bool {
        let Some(front) = self.entries.front() else {
            return false;
        };
        let base = front.header.sequence;
        self.entries
            .binary_search_by_key(&seq_delta(seq, base), |p| {
                seq_delta(p.header.sequence, base)
            })
            .is_ok()
    }

    /// Number of packets currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cached bytes (wire size).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// (lookup hits, lookup misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Adopt occupancy gauges into `registry` under `prefix`: current
    /// `{prefix}.packets` / `{prefix}.bytes` against the static caps
    /// `{prefix}.max_packets` / `{prefix}.max_bytes`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        registry.adopt_gauge(&format!("{prefix}.packets"), &self.g_packets);
        registry.adopt_gauge(&format!("{prefix}.bytes"), &self.g_bytes);
        registry
            .gauge(&format!("{prefix}.max_packets"))
            .set(self.max_packets as i64);
        registry
            .gauge(&format!("{prefix}.max_bytes"))
            .set(self.max_bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::RtpHeader;

    fn pkt(seq: u16, size: usize) -> RtpPacket {
        RtpPacket::new(RtpHeader::new(99, seq, 0, 1), vec![0u8; size])
    }

    #[test]
    fn lookup_hit_and_miss() {
        let mut h = RetransmitHistory::new(100, 1 << 20);
        for s in 0..10 {
            h.record(pkt(s, 10));
        }
        assert_eq!(h.lookup(5).unwrap().header.sequence, 5);
        assert!(h.lookup(99).is_none());
        assert_eq!(h.stats(), (1, 1));
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let mut h = RetransmitHistory::new(100, 1 << 20);
        for s in 0..10 {
            h.record(pkt(s, 10));
        }
        assert!(h.contains(5));
        assert!(!h.contains(99));
        assert_eq!(h.stats(), (0, 0), "contains() is a silent probe");
    }

    #[test]
    fn packet_count_bound() {
        let mut h = RetransmitHistory::new(4, 1 << 20);
        for s in 0..10 {
            h.record(pkt(s, 10));
        }
        assert_eq!(h.len(), 4);
        assert!(h.lookup(5).is_none(), "old packet evicted");
        assert!(h.lookup(9).is_some());
    }

    #[test]
    fn byte_bound() {
        let mut h = RetransmitHistory::new(1000, 100);
        for s in 0..10 {
            h.record(pkt(s, 30)); // wire_len = 42 each
        }
        assert!(h.bytes() <= 100);
        assert!(h.len() <= 2);
    }

    #[test]
    fn occupancy_gauges_track_contents_and_caps() {
        use adshare_obs::{MetricSnapshot, Registry};
        let mut h = RetransmitHistory::new(4, 1 << 20);
        let registry = Registry::new();
        h.register_metrics(&registry, "ah.retx_history");
        for s in 0..10 {
            h.record(pkt(s, 10));
        }
        let snap = registry.snapshot();
        let gauge = |name: &str| match snap.get(name) {
            Some(MetricSnapshot::Gauge(v)) => *v,
            other => panic!("{name}: expected gauge, got {other:?}"),
        };
        assert_eq!(gauge("ah.retx_history.packets"), 4);
        assert_eq!(gauge("ah.retx_history.bytes"), h.bytes() as i64);
        assert_eq!(gauge("ah.retx_history.max_packets"), 4);
        assert_eq!(gauge("ah.retx_history.max_bytes"), 1 << 20);
    }

    #[test]
    fn lookup_across_wraparound() {
        let mut h = RetransmitHistory::new(10, 1 << 20);
        for s in [65533u16, 65534, 65535, 0, 1, 2] {
            h.record(pkt(s, 5));
        }
        assert_eq!(h.lookup(65535).unwrap().header.sequence, 65535);
        assert_eq!(h.lookup(1).unwrap().header.sequence, 1);
    }
}
