//! Sans-IO RTP/RTCP substrate for the application/desktop sharing protocol.
//!
//! This crate implements the pieces of RFC 3550 (RTP), RFC 4585 (RTCP
//! feedback: Picture Loss Indication and Generic NACK) and RFC 4571
//! (RTP framing over connection-oriented transports) that
//! `draft-boyaci-avt-app-sharing-00` depends on.
//!
//! Everything here is *sans-IO*: packets are parsed from and serialized to
//! byte buffers; no sockets, clocks, or threads. Transport integration lives
//! in `adshare-netsim` and `adshare-session`.
//!
//! # Layout
//!
//! * [`header`] — the RTP fixed header (RFC 3550 §5.1), including CSRC lists
//!   and header extensions.
//! * [`packet`] — a full RTP packet (header + payload) with zero-copy payload
//!   handling via [`bytes::Bytes`].
//! * [`seq`] — sequence-number arithmetic, extended sequence tracking and the
//!   interarrival jitter estimator from RFC 3550 Appendix A.
//! * [`reorder`] — a receiver-side reordering buffer that releases packets in
//!   order and reports gaps (feeding NACK generation).
//! * [`rtcp`] — RTCP compound packets: SR, RR, SDES, BYE, and the RFC 4585
//!   transport/payload-specific feedback messages.
//! * [`framing`] — RFC 4571 length-prefixed framing for TCP transport.
//! * [`history`] — sender-side retransmission cache keyed by sequence number.
//! * [`session`] — per-SSRC sender/receiver bookkeeping (random initial
//!   sequence/timestamp per the draft's security note, receive statistics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod framing;
pub mod header;
pub mod history;
pub mod packet;
pub mod reorder;
pub mod rtcp;
pub mod seq;
pub mod session;

pub use error::Error;
pub use header::RtpHeader;
pub use packet::RtpPacket;

/// The RTP timestamp clock rate mandated by the draft for both the remoting
/// and HIP payload formats (§5.1.1, §6.1.1 and the media-type registrations).
pub const CLOCK_RATE: u32 = 90_000;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
