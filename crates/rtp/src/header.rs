//! RTP fixed header (RFC 3550 §5.1).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |V=2|P|X|  CC   |M|     PT      |       sequence number         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                           timestamp                           |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |           synchronization source (SSRC) identifier            |
//! +=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+=+
//! |            contributing source (CSRC) identifiers             |
//! |                             ....                              |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use crate::{Error, Result};

/// Size of the fixed RTP header with no CSRC entries.
pub const MIN_HEADER_LEN: usize = 12;

/// The only RTP version this crate produces or accepts.
pub const RTP_VERSION: u8 = 2;

/// An RTP header extension (RFC 3550 §5.3.1): a 16-bit profile-defined
/// identifier plus a 32-bit-word-aligned body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderExtension {
    /// Profile-defined identifier.
    pub profile: u16,
    /// Extension body; must be a multiple of 4 bytes when serialized (it is
    /// padded with zeros if not).
    pub data: Vec<u8>,
}

/// A decoded RTP fixed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpHeader {
    /// Marker bit. The draft uses this on the remoting stream to flag the
    /// last packet of a (possibly multi-packet) `RegionUpdate` (§5.1.1); HIP
    /// senders MUST set it to zero (§6.1.1).
    pub marker: bool,
    /// Payload type (7 bits). Remoting and HIP use distinct dynamic PTs
    /// negotiated in SDP (§10.3 uses 99 and 100).
    pub payload_type: u8,
    /// Sequence number; increments by one per packet, wraps mod 2^16.
    pub sequence: u16,
    /// 90 kHz media timestamp (§5.1.1/§6.1.1).
    pub timestamp: u32,
    /// Synchronisation source identifier.
    pub ssrc: u32,
    /// Contributing sources (at most 15).
    pub csrc: Vec<u32>,
    /// Optional header extension.
    pub extension: Option<HeaderExtension>,
}

impl RtpHeader {
    /// Create a header with no CSRCs and no extension.
    pub fn new(payload_type: u8, sequence: u16, timestamp: u32, ssrc: u32) -> Self {
        RtpHeader {
            marker: false,
            payload_type: payload_type & 0x7f,
            sequence,
            timestamp,
            ssrc,
            csrc: Vec::new(),
            extension: None,
        }
    }

    /// Serialized length in bytes.
    pub fn wire_len(&self) -> usize {
        let mut len = MIN_HEADER_LEN + 4 * self.csrc.len();
        if let Some(ext) = &self.extension {
            len += 4 + pad4(ext.data.len());
        }
        len
    }

    /// Append the serialized header to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let cc = self.csrc.len().min(15) as u8;
        let b0 = (RTP_VERSION << 6) | (u8::from(self.extension.is_some()) << 4) | cc;
        let b1 = (u8::from(self.marker) << 7) | (self.payload_type & 0x7f);
        out.push(b0);
        out.push(b1);
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        for c in self.csrc.iter().take(15) {
            out.extend_from_slice(&c.to_be_bytes());
        }
        if let Some(ext) = &self.extension {
            let padded = pad4(ext.data.len());
            out.extend_from_slice(&ext.profile.to_be_bytes());
            out.extend_from_slice(&((padded / 4) as u16).to_be_bytes());
            out.extend_from_slice(&ext.data);
            out.resize(out.len() + (padded - ext.data.len()), 0);
        }
    }

    /// Serialize to a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out
    }

    /// Parse a header from the front of `buf`.
    ///
    /// Returns the header, the number of header bytes consumed, and the
    /// number of padding bytes at the *end* of the packet (from the P bit;
    /// the caller must strip these from the payload).
    pub fn decode(buf: &[u8]) -> Result<(Self, usize, usize)> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                what: "RTP header",
                need: MIN_HEADER_LEN,
                have: buf.len(),
            });
        }
        let version = buf[0] >> 6;
        if version != RTP_VERSION {
            return Err(Error::BadVersion(version));
        }
        let has_padding = buf[0] & 0x20 != 0;
        let has_extension = buf[0] & 0x10 != 0;
        let cc = (buf[0] & 0x0f) as usize;
        let marker = buf[1] & 0x80 != 0;
        let payload_type = buf[1] & 0x7f;
        let sequence = u16::from_be_bytes([buf[2], buf[3]]);
        let timestamp = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let ssrc = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);

        let mut off = MIN_HEADER_LEN;
        let need = off + 4 * cc;
        if buf.len() < need {
            return Err(Error::Truncated {
                what: "RTP CSRC list",
                need,
                have: buf.len(),
            });
        }
        let mut csrc = Vec::with_capacity(cc);
        for i in 0..cc {
            let p = off + 4 * i;
            csrc.push(u32::from_be_bytes([
                buf[p],
                buf[p + 1],
                buf[p + 2],
                buf[p + 3],
            ]));
        }
        off = need;

        let extension = if has_extension {
            if buf.len() < off + 4 {
                return Err(Error::Truncated {
                    what: "RTP extension header",
                    need: off + 4,
                    have: buf.len(),
                });
            }
            let profile = u16::from_be_bytes([buf[off], buf[off + 1]]);
            let words = u16::from_be_bytes([buf[off + 2], buf[off + 3]]) as usize;
            let data_len = words * 4;
            if buf.len() < off + 4 + data_len {
                return Err(Error::Truncated {
                    what: "RTP extension body",
                    need: off + 4 + data_len,
                    have: buf.len(),
                });
            }
            let data = buf[off + 4..off + 4 + data_len].to_vec();
            off += 4 + data_len;
            Some(HeaderExtension { profile, data })
        } else {
            None
        };

        let padding = if has_padding {
            // The final octet of the packet counts the padding octets,
            // including itself (RFC 3550 §5.1).
            let last = *buf.last().ok_or(Error::BadPadding)?;
            let pad = last as usize;
            if pad == 0 || off + pad > buf.len() {
                return Err(Error::BadPadding);
            }
            pad
        } else {
            0
        };

        Ok((
            RtpHeader {
                marker,
                payload_type,
                sequence,
                timestamp,
                ssrc,
                csrc,
                extension,
            },
            off,
            padding,
        ))
    }
}

fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RtpHeader {
        let mut h = RtpHeader::new(99, 0x1234, 0xdeadbeef, 0xcafebabe);
        h.marker = true;
        h
    }

    #[test]
    fn round_trip_minimal() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), MIN_HEADER_LEN);
        let (back, consumed, pad) = RtpHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(consumed, MIN_HEADER_LEN);
        assert_eq!(pad, 0);
    }

    #[test]
    fn first_byte_layout() {
        let bytes = sample().encode();
        assert_eq!(bytes[0] >> 6, 2, "version");
        assert_eq!(bytes[0] & 0x3f, 0, "no P/X/CC");
        assert_eq!(bytes[1], 0x80 | 99, "marker + PT");
    }

    #[test]
    fn round_trip_with_csrc_and_extension() {
        let mut h = sample();
        h.csrc = vec![1, 2, 3];
        h.extension = Some(HeaderExtension {
            profile: 0xbede,
            data: vec![9, 9, 9],
        });
        let bytes = h.encode();
        let (back, consumed, _) = RtpHeader::decode(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back.csrc, vec![1, 2, 3]);
        let ext = back.extension.unwrap();
        assert_eq!(ext.profile, 0xbede);
        // Body is zero-padded to a 4-byte boundary on the wire.
        assert_eq!(ext.data, vec![9, 9, 9, 0]);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().encode();
        bytes[0] = (1 << 6) | (bytes[0] & 0x3f);
        assert_eq!(RtpHeader::decode(&bytes), Err(Error::BadVersion(1)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let mut h = sample();
        h.csrc = vec![7; 15];
        h.extension = Some(HeaderExtension {
            profile: 1,
            data: vec![0; 8],
        });
        let bytes = h.encode();
        for cut in 0..bytes.len() {
            assert!(
                RtpHeader::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        assert!(RtpHeader::decode(&bytes).is_ok());
    }

    #[test]
    fn padding_count_is_reported() {
        let h = sample();
        let mut bytes = h.encode();
        bytes[0] |= 0x20; // set P bit
        bytes.extend_from_slice(&[0, 0, 0, 4]); // 4 padding octets
        let (_, consumed, pad) = RtpHeader::decode(&bytes).unwrap();
        assert_eq!(consumed, MIN_HEADER_LEN);
        assert_eq!(pad, 4);
    }

    #[test]
    fn invalid_padding_rejected() {
        let h = sample();
        let mut bytes = h.encode();
        bytes[0] |= 0x20;
        bytes.push(0); // pad count of zero is invalid
        assert_eq!(RtpHeader::decode(&bytes), Err(Error::BadPadding));
        let mut bytes2 = h.encode();
        bytes2[0] |= 0x20;
        bytes2.push(200); // pad count larger than packet
        assert_eq!(RtpHeader::decode(&bytes2), Err(Error::BadPadding));
    }

    #[test]
    fn csrc_capped_at_15() {
        let mut h = sample();
        h.csrc = vec![0xabcd; 20];
        let bytes = h.encode();
        let (back, _, _) = RtpHeader::decode(&bytes).unwrap();
        assert_eq!(back.csrc.len(), 15);
    }
}
