//! RTCP packets (RFC 3550 §6) and the RFC 4585 feedback messages the draft
//! uses: Picture Loss Indication (§5.3.1) and Generic NACK (§5.3.2).
//!
//! Every RTCP packet starts with the common header:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |V=2|P|  RC/FMT |      PT       |             length            |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! where `length` counts 32-bit words minus one.

pub mod bye;
pub mod feedback;
pub mod report;
pub mod sdes;

pub use bye::Bye;
pub use feedback::{GenericNack, NackEntry, PictureLossIndication};
pub use report::{ReceiverReport, ReportBlock, SenderReport};
pub use sdes::{SdesChunk, SdesItem, SourceDescription};

use crate::{Error, Result};

/// RTCP packet type: Sender Report.
pub const PT_SR: u8 = 200;
/// RTCP packet type: Receiver Report.
pub const PT_RR: u8 = 201;
/// RTCP packet type: Source Description.
pub const PT_SDES: u8 = 202;
/// RTCP packet type: Goodbye.
pub const PT_BYE: u8 = 203;
/// RTCP packet type: Application-defined.
pub const PT_APP: u8 = 204;
/// RTCP packet type: Transport-layer feedback (RFC 4585).
pub const PT_RTPFB: u8 = 205;
/// RTCP packet type: Payload-specific feedback (RFC 4585).
pub const PT_PSFB: u8 = 206;

/// FMT value for Generic NACK within RTPFB (RFC 4585 §6.2.1).
pub const FMT_GENERIC_NACK: u8 = 1;
/// FMT value for PLI within PSFB (RFC 4585 §6.3.1).
pub const FMT_PLI: u8 = 1;

/// Any RTCP packet this stack understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpPacket {
    /// Sender report.
    SenderReport(SenderReport),
    /// Receiver report.
    ReceiverReport(ReceiverReport),
    /// Source description.
    Sdes(SourceDescription),
    /// Goodbye.
    Bye(Bye),
    /// Picture Loss Indication — the draft's full-refresh request.
    Pli(PictureLossIndication),
    /// Generic NACK — the draft's retransmission request.
    Nack(GenericNack),
    /// A structurally valid packet of a type we do not interpret.
    Unknown {
        /// RTCP packet type.
        pt: u8,
        /// Raw packet bytes including the common header.
        raw: Vec<u8>,
    },
}

impl RtcpPacket {
    /// Serialize this packet (one RTCP packet, not a compound).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            RtcpPacket::SenderReport(p) => p.encode(),
            RtcpPacket::ReceiverReport(p) => p.encode(),
            RtcpPacket::Sdes(p) => p.encode(),
            RtcpPacket::Bye(p) => p.encode(),
            RtcpPacket::Pli(p) => p.encode(),
            RtcpPacket::Nack(p) => p.encode(),
            RtcpPacket::Unknown { raw, .. } => raw.clone(),
        }
    }

    /// Parse a single RTCP packet from the front of `buf`; returns the packet
    /// and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize)> {
        let (pt, count, body, total) = split_packet(buf)?;
        let pkt = match pt {
            PT_SR => RtcpPacket::SenderReport(SenderReport::decode_body(count, body)?),
            PT_RR => RtcpPacket::ReceiverReport(ReceiverReport::decode_body(count, body)?),
            PT_SDES => RtcpPacket::Sdes(SourceDescription::decode_body(count, body)?),
            PT_BYE => RtcpPacket::Bye(Bye::decode_body(count, body)?),
            PT_PSFB if count == FMT_PLI => {
                RtcpPacket::Pli(PictureLossIndication::decode_body(body)?)
            }
            PT_RTPFB if count == FMT_GENERIC_NACK => {
                RtcpPacket::Nack(GenericNack::decode_body(body)?)
            }
            PT_RTPFB | PT_PSFB => {
                return Err(Error::UnknownFeedbackFormat { pt, fmt: count });
            }
            _ => RtcpPacket::Unknown {
                pt,
                raw: buf[..total].to_vec(),
            },
        };
        Ok((pkt, total))
    }
}

/// Parse a compound RTCP datagram into its constituent packets.
pub fn decode_compound(buf: &[u8]) -> Result<Vec<RtcpPacket>> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < buf.len() {
        let (pkt, used) = RtcpPacket::decode(&buf[off..])?;
        out.push(pkt);
        off += used;
    }
    Ok(out)
}

/// Serialize several RTCP packets into one compound datagram.
pub fn encode_compound(packets: &[RtcpPacket]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in packets {
        out.extend_from_slice(&p.encode());
    }
    out
}

/// Write the 4-byte common header for a body of `body_len` bytes (which must
/// be a multiple of 4).
pub(crate) fn write_header(out: &mut Vec<u8>, count: u8, pt: u8, body_len: usize) {
    debug_assert!(
        body_len.is_multiple_of(4),
        "RTCP body must be 32-bit aligned"
    );
    out.push((2 << 6) | (count & 0x1f));
    out.push(pt);
    let words = (body_len / 4) as u16;
    out.extend_from_slice(&words.to_be_bytes());
}

/// Split one RTCP packet off the front of `buf`.
/// Returns (pt, count/fmt, body excluding padding, total bytes consumed).
fn split_packet(buf: &[u8]) -> Result<(u8, u8, &[u8], usize)> {
    if buf.len() < 4 {
        return Err(Error::Truncated {
            what: "RTCP header",
            need: 4,
            have: buf.len(),
        });
    }
    let version = buf[0] >> 6;
    if version != 2 {
        return Err(Error::BadVersion(version));
    }
    let has_padding = buf[0] & 0x20 != 0;
    let count = buf[0] & 0x1f;
    let pt = buf[1];
    let words = u16::from_be_bytes([buf[2], buf[3]]) as usize;
    let total = 4 + words * 4;
    if buf.len() < total {
        return Err(Error::Truncated {
            what: "RTCP packet",
            need: total,
            have: buf.len(),
        });
    }
    let mut body_end = total;
    if has_padding {
        let pad = buf[total - 1] as usize;
        if pad == 0 || pad > words * 4 {
            return Err(Error::BadPadding);
        }
        body_end = total - pad;
    }
    Ok((pt, count, &buf[4..body_end], total))
}

pub(crate) fn read_u32(buf: &[u8], off: usize, what: &'static str) -> Result<u32> {
    if buf.len() < off + 4 {
        return Err(Error::Truncated {
            what,
            need: off + 4,
            have: buf.len(),
        });
    }
    Ok(u32::from_be_bytes([
        buf[off],
        buf[off + 1],
        buf[off + 2],
        buf[off + 3],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compound_round_trip() {
        let packets = vec![
            RtcpPacket::ReceiverReport(ReceiverReport {
                ssrc: 7,
                reports: vec![],
            }),
            RtcpPacket::Pli(PictureLossIndication {
                sender_ssrc: 7,
                media_ssrc: 9,
            }),
            RtcpPacket::Nack(GenericNack::from_seqs(7, 9, &[100, 101, 117])),
            RtcpPacket::Bye(Bye {
                sources: vec![7],
                reason: Some("done".into()),
            }),
        ];
        let wire = encode_compound(&packets);
        let back = decode_compound(&wire).unwrap();
        assert_eq!(back, packets);
    }

    #[test]
    fn unknown_type_preserved() {
        let mut raw = Vec::new();
        write_header(&mut raw, 0, PT_APP, 8);
        raw.extend_from_slice(&[0u8; 8]);
        let (pkt, used) = RtcpPacket::decode(&raw).unwrap();
        assert_eq!(used, raw.len());
        match &pkt {
            RtcpPacket::Unknown { pt, raw: r } => {
                assert_eq!(*pt, PT_APP);
                assert_eq!(*r, raw);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert_eq!(pkt.encode(), raw);
    }

    #[test]
    fn unknown_feedback_fmt_rejected() {
        let mut raw = Vec::new();
        write_header(&mut raw, 5, PT_PSFB, 8);
        raw.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            RtcpPacket::decode(&raw).unwrap_err(),
            Error::UnknownFeedbackFormat {
                pt: PT_PSFB,
                fmt: 5
            }
        );
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0xabcdef01u32;
        for len in 0..96 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode_compound(&buf);
        }
    }
}
