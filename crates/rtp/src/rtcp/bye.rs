//! RTCP BYE (RFC 3550 §6.6).

use super::{read_u32, write_header, PT_BYE};
use crate::{Error, Result};

/// A BYE packet: one or more departing SSRCs with an optional reason string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bye {
    /// Departing sources (at most 31).
    pub sources: Vec<u32>,
    /// Optional human-readable reason (e.g. "session closed").
    pub reason: Option<String>,
}

impl Bye {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for ssrc in self.sources.iter().take(31) {
            body.extend_from_slice(&ssrc.to_be_bytes());
        }
        if let Some(reason) = &self.reason {
            let bytes = reason.as_bytes();
            let len = bytes.len().min(255);
            body.push(len as u8);
            body.extend_from_slice(&bytes[..len]);
            while body.len() % 4 != 0 {
                body.push(0);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        write_header(
            &mut out,
            self.sources.len().min(31) as u8,
            PT_BYE,
            body.len(),
        );
        out.extend_from_slice(&body);
        out
    }

    pub(crate) fn decode_body(count: u8, body: &[u8]) -> Result<Self> {
        let mut sources = Vec::with_capacity(count as usize);
        let mut off = 0;
        for _ in 0..count {
            sources.push(read_u32(body, off, "BYE ssrc")?);
            off += 4;
        }
        let reason = if off < body.len() {
            let len = body[off] as usize;
            off += 1;
            if body.len() < off + len {
                return Err(Error::Truncated {
                    what: "BYE reason",
                    need: off + len,
                    have: body.len(),
                });
            }
            Some(String::from_utf8_lossy(&body[off..off + len]).into_owned())
        } else {
            None
        };
        Ok(Bye { sources, reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtcp::RtcpPacket;

    #[test]
    fn round_trip_with_reason() {
        let bye = Bye {
            sources: vec![1, 2, 3],
            reason: Some("shutting down".into()),
        };
        let wire = bye.encode();
        assert_eq!(wire.len() % 4, 0);
        let (pkt, used) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(pkt, RtcpPacket::Bye(bye));
    }

    #[test]
    fn round_trip_without_reason() {
        let bye = Bye {
            sources: vec![42],
            reason: None,
        };
        let (pkt, _) = RtcpPacket::decode(&bye.encode()).unwrap();
        assert_eq!(pkt, RtcpPacket::Bye(bye));
    }
}
