//! RTCP Source Description (SDES, RFC 3550 §6.5).

use super::{read_u32, write_header, PT_SDES};
use crate::{Error, Result};

/// An SDES item type + value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdesItem {
    /// Canonical end-point identifier (CNAME, type 1). Mandatory in every
    /// SDES packet per RFC 3550.
    Cname(String),
    /// User name (NAME, type 2).
    Name(String),
    /// Application or tool name (TOOL, type 6).
    Tool(String),
    /// Any other item type, carried opaquely.
    Other {
        /// SDES item type code.
        kind: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

impl SdesItem {
    fn kind(&self) -> u8 {
        match self {
            SdesItem::Cname(_) => 1,
            SdesItem::Name(_) => 2,
            SdesItem::Tool(_) => 6,
            SdesItem::Other { kind, .. } => *kind,
        }
    }

    fn value(&self) -> &[u8] {
        match self {
            SdesItem::Cname(s) | SdesItem::Name(s) | SdesItem::Tool(s) => s.as_bytes(),
            SdesItem::Other { value, .. } => value,
        }
    }
}

/// One SDES chunk: an SSRC plus its items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdesChunk {
    /// The source being described.
    pub ssrc: u32,
    /// Items; the first SHOULD be a CNAME.
    pub items: Vec<SdesItem>,
}

/// An SDES packet (PT = 202).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDescription {
    /// Chunks (at most 31).
    pub chunks: Vec<SdesChunk>,
}

impl SourceDescription {
    /// Convenience: a single-source SDES carrying just a CNAME.
    pub fn cname(ssrc: u32, cname: &str) -> Self {
        SourceDescription {
            chunks: vec![SdesChunk {
                ssrc,
                items: vec![SdesItem::Cname(cname.to_owned())],
            }],
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for chunk in self.chunks.iter().take(31) {
            body.extend_from_slice(&chunk.ssrc.to_be_bytes());
            for item in &chunk.items {
                let value = item.value();
                let len = value.len().min(255);
                body.push(item.kind());
                body.push(len as u8);
                body.extend_from_slice(&value[..len]);
            }
            // End-of-items marker, then pad the chunk to a 4-byte boundary.
            body.push(0);
            while body.len() % 4 != 0 {
                body.push(0);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        write_header(
            &mut out,
            self.chunks.len().min(31) as u8,
            PT_SDES,
            body.len(),
        );
        out.extend_from_slice(&body);
        out
    }

    pub(crate) fn decode_body(count: u8, body: &[u8]) -> Result<Self> {
        let mut chunks = Vec::with_capacity(count as usize);
        let mut off = 0;
        for _ in 0..count {
            let ssrc = read_u32(body, off, "SDES ssrc")?;
            off += 4;
            let mut items = Vec::new();
            loop {
                if off >= body.len() {
                    return Err(Error::Truncated {
                        what: "SDES items",
                        need: off + 1,
                        have: body.len(),
                    });
                }
                let kind = body[off];
                off += 1;
                if kind == 0 {
                    // end of items; skip padding to 32-bit boundary
                    while off % 4 != 0 {
                        if off < body.len() && body[off] != 0 {
                            return Err(Error::BadLength {
                                what: "SDES",
                                detail: "nonzero chunk padding",
                            });
                        }
                        off += 1;
                    }
                    break;
                }
                if off >= body.len() {
                    return Err(Error::Truncated {
                        what: "SDES item length",
                        need: off + 1,
                        have: body.len(),
                    });
                }
                let len = body[off] as usize;
                off += 1;
                if body.len() < off + len {
                    return Err(Error::Truncated {
                        what: "SDES item value",
                        need: off + len,
                        have: body.len(),
                    });
                }
                let value = &body[off..off + len];
                off += len;
                let item = match kind {
                    1 => SdesItem::Cname(String::from_utf8_lossy(value).into_owned()),
                    2 => SdesItem::Name(String::from_utf8_lossy(value).into_owned()),
                    6 => SdesItem::Tool(String::from_utf8_lossy(value).into_owned()),
                    k => SdesItem::Other {
                        kind: k,
                        value: value.to_vec(),
                    },
                };
                items.push(item);
            }
            chunks.push(SdesChunk { ssrc, items });
        }
        Ok(SourceDescription { chunks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtcp::RtcpPacket;

    #[test]
    fn cname_round_trip() {
        let sdes = SourceDescription::cname(0xdead, "ah@example.com");
        let wire = sdes.encode();
        assert_eq!(wire.len() % 4, 0);
        let (pkt, used) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(pkt, RtcpPacket::Sdes(sdes));
    }

    #[test]
    fn multi_chunk_multi_item() {
        let sdes = SourceDescription {
            chunks: vec![
                SdesChunk {
                    ssrc: 1,
                    items: vec![
                        SdesItem::Cname("a@b".into()),
                        SdesItem::Tool("adshare/0.1".into()),
                    ],
                },
                SdesChunk {
                    ssrc: 2,
                    items: vec![
                        SdesItem::Name("participant two".into()),
                        SdesItem::Other {
                            kind: 8,
                            value: vec![1, 2, 3],
                        },
                    ],
                },
            ],
        };
        let wire = sdes.encode();
        let (pkt, _) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(pkt, RtcpPacket::Sdes(sdes));
    }

    #[test]
    fn empty_item_list_round_trips() {
        let sdes = SourceDescription {
            chunks: vec![SdesChunk {
                ssrc: 9,
                items: vec![],
            }],
        };
        let wire = sdes.encode();
        let (pkt, _) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(pkt, RtcpPacket::Sdes(sdes));
    }

    #[test]
    fn overlong_value_truncated_at_255() {
        let long = "x".repeat(300);
        let sdes = SourceDescription::cname(3, &long);
        let wire = sdes.encode();
        let (pkt, _) = RtcpPacket::decode(&wire).unwrap();
        if let RtcpPacket::Sdes(s) = pkt {
            if let SdesItem::Cname(c) = &s.chunks[0].items[0] {
                assert_eq!(c.len(), 255);
            } else {
                panic!("expected cname");
            }
        } else {
            panic!("expected sdes");
        }
    }
}
