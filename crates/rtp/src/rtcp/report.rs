//! RTCP Sender and Receiver Reports (RFC 3550 §6.4).

use super::{read_u32, write_header, PT_RR, PT_SR};
use crate::{Error, Result};

/// A reception report block (RFC 3550 §6.4.1), 24 bytes on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportBlock {
    /// SSRC of the source this block reports on.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report (fixed point /256).
    pub fraction_lost: u8,
    /// Cumulative number of packets lost (24-bit signed, clamped here).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in timestamp units.
    pub jitter: u32,
    /// Last SR timestamp (middle 32 bits of NTP).
    pub last_sr: u32,
    /// Delay since last SR, in 1/65536 seconds.
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    const LEN: usize = 24;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        let lost = self.cumulative_lost.min(0x00ff_ffff);
        out.push(self.fraction_lost);
        out.extend_from_slice(&lost.to_be_bytes()[1..]);
        out.extend_from_slice(&self.highest_seq.to_be_bytes());
        out.extend_from_slice(&self.jitter.to_be_bytes());
        out.extend_from_slice(&self.last_sr.to_be_bytes());
        out.extend_from_slice(&self.delay_since_last_sr.to_be_bytes());
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < Self::LEN {
            return Err(Error::Truncated {
                what: "report block",
                need: Self::LEN,
                have: buf.len(),
            });
        }
        Ok(ReportBlock {
            ssrc: read_u32(buf, 0, "report block ssrc")?,
            fraction_lost: buf[4],
            cumulative_lost: u32::from_be_bytes([0, buf[5], buf[6], buf[7]]),
            highest_seq: read_u32(buf, 8, "report block seq")?,
            jitter: read_u32(buf, 12, "report block jitter")?,
            last_sr: read_u32(buf, 16, "report block lsr")?,
            delay_since_last_sr: read_u32(buf, 20, "report block dlsr")?,
        })
    }
}

/// An RTCP Sender Report (PT = 200).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderReport {
    /// SSRC of this sender.
    pub ssrc: u32,
    /// NTP timestamp (seconds since 1900 in the high word, fraction low).
    pub ntp: u64,
    /// RTP timestamp corresponding to the NTP instant.
    pub rtp_ts: u32,
    /// Total packets sent.
    pub packet_count: u32,
    /// Total payload octets sent.
    pub octet_count: u32,
    /// Reception report blocks (at most 31).
    pub reports: Vec<ReportBlock>,
}

impl SenderReport {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 24 + ReportBlock::LEN * self.reports.len().min(31);
        let mut out = Vec::with_capacity(4 + body_len);
        write_header(&mut out, self.reports.len().min(31) as u8, PT_SR, body_len);
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        out.extend_from_slice(&self.ntp.to_be_bytes());
        out.extend_from_slice(&self.rtp_ts.to_be_bytes());
        out.extend_from_slice(&self.packet_count.to_be_bytes());
        out.extend_from_slice(&self.octet_count.to_be_bytes());
        for r in self.reports.iter().take(31) {
            r.encode_into(&mut out);
        }
        out
    }

    pub(crate) fn decode_body(count: u8, body: &[u8]) -> Result<Self> {
        if body.len() < 24 {
            return Err(Error::Truncated {
                what: "sender report",
                need: 24,
                have: body.len(),
            });
        }
        let ssrc = read_u32(body, 0, "SR ssrc")?;
        let ntp_hi = read_u32(body, 4, "SR ntp")? as u64;
        let ntp_lo = read_u32(body, 8, "SR ntp")? as u64;
        let rtp_ts = read_u32(body, 12, "SR rtp ts")?;
        let packet_count = read_u32(body, 16, "SR packets")?;
        let octet_count = read_u32(body, 20, "SR octets")?;
        let mut reports = Vec::with_capacity(count as usize);
        let mut off = 24;
        for _ in 0..count {
            reports.push(ReportBlock::decode(&body[off.min(body.len())..])?);
            off += ReportBlock::LEN;
        }
        Ok(SenderReport {
            ssrc,
            ntp: (ntp_hi << 32) | ntp_lo,
            rtp_ts,
            packet_count,
            octet_count,
            reports,
        })
    }
}

/// An RTCP Receiver Report (PT = 201).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// SSRC of the reporting receiver.
    pub ssrc: u32,
    /// Reception report blocks (at most 31).
    pub reports: Vec<ReportBlock>,
}

impl ReceiverReport {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 4 + ReportBlock::LEN * self.reports.len().min(31);
        let mut out = Vec::with_capacity(4 + body_len);
        write_header(&mut out, self.reports.len().min(31) as u8, PT_RR, body_len);
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        for r in self.reports.iter().take(31) {
            r.encode_into(&mut out);
        }
        out
    }

    pub(crate) fn decode_body(count: u8, body: &[u8]) -> Result<Self> {
        let ssrc = read_u32(body, 0, "RR ssrc")?;
        let mut reports = Vec::with_capacity(count as usize);
        let mut off = 4;
        for _ in 0..count {
            reports.push(ReportBlock::decode(&body[off.min(body.len())..])?);
            off += ReportBlock::LEN;
        }
        Ok(ReceiverReport { ssrc, reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: 12,
            cumulative_lost: 345,
            highest_seq: 0x0001_ffff,
            jitter: 90,
            last_sr: 0xaabbccdd,
            delay_since_last_sr: 6553,
        }
    }

    #[test]
    fn sr_round_trip() {
        let sr = SenderReport {
            ssrc: 1,
            ntp: 0x0123_4567_89ab_cdef,
            rtp_ts: 90_000,
            packet_count: 100,
            octet_count: 123_456,
            reports: vec![block(2), block(3)],
        };
        let wire = sr.encode();
        let (pkt, used) = super::super::RtcpPacket::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(pkt, super::super::RtcpPacket::SenderReport(sr));
    }

    #[test]
    fn rr_round_trip_empty() {
        let rr = ReceiverReport {
            ssrc: 55,
            reports: vec![],
        };
        let wire = rr.encode();
        assert_eq!(wire.len(), 8);
        let (pkt, _) = super::super::RtcpPacket::decode(&wire).unwrap();
        assert_eq!(pkt, super::super::RtcpPacket::ReceiverReport(rr));
    }

    #[test]
    fn cumulative_lost_clamped_to_24_bits() {
        let mut b = block(1);
        b.cumulative_lost = u32::MAX;
        let rr = ReceiverReport {
            ssrc: 1,
            reports: vec![b],
        };
        let wire = rr.encode();
        let (pkt, _) = super::super::RtcpPacket::decode(&wire).unwrap();
        if let super::super::RtcpPacket::ReceiverReport(r) = pkt {
            assert_eq!(r.reports[0].cumulative_lost, 0x00ff_ffff);
        } else {
            panic!("wrong type");
        }
    }
}
