//! RFC 4585 feedback messages used by the draft (§5.3):
//! Picture Loss Indication and Generic NACK.
//!
//! Both share the common feedback layout:
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |V=2|P|   FMT   |       PT      |          length               |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                  SSRC of packet sender                        |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                  SSRC of media source                         |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! :            Feedback Control Information (FCI)                 :
//! ```

use super::{read_u32, write_header, FMT_GENERIC_NACK, FMT_PLI, PT_PSFB, PT_RTPFB};
use crate::seq::seq_delta;
use crate::{Error, Result};

/// Picture Loss Indication (RFC 4585 §6.3.1).
///
/// In the draft, a participant sends PLI to request a full refresh: the AH
/// responds with a `WindowManagerInfo` message followed by a full-screen
/// `RegionUpdate` (§5.3.1). Late joiners use it to bootstrap (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PictureLossIndication {
    /// SSRC of the participant sending the PLI.
    pub sender_ssrc: u32,
    /// SSRC of the AH's remoting stream.
    pub media_ssrc: u32,
}

impl PictureLossIndication {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        write_header(&mut out, FMT_PLI, PT_PSFB, 8);
        out.extend_from_slice(&self.sender_ssrc.to_be_bytes());
        out.extend_from_slice(&self.media_ssrc.to_be_bytes());
        out
    }

    pub(crate) fn decode_body(body: &[u8]) -> Result<Self> {
        Ok(PictureLossIndication {
            sender_ssrc: read_u32(body, 0, "PLI sender ssrc")?,
            media_ssrc: read_u32(body, 4, "PLI media ssrc")?,
        })
    }
}

/// One Generic NACK FCI entry: a packet ID plus a bitmask of the following
/// 16 sequence numbers (RFC 4585 §6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NackEntry {
    /// First lost packet's sequence number.
    pub pid: u16,
    /// Bitmask of Lost Packets: bit i set means `pid + i + 1` is also lost.
    pub blp: u16,
}

impl NackEntry {
    /// Iterate over every sequence number this entry reports lost.
    pub fn lost_seqs(&self) -> impl Iterator<Item = u16> + '_ {
        let pid = self.pid;
        let blp = self.blp;
        std::iter::once(pid).chain(
            (0..16u16)
                .filter(move |i| blp & (1 << i) != 0)
                .map(move |i| pid.wrapping_add(i + 1)),
        )
    }
}

/// Generic NACK (RFC 4585 §6.2.1): the draft's retransmission request for
/// UDP participants (§5.3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericNack {
    /// SSRC of the participant sending the NACK.
    pub sender_ssrc: u32,
    /// SSRC of the AH's remoting stream.
    pub media_ssrc: u32,
    /// FCI entries.
    pub entries: Vec<NackEntry>,
}

impl GenericNack {
    /// Build a NACK covering `seqs` with the minimum number of FCI entries.
    ///
    /// Sequence numbers are grouped greedily: each entry covers a PID plus
    /// the 16 sequence numbers after it.
    pub fn from_seqs(sender_ssrc: u32, media_ssrc: u32, seqs: &[u16]) -> Self {
        let mut sorted: Vec<u16> = seqs.to_vec();
        // Sort in wrapping (serial-number) order: pick as base the element
        // that no other element is older than, then order by delta from it.
        if let Some(&base) = seqs
            .iter()
            .min_by_key(|&&s| seqs.iter().filter(|&&o| seq_delta(o, s) < 0).count())
        {
            sorted.sort_by_key(|&s| seq_delta(s, base));
        }
        sorted.dedup();

        let mut entries = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let pid = sorted[i];
            let mut blp = 0u16;
            let mut j = i + 1;
            while j < sorted.len() {
                let d = seq_delta(sorted[j], pid);
                if (1..=16).contains(&d) {
                    blp |= 1 << (d - 1);
                    j += 1;
                } else {
                    break;
                }
            }
            entries.push(NackEntry { pid, blp });
            i = j;
        }
        GenericNack {
            sender_ssrc,
            media_ssrc,
            entries,
        }
    }

    /// All sequence numbers reported lost, in entry order.
    pub fn lost_seqs(&self) -> Vec<u16> {
        self.entries.iter().flat_map(|e| e.lost_seqs()).collect()
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = 8 + 4 * self.entries.len();
        let mut out = Vec::with_capacity(4 + body_len);
        write_header(&mut out, FMT_GENERIC_NACK, PT_RTPFB, body_len);
        out.extend_from_slice(&self.sender_ssrc.to_be_bytes());
        out.extend_from_slice(&self.media_ssrc.to_be_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.pid.to_be_bytes());
            out.extend_from_slice(&e.blp.to_be_bytes());
        }
        out
    }

    pub(crate) fn decode_body(body: &[u8]) -> Result<Self> {
        let sender_ssrc = read_u32(body, 0, "NACK sender ssrc")?;
        let media_ssrc = read_u32(body, 4, "NACK media ssrc")?;
        if !(body.len() - 8).is_multiple_of(4) {
            return Err(Error::BadLength {
                what: "Generic NACK",
                detail: "FCI not 4-byte aligned",
            });
        }
        let mut entries = Vec::with_capacity((body.len() - 8) / 4);
        let mut off = 8;
        while off + 4 <= body.len() {
            entries.push(NackEntry {
                pid: u16::from_be_bytes([body[off], body[off + 1]]),
                blp: u16::from_be_bytes([body[off + 2], body[off + 3]]),
            });
            off += 4;
        }
        Ok(GenericNack {
            sender_ssrc,
            media_ssrc,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtcp::RtcpPacket;

    #[test]
    fn pli_wire_format() {
        let pli = PictureLossIndication {
            sender_ssrc: 0x11223344,
            media_ssrc: 0x55667788,
        };
        let wire = pli.encode();
        assert_eq!(wire.len(), 12);
        assert_eq!(wire[0], (2 << 6) | FMT_PLI);
        assert_eq!(wire[1], PT_PSFB);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 2); // length in words - 1
        let (pkt, _) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(pkt, RtcpPacket::Pli(pli));
    }

    #[test]
    fn nack_single_seq() {
        let nack = GenericNack::from_seqs(1, 2, &[100]);
        assert_eq!(nack.entries, vec![NackEntry { pid: 100, blp: 0 }]);
        assert_eq!(nack.lost_seqs(), vec![100]);
    }

    #[test]
    fn nack_packs_16_followers_into_one_entry() {
        let seqs: Vec<u16> = (100..=116).collect(); // 17 seqs: pid + 16 followers
        let nack = GenericNack::from_seqs(1, 2, &seqs);
        assert_eq!(nack.entries.len(), 1);
        assert_eq!(nack.entries[0].pid, 100);
        assert_eq!(nack.entries[0].blp, 0xffff);
        let mut lost = nack.lost_seqs();
        lost.sort_unstable();
        assert_eq!(lost, seqs);
    }

    #[test]
    fn nack_splits_wide_gaps() {
        let nack = GenericNack::from_seqs(1, 2, &[10, 12, 200]);
        assert_eq!(nack.entries.len(), 2);
        assert_eq!(nack.entries[0], NackEntry { pid: 10, blp: 0b10 });
        assert_eq!(nack.entries[1], NackEntry { pid: 200, blp: 0 });
    }

    #[test]
    fn nack_handles_wraparound() {
        let nack = GenericNack::from_seqs(1, 2, &[65534, 65535, 0, 1]);
        assert_eq!(nack.entries.len(), 1);
        assert_eq!(nack.entries[0].pid, 65534);
        let lost = nack.lost_seqs();
        assert_eq!(lost, vec![65534, 65535, 0, 1]);
    }

    #[test]
    fn nack_dedups_input() {
        let nack = GenericNack::from_seqs(1, 2, &[5, 5, 6, 6]);
        assert_eq!(nack.lost_seqs(), vec![5, 6]);
    }

    #[test]
    fn nack_round_trip() {
        let nack = GenericNack::from_seqs(0xaaaa, 0xbbbb, &[1, 2, 3, 50, 400, 65535]);
        let wire = nack.encode();
        let (pkt, used) = RtcpPacket::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(pkt, RtcpPacket::Nack(nack));
    }

    #[test]
    fn entry_lost_seqs_wraps() {
        let e = NackEntry {
            pid: 65535,
            blp: 0b101,
        };
        let lost: Vec<u16> = e.lost_seqs().collect();
        assert_eq!(lost, vec![65535, 0, 2]);
    }
}
