//! Error type shared by all RTP/RTCP parsing and serialization paths.

use std::fmt;

/// Errors produced while parsing or building RTP/RTCP packets.
///
/// All decoders in this crate are total: any byte input yields either a
/// structured value or one of these errors — never a panic. This is asserted
/// by fuzz-style property tests in each module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the minimum possible encoding.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes required (lower bound).
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The RTP/RTCP version field was not 2.
    BadVersion(u8),
    /// A length or count field is inconsistent with the buffer size.
    BadLength {
        /// What was being parsed.
        what: &'static str,
        /// Human-readable detail.
        detail: &'static str,
    },
    /// An RTCP packet type we do not understand in a context that requires
    /// understanding it.
    UnknownPacketType(u8),
    /// An RTCP feedback message with an unknown format (FMT) value.
    UnknownFeedbackFormat {
        /// RTCP packet type (205 RTPFB / 206 PSFB).
        pt: u8,
        /// The FMT value found in the header.
        fmt: u8,
    },
    /// An RFC 4571 frame longer than the receiver's configured maximum.
    FrameTooLarge {
        /// Length declared by the 2-byte prefix.
        declared: usize,
        /// Maximum the receiver accepts.
        max: usize,
    },
    /// Payload too large to fit the requested MTU after headers.
    MtuTooSmall {
        /// The MTU requested.
        mtu: usize,
        /// Minimum workable MTU for this packet.
        min: usize,
    },
    /// Padding flag set but padding octet count is invalid.
    BadPadding,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { what, need, have } => {
                write!(
                    f,
                    "truncated {what}: need at least {need} bytes, have {have}"
                )
            }
            Error::BadVersion(v) => write!(f, "unsupported RTP version {v} (expected 2)"),
            Error::BadLength { what, detail } => write!(f, "bad length in {what}: {detail}"),
            Error::UnknownPacketType(pt) => write!(f, "unknown RTCP packet type {pt}"),
            Error::UnknownFeedbackFormat { pt, fmt } => {
                write!(f, "unknown RTCP feedback format {fmt} for packet type {pt}")
            }
            Error::FrameTooLarge { declared, max } => {
                write!(
                    f,
                    "RFC 4571 frame of {declared} bytes exceeds maximum {max}"
                )
            }
            Error::MtuTooSmall { mtu, min } => {
                write!(f, "MTU {mtu} too small: need at least {min} bytes")
            }
            Error::BadPadding => write!(f, "invalid RTP padding"),
        }
    }
}

impl std::error::Error for Error {}
