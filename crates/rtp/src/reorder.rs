//! Receiver-side reordering buffer.
//!
//! UDP participants receive remoting packets out of order. The draft relies
//! on RTP sequence numbers to "re-order the packets \[and\] recognize missing
//! packets" (§4.2). This buffer releases packets in sequence order, holds a
//! bounded window of out-of-order arrivals, and reports gaps so the session
//! layer can emit Generic NACKs (§5.3.2).

use std::collections::BTreeMap;

use crate::packet::RtpPacket;
use crate::seq::seq_delta;

/// Outcome of feeding one packet into the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ingest {
    /// Packet accepted (possibly buffered); call `pop_ready` to drain.
    Accepted,
    /// Duplicate of a packet already delivered or buffered; dropped.
    Duplicate,
    /// Packet older than the delivery cursor; dropped.
    TooOld,
}

/// A bounded reordering buffer keyed by 16-bit sequence numbers.
#[derive(Debug)]
pub struct ReorderBuffer {
    /// Next sequence number to deliver, once known.
    next: Option<u16>,
    /// Held packets, keyed by signed distance from `next` (always > 0 for
    /// buffered entries except the one equal to `next`).
    held: BTreeMap<u16, RtpPacket>,
    /// Maximum number of packets held before we skip ahead.
    capacity: usize,
    /// Sequence numbers detected missing since the last `take_missing` call.
    missing: Vec<u16>,
    /// Count of packets dropped as duplicates or too-old.
    dropped: u64,
}

impl ReorderBuffer {
    /// Create a buffer holding at most `capacity` out-of-order packets.
    pub fn new(capacity: usize) -> Self {
        ReorderBuffer {
            next: None,
            held: BTreeMap::new(),
            capacity: capacity.max(1),
            missing: Vec::new(),
            dropped: 0,
        }
    }

    /// Feed an arriving packet.
    pub fn ingest(&mut self, pkt: RtpPacket) -> Ingest {
        let seq = pkt.header.sequence;
        let next = match self.next {
            None => {
                // First packet fixes the delivery cursor.
                self.next = Some(seq);
                seq
            }
            Some(n) => n,
        };
        let delta = seq_delta(seq, next);
        if delta < 0 {
            self.dropped += 1;
            return Ingest::TooOld;
        }
        if self.held.contains_key(&seq) {
            self.dropped += 1;
            return Ingest::Duplicate;
        }
        // Record newly-visible gaps: sequence numbers between the highest we
        // knew about and this arrival. Only a packet that *extends* the
        // highest sequence can reveal a new gap — an arrival that merely
        // fills in behind it must not walk (it would wrap the whole space).
        if delta > 0 {
            let start = self.highest_known();
            if seq_delta(seq, start) > 0 {
                let mut s = start.wrapping_add(1);
                while s != seq {
                    if !self.held.contains_key(&s) {
                        self.missing.push(s);
                    }
                    s = s.wrapping_add(1);
                }
            }
        }
        self.held.insert(seq, pkt);
        // Overflow policy: if we hold too much, advance the cursor to the
        // oldest held packet, abandoning the gap (the session layer will have
        // NACKed it already; eventually a PLI recovers the screen).
        if self.held.len() > self.capacity {
            if let Some(oldest) = self.oldest_held() {
                self.next = Some(oldest);
            }
        }
        Ingest::Accepted
    }

    /// Pop the next in-order packet, if available.
    pub fn pop_ready(&mut self) -> Option<RtpPacket> {
        let next = self.next?;
        if let Some(pkt) = self.held.remove(&next) {
            self.next = Some(next.wrapping_add(1));
            Some(pkt)
        } else {
            None
        }
    }

    /// Force delivery past a gap: jump the cursor to the oldest held packet.
    /// Used when the session layer times out waiting for a retransmission.
    pub fn skip_gap(&mut self) -> bool {
        match (self.next, self.oldest_held()) {
            (Some(n), Some(oldest)) if oldest != n => {
                self.next = Some(oldest);
                true
            }
            _ => false,
        }
    }

    /// Drain the list of sequence numbers newly detected as missing.
    pub fn take_missing(&mut self) -> Vec<u16> {
        std::mem::take(&mut self.missing)
    }

    /// Sequence numbers currently blocking in-order delivery: every gap
    /// between the delivery cursor and the highest held packet. Unlike
    /// [`take_missing`](Self::take_missing) (which reports each gap once,
    /// on detection) this is a live view, so the session layer can re-NACK
    /// a gap whose first repair was itself lost. Returns at most `limit`
    /// sequences; empty when nothing is held (a tail loss blocks nothing
    /// and is repaired via receiver reports instead).
    pub fn missing_now(&self, limit: usize) -> Vec<u16> {
        let Some(next) = self.next else {
            return Vec::new();
        };
        if self.held.is_empty() {
            return Vec::new();
        }
        let highest = self.highest_known();
        let mut out = Vec::new();
        let mut s = next;
        // The walk is bounded by the held span, which the capacity-overflow
        // policy keeps short; the explicit cap guards pathological spans.
        for _ in 0..4096 {
            if s == highest.wrapping_add(1) {
                break;
            }
            if !self.held.contains_key(&s) {
                out.push(s);
                if out.len() >= limit {
                    break;
                }
            }
            s = s.wrapping_add(1);
        }
        out
    }

    /// Number of packets currently buffered out of order.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Packets dropped as duplicate/too-old since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn highest_known(&self) -> u16 {
        // Highest (in wrapping order) of held keys and next-1.
        let base = self.next.unwrap_or(0).wrapping_sub(1);
        self.held
            .keys()
            .copied()
            .fold(base, |acc, k| if seq_delta(k, acc) > 0 { k } else { acc })
    }

    fn oldest_held(&self) -> Option<u16> {
        self.held
            .keys()
            .copied()
            .reduce(|acc, k| if seq_delta(k, acc) < 0 { k } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::RtpHeader;

    fn pkt(seq: u16) -> RtpPacket {
        RtpPacket::new(RtpHeader::new(99, seq, 0, 1), vec![seq as u8])
    }

    fn drain(buf: &mut ReorderBuffer) -> Vec<u16> {
        let mut out = Vec::new();
        while let Some(p) = buf.pop_ready() {
            out.push(p.header.sequence);
        }
        out
    }

    #[test]
    fn in_order_passthrough() {
        let mut b = ReorderBuffer::new(16);
        for s in 10..15 {
            assert_eq!(b.ingest(pkt(s)), Ingest::Accepted);
        }
        assert_eq!(drain(&mut b), vec![10, 11, 12, 13, 14]);
        assert!(b.take_missing().is_empty());
    }

    #[test]
    fn reorders_swapped_pair() {
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(0));
        b.ingest(pkt(2));
        assert_eq!(drain(&mut b), vec![0]); // 1 missing, 2 held
        assert_eq!(b.take_missing(), vec![1]);
        b.ingest(pkt(1));
        assert_eq!(drain(&mut b), vec![1, 2]);
    }

    #[test]
    fn duplicate_and_old_dropped() {
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(5));
        assert_eq!(b.ingest(pkt(5)), Ingest::Duplicate);
        assert_eq!(drain(&mut b), vec![5]);
        assert_eq!(b.ingest(pkt(5)), Ingest::TooOld);
        assert_eq!(b.ingest(pkt(4)), Ingest::TooOld);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn gap_detection_across_wrap() {
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(65534));
        b.ingest(pkt(1)); // 65535 and 0 missing
        let mut missing = b.take_missing();
        missing.sort_unstable();
        assert_eq!(missing, vec![0, 65535]);
    }

    #[test]
    fn overflow_skips_ahead() {
        let mut b = ReorderBuffer::new(4);
        b.ingest(pkt(0));
        assert_eq!(drain(&mut b), vec![0]);
        // Packet 1 lost forever; 2..=6 arrive, exceeding capacity 4.
        for s in 2..=6 {
            b.ingest(pkt(s));
        }
        // Cursor jumped to 2; everything held drains in order.
        assert_eq!(drain(&mut b), vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn backfill_arrival_does_not_wrap_gap_walk() {
        // Regression: with 3 held (next=0 missing, 1..=3 held), a late
        // arrival of 1's *duplicate partner* 2 — newer than the cursor but
        // older than the highest-seen — must not report ~65k missing seqs.
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(0));
        assert_eq!(drain(&mut b), vec![0]);
        b.ingest(pkt(5)); // gap: 1..=4 missing
        let mut miss = b.take_missing();
        miss.sort_unstable();
        assert_eq!(miss, vec![1, 2, 3, 4]);
        // Backfill 2 (behind highest 5): reveals nothing new.
        b.ingest(pkt(2));
        assert!(
            b.take_missing().is_empty(),
            "backfill must not re-report gaps"
        );
        b.ingest(pkt(3));
        assert!(b.take_missing().is_empty());
        // Extending the highest reveals exactly the fresh gap.
        b.ingest(pkt(7));
        assert_eq!(b.take_missing(), vec![6]);
    }

    #[test]
    fn missing_now_is_a_live_view_of_blocking_gaps() {
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(0));
        assert_eq!(drain(&mut b), vec![0]);
        b.ingest(pkt(4)); // 1..=3 missing, 4 held
        b.take_missing();
        // take_missing is one-shot, but the gap still blocks delivery.
        assert!(b.take_missing().is_empty());
        assert_eq!(b.missing_now(16), vec![1, 2, 3]);
        b.ingest(pkt(2));
        assert_eq!(b.missing_now(16), vec![1, 3]);
        assert_eq!(b.missing_now(1), vec![1]);
        b.ingest(pkt(1));
        b.ingest(pkt(3));
        assert_eq!(drain(&mut b), vec![1, 2, 3, 4]);
        assert!(b.missing_now(16).is_empty(), "nothing held, nothing blocks");
    }

    #[test]
    fn skip_gap_on_timeout() {
        let mut b = ReorderBuffer::new(16);
        b.ingest(pkt(0));
        b.ingest(pkt(3));
        assert_eq!(drain(&mut b), vec![0]);
        assert!(b.skip_gap());
        assert_eq!(drain(&mut b), vec![3]);
        assert!(!b.skip_gap());
    }
}
