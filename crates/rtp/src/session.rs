//! Per-SSRC sender and receiver bookkeeping.
//!
//! The draft mandates (§5.1.1, §6.1.1) that "the initial value of the
//! timestamp MUST be random (unpredictable)"; RFC 3550 says the same of the
//! initial sequence number. [`RtpSender`] implements both, plus monotone
//! sequence/timestamp assignment. [`RtpReceiver`] accumulates the statistics
//! that feed RTCP receiver reports.

use rand::Rng;

use crate::header::RtpHeader;
use crate::packet::RtpPacket;
use crate::rtcp::ReportBlock;
use crate::seq::{ExtendedSeq, JitterEstimator};

/// Sender-side state for one outgoing RTP stream.
#[derive(Debug)]
pub struct RtpSender {
    ssrc: u32,
    payload_type: u8,
    next_seq: u16,
    /// Random offset added to media timestamps.
    ts_offset: u32,
    packets_sent: u64,
    octets_sent: u64,
}

impl RtpSender {
    /// Create a sender with random initial sequence number and timestamp
    /// offset drawn from `rng` (deterministic in tests and simulations).
    pub fn new(ssrc: u32, payload_type: u8, rng: &mut impl Rng) -> Self {
        RtpSender {
            ssrc,
            payload_type: payload_type & 0x7f,
            next_seq: rng.gen(),
            ts_offset: rng.gen(),
            packets_sent: 0,
            octets_sent: 0,
        }
    }

    /// The stream's SSRC.
    pub fn ssrc(&self) -> u32 {
        self.ssrc
    }

    /// The payload type stamped on outgoing packets.
    pub fn payload_type(&self) -> u8 {
        self.payload_type
    }

    /// Sequence number the next packet will carry.
    pub fn peek_seq(&self) -> u16 {
        self.next_seq
    }

    /// Map a media-clock instant (90 kHz ticks since stream start) to the
    /// on-wire timestamp domain.
    pub fn timestamp_for(&self, media_ticks: u32) -> u32 {
        media_ticks.wrapping_add(self.ts_offset)
    }

    /// Build the next packet in the stream.
    ///
    /// `media_ticks` is the capture instant in 90 kHz ticks; `marker` follows
    /// the draft's rules (§5.1.1: last packet of a RegionUpdate).
    pub fn next_packet(
        &mut self,
        media_ticks: u32,
        marker: bool,
        payload: impl Into<bytes::Bytes>,
    ) -> RtpPacket {
        let mut header = RtpHeader::new(
            self.payload_type,
            self.next_seq,
            self.timestamp_for(media_ticks),
            self.ssrc,
        );
        header.marker = marker;
        self.next_seq = self.next_seq.wrapping_add(1);
        let pkt = RtpPacket::new(header, payload);
        self.packets_sent += 1;
        self.octets_sent += pkt.payload.len() as u64;
        pkt
    }

    /// (packets, payload octets) sent so far — feeds RTCP sender reports.
    pub fn sent_counts(&self) -> (u64, u64) {
        (self.packets_sent, self.octets_sent)
    }
}

/// Receiver-side statistics for one incoming RTP stream.
#[derive(Debug, Default)]
pub struct RtpReceiver {
    ext: ExtendedSeq,
    jitter: JitterEstimator,
    received: u64,
    /// Extended seq of the first packet.
    base_ext: Option<u64>,
    /// Receive count at the previous report (for fraction_lost).
    prev_expected: u64,
    prev_received: u64,
}

impl RtpReceiver {
    /// Fresh statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an arriving packet. `arrival_ticks` is the local arrival time
    /// in the 90 kHz domain.
    pub fn on_packet(&mut self, pkt: &RtpPacket, arrival_ticks: u64) {
        let ext = self.ext.update(pkt.header.sequence);
        if self.base_ext.is_none() {
            self.base_ext = Some(ext);
        }
        self.received += 1;
        self.jitter.on_packet(arrival_ticks, pkt.header.timestamp);
    }

    /// Packets received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets expected so far (based on sequence span).
    pub fn expected(&self) -> u64 {
        match self.base_ext {
            Some(base) => self.ext.highest() - base + 1,
            None => 0,
        }
    }

    /// Cumulative lost (expected − received, floored at 0: duplicates can
    /// make received exceed expected).
    pub fn cumulative_lost(&self) -> u64 {
        self.expected().saturating_sub(self.received)
    }

    /// Current jitter estimate in timestamp ticks.
    pub fn jitter(&self) -> u32 {
        self.jitter.jitter()
    }

    /// Produce an RTCP report block for this stream and roll the interval
    /// counters (fraction_lost covers the window since the previous call).
    pub fn report_block(&mut self, media_ssrc: u32) -> ReportBlock {
        let expected = self.expected();
        let exp_int = expected.saturating_sub(self.prev_expected);
        let rcv_int = self.received.saturating_sub(self.prev_received);
        let lost_int = exp_int.saturating_sub(rcv_int);
        let fraction = lost_int
            .checked_mul(256)
            .and_then(|n| n.checked_div(exp_int))
            .unwrap_or(0)
            .min(255) as u8;
        self.prev_expected = expected;
        self.prev_received = self.received;
        ReportBlock {
            ssrc: media_ssrc,
            fraction_lost: fraction,
            cumulative_lost: self.cumulative_lost().min(0x00ff_ffff_u64) as u32,
            highest_seq: (self.ext.highest() & 0xffff_ffff) as u32,
            jitter: self.jitter(),
            last_sr: 0,
            delay_since_last_sr: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sender_increments_seq_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = RtpSender::new(7, 99, &mut rng);
        let first = s.peek_seq();
        let p1 = s.next_packet(0, false, vec![0u8; 10]);
        let p2 = s.next_packet(3000, true, vec![0u8; 20]);
        assert_eq!(p1.header.sequence, first);
        assert_eq!(p2.header.sequence, first.wrapping_add(1));
        assert!(p2.header.marker);
        assert_eq!(s.sent_counts(), (2, 30));
        assert_eq!(p2.header.timestamp.wrapping_sub(p1.header.timestamp), 3000);
    }

    #[test]
    fn sender_initial_values_depend_on_rng_seed() {
        let a = RtpSender::new(1, 99, &mut StdRng::seed_from_u64(1)).peek_seq();
        let b = RtpSender::new(1, 99, &mut StdRng::seed_from_u64(2)).peek_seq();
        // Overwhelmingly likely to differ; the property we need is that the
        // initial value is drawn from the RNG, not constant.
        assert_ne!(a, b);
    }

    #[test]
    fn receiver_counts_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = RtpSender::new(7, 99, &mut rng);
        let mut r = RtpReceiver::new();
        for i in 0..10u32 {
            let pkt = s.next_packet(i * 3000, false, vec![0u8; 4]);
            if i % 3 != 0 {
                // drop every third packet
                r.on_packet(&pkt, (i * 3000) as u64);
            }
        }
        // Received: i = 1,2,4,5,7,8. The span runs from the first to the
        // highest received packet, so expected = 8 and two are lost inside.
        assert_eq!(r.expected(), 8);
        assert_eq!(r.received(), 6);
        assert_eq!(r.cumulative_lost(), 2);
        let rb = r.report_block(7);
        assert!(rb.fraction_lost > 0);
        // Second report over an empty interval reports zero fraction.
        let rb2 = r.report_block(7);
        assert_eq!(rb2.fraction_lost, 0);
    }

    #[test]
    fn receiver_zero_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = RtpSender::new(7, 99, &mut rng);
        let mut r = RtpReceiver::new();
        for i in 0..50u32 {
            let pkt = s.next_packet(i * 3000, false, vec![]);
            r.on_packet(&pkt, (i * 3000) as u64);
        }
        assert_eq!(r.cumulative_lost(), 0);
        assert_eq!(r.report_block(7).fraction_lost, 0);
    }
}
