//! Deterministic session orchestrator: binds one [`AppHost`] and N
//! [`Participant`]s over simulated links and steps the whole world on a
//! virtual clock. Every experiment and integration test drives this.

use adshare_capture::{
    CaptureConfig, CaptureError, CaptureHandle, CaptureMode, Direction as CapDirection,
    ManifestSummary, StreamKind as CapStreamKind, Transport as CapTransport,
};
use adshare_netsim::tcp::TcpConfig;
use adshare_netsim::time::{us_to_ticks, VirtualClock};
use adshare_netsim::udp::{LinkConfig, UdpChannel};
use adshare_obs::{EventKind, Obs, ACTOR_AH};
use adshare_remoting::hip::HipMessage;
use adshare_screen::desktop::Desktop;

use crate::app_host::{AppHost, ParticipantHandle};
use crate::config::{AhConfig, Layout, TransportKind};
use crate::participant::Participant;

/// How many consecutive stuck ticks before a participant gives up on a
/// reorder gap and falls back to PLI.
const GAP_TIMEOUT_TICKS: u32 = 40;

/// Mirror of the participant's RTCP classifier: a compound RTCP packet
/// carries a packet type in `200..=206` in its second byte, anything else
/// on the downstream path is RTP.
fn rx_kind(datagram: &[u8]) -> CapStreamKind {
    if datagram.len() >= 2 && (200..=206).contains(&datagram[1]) {
        CapStreamKind::Rtcp
    } else {
        CapStreamKind::Rtp
    }
}

struct SimParticipant {
    handle: ParticipantHandle,
    participant: Participant,
    kind: TransportKind,
    /// Upstream path for RTCP feedback and HIP events.
    upstream: UdpChannel,
    /// Pending upstream classification: RTCP datagrams are prefixed 'R',
    /// HIP datagrams 'H', BFCP 'B' (the real system uses distinct ports;
    /// the tag models exactly that demultiplexing).
    stuck_ticks: u32,
    last_held: usize,
    /// False once the viewer has left (churn); the slot stays so other
    /// participants keep their indices.
    active: bool,
}

/// A complete simulated sharing session.
pub struct SimSession {
    /// The application host.
    pub ah: AppHost,
    /// The virtual clock.
    pub clock: VirtualClock,
    participants: Vec<SimParticipant>,
    /// Shared observability bundle: the AH and every participant export
    /// into its registry and thread frame traces through it.
    obs: Obs,
    /// Armed capture sink, cloned into the AH. The session-level taps
    /// (ingress, upstream demux, gap recovery) write through this handle
    /// with the same virtual clock the flight recorder stamps.
    capture: Option<CaptureHandle>,
}

impl SimSession {
    /// Create a session around a desktop.
    pub fn new(desktop: Desktop, cfg: AhConfig, seed: u64) -> Self {
        let encode = adshare_encode::EncodePipeline::new(cfg.encode);
        Self::new_with_pipeline(desktop, cfg, seed, encode)
    }

    /// Create a session whose AH uses an externally built encode pipeline
    /// — the multi-tenant host's injection point for the process-wide
    /// shared cache and bounded worker pool.
    pub fn new_with_pipeline(
        desktop: Desktop,
        cfg: AhConfig,
        seed: u64,
        encode: adshare_encode::EncodePipeline,
    ) -> Self {
        let obs = Obs::new();
        let mut ah = AppHost::new_with_pipeline(desktop, cfg, seed, encode);
        ah.attach_obs(obs.clone());
        SimSession {
            ah,
            clock: VirtualClock::new(),
            participants: Vec::new(),
            obs,
            capture: None,
        }
    }

    /// Arm a consent-gated capture covering the AH egress and every
    /// session-level delivery point. `start_us` is stamped from the session
    /// clock, so capture records and flight-recorder events share one
    /// virtual-time origin and a merged timeline never shows negative
    /// spans. Fails with [`CaptureError::ConsentRequired`] unless `consent`
    /// is set.
    pub fn arm_capture(
        &mut self,
        consent: bool,
        mode: CaptureMode,
        session_id: u64,
    ) -> Result<CaptureHandle, CaptureError> {
        let now = self.clock.now_us();
        let cap = CaptureHandle::arm(CaptureConfig {
            consent,
            mode,
            session_id,
            start_us: now,
        })?;
        cap.attach_obs(self.obs.clone());
        self.ah.attach_capture(cap.clone());
        let (ring, window) = match mode {
            CaptureMode::Ring { window_us } => (1, window_us),
            CaptureMode::Full => (0, 0),
        };
        self.obs
            .event(now, ACTOR_AH, EventKind::CaptureArmed, ring, window);
        self.capture = Some(cap.clone());
        Ok(cap)
    }

    /// The armed capture handle, if any.
    pub fn capture(&self) -> Option<&CaptureHandle> {
        self.capture.as_ref()
    }

    /// Freeze the capture, embedding the flight-recorder ring so
    /// historical Perfetto export works from the capture file alone.
    /// Idempotent; `None` when no capture is armed.
    pub fn finalize_capture(&mut self) -> Option<&CaptureHandle> {
        let cap = self.capture.as_ref()?;
        if !cap.finalized() {
            cap.finalize(&self.obs.recorder.snapshot());
            let stats = cap.stats();
            self.obs.event(
                self.clock.now_us(),
                ACTOR_AH,
                EventKind::CaptureFlushed,
                stats.records,
                stats.payload_bytes,
            );
        }
        self.capture.as_ref()
    }

    /// Manifest of the armed capture: stream census, explicit truncation
    /// accounting, the capture's wire digest, and a decoded-surface digest
    /// per active participant — the replay acceptance record.
    pub fn capture_manifest(&self) -> Option<ManifestSummary> {
        let cap = self.capture.as_ref()?;
        let digests = self
            .participants
            .iter()
            .enumerate()
            .filter(|(_, sp)| sp.active)
            .map(|(idx, sp)| {
                (
                    idx as u16,
                    crate::replay::participant_surface_digest(&sp.participant),
                )
            })
            .collect();
        Some(ManifestSummary::from_handle(cap, digests))
    }

    /// Auto-arm a bounded ring capture and hook it into the health engine:
    /// when a CRITICAL black-box dump fires, the ring (with the
    /// flight-recorder snapshot embedded) is written next to the dump and
    /// its path is reported in the black-box JSON as `capture_path`.
    /// `consent` is still required — auto-arming does not bypass the gate.
    pub fn enable_auto_capture(
        &mut self,
        consent: bool,
        window_us: u64,
        dir: std::path::PathBuf,
        session_id: u64,
    ) -> Result<(), CaptureError> {
        let cap = self.arm_capture(consent, CaptureMode::Ring { window_us }, session_id)?;
        let recorder = self.obs.recorder.clone();
        self.obs
            .health
            .lock()
            .expect("health engine poisoned")
            .set_capture_hook(Box::new(move |at_us| {
                cap.finalize(&recorder.snapshot());
                let path = dir.join(format!("capture-critical-{at_us}.bin"));
                cap.write_to(&path)
                    .ok()
                    .map(|()| path.display().to_string())
            }));
        Ok(())
    }

    /// The session-wide observability bundle (registry + frame traces).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Bootstrap a session from SDP offer/answer (§10): build the AH's
    /// offer, negotiate against the participant's transport preference and
    /// codec support, and configure the session with the agreed parameters.
    /// Returns the session plus the negotiation outcome (ports, payload
    /// types, codec list) for the caller's signalling layer.
    pub fn from_negotiation(
        desktop: Desktop,
        offer: &adshare_sdp::OfferParams,
        prefer: adshare_sdp::answer::Transport,
        supported: &[adshare_codec::CodecKind],
        seed: u64,
    ) -> Result<(Self, adshare_sdp::NegotiatedSession), adshare_sdp::Error> {
        let sdp = adshare_sdp::build_ah_offer(offer);
        let negotiated = adshare_sdp::build_answer(&sdp, prefer, supported)?;
        let cfg = AhConfig {
            remoting_pt: negotiated.remoting_pt,
            retransmissions: negotiated.retransmissions,
            codec: negotiated
                .codecs
                .first()
                .map(|(_, k)| *k)
                .unwrap_or(adshare_codec::CodecKind::Png),
            ..AhConfig::default()
        };
        Ok((SimSession::new(desktop, cfg, seed), negotiated))
    }

    /// Add a UDP participant. Per §4.3 it immediately queues a PLI to fetch
    /// initial state.
    pub fn add_udp_participant(
        &mut self,
        layout: Layout,
        down: LinkConfig,
        up: LinkConfig,
        rate_bps: Option<u64>,
        seed: u64,
    ) -> usize {
        let user_id = self.participants.len() as u16 + 1;
        let handle = self.ah.attach_udp(user_id, down, seed, rate_bps);
        let nack = self.ah.config().retransmissions;
        let mut participant = Participant::new(user_id, layout, nack, seed ^ 0x9e37);
        let idx = self.participants.len();
        participant.attach_obs(&self.obs, idx);
        participant.request_refresh();
        let upstream = UdpChannel::new(up, seed ^ 0x1234);
        upstream.register_metrics(&self.obs.registry, &format!("participant.{idx}.upstream"));
        self.participants.push(SimParticipant {
            handle,
            participant,
            kind: TransportKind::Udp,
            upstream,
            stuck_ticks: 0,
            last_held: 0,
            active: true,
        });
        idx
    }

    /// Add a TCP participant (initial state flows immediately, §4.4).
    pub fn add_tcp_participant(
        &mut self,
        layout: Layout,
        link: TcpConfig,
        up: LinkConfig,
        seed: u64,
    ) -> usize {
        let user_id = self.participants.len() as u16 + 1;
        let handle = self.ah.attach_tcp(user_id, link);
        let mut participant = Participant::new(user_id, layout, false, seed ^ 0x9e37);
        let idx = self.participants.len();
        participant.attach_obs(&self.obs, idx);
        let upstream = UdpChannel::new(up, seed ^ 0x1234);
        upstream.register_metrics(&self.obs.registry, &format!("participant.{idx}.upstream"));
        self.participants.push(SimParticipant {
            handle,
            participant,
            kind: TransportKind::Tcp,
            upstream,
            stuck_ticks: 0,
            last_held: 0,
            active: true,
        });
        idx
    }

    /// Create an additional multicast session with its own pacing rate
    /// (§4.3); returns its session index for
    /// [`SimSession::add_multicast_participant_in`].
    pub fn create_multicast_session(&mut self, rate_bps: Option<u64>) -> usize {
        self.ah.create_multicast_session(rate_bps)
    }

    /// Add a member to the default multicast session.
    pub fn add_multicast_participant(
        &mut self,
        layout: Layout,
        down: LinkConfig,
        up: LinkConfig,
        seed: u64,
    ) -> usize {
        self.ah.enable_multicast(None);
        self.add_multicast_participant_in(0, layout, down, up, seed)
    }

    /// Add a member to a specific multicast session.
    pub fn add_multicast_participant_in(
        &mut self,
        session: usize,
        layout: Layout,
        down: LinkConfig,
        up: LinkConfig,
        seed: u64,
    ) -> usize {
        let user_id = self.participants.len() as u16 + 1;
        let handle = self
            .ah
            .attach_multicast_session(session, user_id, down, seed)
            .expect("multicast session exists");
        let nack = self.ah.config().retransmissions;
        let mut participant = Participant::new(user_id, layout, nack, seed ^ 0x9e37);
        let idx = self.participants.len();
        participant.attach_obs(&self.obs, idx);
        // §5.3.2 NACK-storm avoidance: group members jitter their NACKs by
        // up to ~50 ms so one member's repair serves the others.
        participant.set_nack_backoff(4_500);
        participant.request_refresh();
        let upstream = UdpChannel::new(up, seed ^ 0x1234);
        upstream.register_metrics(&self.obs.registry, &format!("participant.{idx}.upstream"));
        self.participants.push(SimParticipant {
            handle,
            participant,
            kind: TransportKind::Multicast,
            upstream,
            stuck_ticks: 0,
            last_held: 0,
            active: true,
        });
        idx
    }

    /// Schedule time-varying downlink conditions for a UDP participant's
    /// downstream channel (bandwidth steps, loss changes) — the substrate
    /// for rate-adaptation experiments.
    pub fn set_link_schedule(&mut self, idx: usize, steps: Vec<adshare_netsim::LinkStep>) {
        let handle = self.participants[idx].handle;
        self.ah.set_link_schedule(handle, steps);
    }

    /// Number of participants.
    pub fn participant_count(&self) -> usize {
        self.participants.len()
    }

    /// Access a participant.
    pub fn participant(&self, idx: usize) -> &Participant {
        &self.participants[idx].participant
    }

    /// Access a participant mutably.
    pub fn participant_mut(&mut self, idx: usize) -> &mut Participant {
        &mut self.participants[idx].participant
    }

    /// The AH-side handle of a participant.
    pub fn handle(&self, idx: usize) -> ParticipantHandle {
        self.participants[idx].handle
    }

    /// Advance the world by `dt_us`: AH captures and flushes, links
    /// deliver, participants apply and feed back.
    pub fn step(&mut self, dt_us: u64) {
        self.clock.advance_us(dt_us);
        let now = self.clock.now_us();
        let ticks = us_to_ticks(now);

        self.ah.step(now);

        let mut bfcp_responses: Vec<(u16, Vec<u8>)> = Vec::new();
        let capture = self.capture.clone();
        for (idx, sp) in self.participants.iter_mut().enumerate() {
            if !sp.active {
                continue;
            }
            // Downstream.
            match sp.kind {
                TransportKind::Udp | TransportKind::Multicast => {
                    let transport = if sp.kind == TransportKind::Multicast {
                        CapTransport::Multicast
                    } else {
                        CapTransport::Udp
                    };
                    for dg in self.ah.poll_udp(sp.handle, now) {
                        if let Some(cap) = &capture {
                            cap.record(
                                CapDirection::Rx,
                                rx_kind(&dg),
                                transport,
                                idx as u16,
                                now,
                                &dg,
                            );
                        }
                        sp.participant.handle_datagram(&dg, ticks);
                    }
                }
                TransportKind::Tcp => {
                    let bytes = self.ah.poll_tcp(sp.handle, now);
                    if !bytes.is_empty() {
                        if let Some(cap) = &capture {
                            cap.record(
                                CapDirection::Rx,
                                CapStreamKind::Rtp,
                                CapTransport::Tcp,
                                idx as u16,
                                now,
                                &bytes,
                            );
                        }
                        sp.participant.handle_stream(&bytes, ticks);
                    }
                }
            }
            // Gap timeout: a packet lost and never retransmitted would park
            // the reorder buffer forever; fall back to PLI.
            let held = sp.participant.reorder_held();
            if held > 0 && held == sp.last_held {
                sp.stuck_ticks += 1;
                if sp.stuck_ticks >= GAP_TIMEOUT_TICKS {
                    sp.participant.recover_from_gap();
                    if let Some(cap) = &capture {
                        // Control marker: replay must skip the same hole.
                        cap.record_gap_recover(idx as u16, now);
                    }
                    sp.stuck_ticks = 0;
                }
            } else {
                sp.stuck_ticks = 0;
            }
            sp.last_held = sp.participant.reorder_held();

            // Housekeeping (resync retry for unsynced joiners).
            sp.participant.tick(ticks);

            // Upstream RTCP.
            if let Some(bytes) = sp.participant.take_rtcp() {
                let mut tagged = Vec::with_capacity(bytes.len() + 1);
                tagged.push(b'R');
                tagged.extend_from_slice(&bytes);
                sp.upstream.send(now, &tagged);
            }
            // Deliver upstream traffic to the AH.
            let cap_up = |kind: CapStreamKind, payload: &[u8]| {
                if let Some(cap) = &capture {
                    cap.record(
                        CapDirection::Up,
                        kind,
                        CapTransport::Udp,
                        idx as u16,
                        now,
                        payload,
                    );
                }
            };
            for dg in sp.upstream.poll(now) {
                match dg.split_first() {
                    Some((b'R', rest)) => {
                        cap_up(CapStreamKind::Rtcp, rest);
                        self.ah.handle_rtcp(sp.handle, rest, now);
                    }
                    Some((b'H', rest)) => {
                        cap_up(CapStreamKind::Hip, rest);
                        self.ah.handle_hip(sp.handle, rest);
                    }
                    Some((b'B', rest)) => {
                        cap_up(CapStreamKind::Bfcp, rest);
                        // BFCP runs on its own reliable connection; its
                        // responses are routed after the delivery loop.
                        bfcp_responses.extend(self.ah.handle_bfcp(rest, now));
                    }
                    _ => {}
                }
            }
        }
        self.route_bfcp(bfcp_responses);
        // Floor timers.
        let notices = self.ah.tick_floor(now);
        self.route_bfcp(notices);
    }

    /// A participant sends a HIP event (travels the upstream link).
    pub fn send_hip(&mut self, idx: usize, msg: &HipMessage) {
        let now = self.clock.now_us();
        let ticks = us_to_ticks(now);
        let datagrams = self.participants[idx].participant.send_hip(msg, ticks);
        for dg in datagrams {
            let mut tagged = Vec::with_capacity(dg.len() + 1);
            tagged.push(b'H');
            tagged.extend_from_slice(&dg);
            self.participants[idx].upstream.send(now, &tagged);
        }
    }

    /// A participant requests the BFCP floor (exchange is immediate: BFCP
    /// runs on its own reliable connection).
    pub fn request_floor(&mut self, idx: usize) {
        let now = self.clock.now_us();
        let Some(msg) = self.participants[idx]
            .participant
            .floor_mut()
            .request_floor()
        else {
            return;
        };
        let responses = self.ah.handle_bfcp(&msg.encode(), now);
        self.route_bfcp(responses);
    }

    /// A participant releases the BFCP floor.
    pub fn release_floor(&mut self, idx: usize) {
        let now = self.clock.now_us();
        let Some(msg) = self.participants[idx]
            .participant
            .floor_mut()
            .release_floor()
        else {
            return;
        };
        let responses = self.ah.handle_bfcp(&msg.encode(), now);
        self.route_bfcp(responses);
    }

    /// Like [`SimSession::request_floor`], but the request travels the
    /// participant's (lossy, duplicating, reordering) upstream link instead
    /// of the idealized reliable exchange — the storm scenarios use this to
    /// subject the chair to the retransmissions and duplicates a real
    /// unreliable-transport BFCP deployment produces.
    pub fn request_floor_linked(&mut self, idx: usize) {
        let now = self.clock.now_us();
        let Some(msg) = self.participants[idx]
            .participant
            .floor_mut()
            .request_floor()
        else {
            return;
        };
        Self::send_bfcp_linked(&mut self.participants[idx], now, &msg);
    }

    /// Linked-transport variant of [`SimSession::release_floor`].
    pub fn release_floor_linked(&mut self, idx: usize) {
        let now = self.clock.now_us();
        let Some(msg) = self.participants[idx]
            .participant
            .floor_mut()
            .release_floor()
        else {
            return;
        };
        Self::send_bfcp_linked(&mut self.participants[idx], now, &msg);
    }

    fn send_bfcp_linked(sp: &mut SimParticipant, now: u64, msg: &adshare_bfcp::BfcpMessage) {
        let bytes = msg.encode();
        let mut tagged = Vec::with_capacity(bytes.len() + 1);
        tagged.push(b'B');
        tagged.extend_from_slice(&bytes);
        sp.upstream.send(now, &tagged);
    }

    fn route_bfcp(&mut self, responses: Vec<(u16, Vec<u8>)>) {
        for (user, bytes) in responses {
            if let Ok(msg) = adshare_bfcp::BfcpMessage::decode(&bytes) {
                for sp in &mut self.participants {
                    if sp.active && sp.participant.user_id() == user {
                        sp.participant.floor_mut().handle(&msg);
                    }
                }
            }
        }
    }

    /// Whether a participant is still in the session (not removed).
    pub fn is_active(&self, idx: usize) -> bool {
        self.participants.get(idx).is_some_and(|sp| sp.active)
    }

    /// Remove a participant (viewer churn): release any floor it holds or
    /// queues, detach it at the AH so the pacer stops feeding its link, and
    /// deactivate its slot. Indices of other participants are unaffected;
    /// removing twice is a no-op.
    pub fn remove_participant(&mut self, idx: usize) {
        if !self.is_active(idx) {
            return;
        }
        self.release_floor(idx);
        let sp = &mut self.participants[idx];
        sp.active = false;
        let handle = sp.handle;
        self.ah.detach(handle);
    }

    /// Change the chair's HID status (§4.2: the shared application gained
    /// or lost input focus) and deliver the re-grant notice to the holder.
    pub fn set_hid_status(&mut self, status: adshare_bfcp::HidStatus) {
        let notices = self.ah.set_hid_status(status);
        self.route_bfcp(notices);
    }

    /// Chair/client floor agreement: exactly the chair's holder (if any)
    /// believes it is granted, and nobody else does. The floor-storm
    /// scenario asserts this after every contention burst.
    pub fn floor_consistent(&mut self) -> bool {
        let holder = self.ah.chair_mut().holder();
        self.participants.iter().filter(|sp| sp.active).all(|sp| {
            let granted = matches!(
                sp.participant.floor().state(),
                adshare_bfcp::FloorState::Granted(_)
            );
            granted == (holder == Some(sp.participant.user_id()))
        })
    }

    /// Whether a participant's view of every window matches the AH pixel
    /// for pixel (used as the convergence criterion in experiments).
    pub fn converged(&self, idx: usize) -> bool {
        let p = &self.participants[idx].participant;
        if !p.synced() {
            return false;
        }
        let records: Vec<_> = self.ah.desktop().wm().shared_records().collect();
        if records.len() != p.z_order().len() {
            return false;
        }
        for rec in records {
            let Some(content) = p.window_content(rec.id.0) else {
                return false;
            };
            let Some(ah_content) = self.ah.desktop().window_content(rec.id) else {
                return false;
            };
            if content != ah_content {
                return false;
            }
        }
        true
    }

    /// Mean per-pixel absolute error between a participant's windows and
    /// the AH's (0.0 = identical; tolerates lossy codecs).
    pub fn divergence(&self, idx: usize) -> f64 {
        let p = &self.participants[idx].participant;
        let records: Vec<_> = self.ah.desktop().wm().shared_records().collect();
        let mut total = 0.0;
        let mut n = 0usize;
        for rec in records {
            let (Some(local), Some(remote)) = (
                p.window_content(rec.id.0),
                self.ah.desktop().window_content(rec.id),
            ) else {
                return f64::INFINITY;
            };
            if local.width() != remote.width() || local.height() != remote.height() {
                return f64::INFINITY;
            }
            total += local.mean_abs_error(remote);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Advance straight to the next interesting instant: the earlier of the
    /// next capture tick (`capture_interval_us` from now) and the next
    /// pending network delivery. Returns how far the clock moved. This is
    /// the event-driven alternative to fixed-dt [`SimSession::step`]: idle
    /// stretches cost one step instead of thousands.
    pub fn step_to_next_event(&mut self, capture_interval_us: u64) -> u64 {
        let now = self.clock.now_us();
        let mut target = now + capture_interval_us.max(1);
        if let Some(e) = self.ah.next_event_us() {
            target = target.min(e.max(now + 1));
        }
        for sp in &self.participants {
            if let Some(e) = sp.upstream.next_delivery_us() {
                target = target.min(e.max(now + 1));
            }
        }
        let dt = target - now;
        self.step(dt);
        dt
    }

    /// Event-driven variant of [`SimSession::run_until`]: advances via
    /// [`SimSession::step_to_next_event`] until `pred` holds or `max_us`
    /// elapses. Returns (elapsed µs, steps taken) when the predicate held.
    pub fn run_until_event_driven(
        &mut self,
        capture_interval_us: u64,
        max_us: u64,
        mut pred: impl FnMut(&SimSession) -> bool,
    ) -> Option<(u64, u64)> {
        let start = self.clock.now_us();
        let mut steps = 0u64;
        while self.clock.now_us() - start < max_us {
            self.step_to_next_event(capture_interval_us);
            steps += 1;
            if pred(self) {
                return Some((self.clock.now_us() - start, steps));
            }
        }
        None
    }

    /// Earliest pending instant across the whole world — the AH's
    /// downstream transports plus every participant's upstream channel.
    /// `None` means nothing is in flight: only a capture tick (new damage)
    /// can make this session interesting again.
    pub fn next_due_us(&self) -> Option<u64> {
        let mut min = self.ah.next_event_us();
        for sp in &self.participants {
            if let Some(e) = sp.upstream.next_delivery_us() {
                min = Some(min.map_or(e, |m: u64| m.min(e)));
            }
        }
        min
    }

    /// Order-sensitive digest of every packet the AH produced (see
    /// [`AppHost::wire_digest`]) — the parity criterion for hosted runs.
    pub fn wire_digest(&self) -> u64 {
        self.ah.wire_digest()
    }

    /// Run until `pred` holds or `max_us` elapses; returns elapsed µs if the
    /// predicate held.
    pub fn run_until(
        &mut self,
        tick_us: u64,
        max_us: u64,
        mut pred: impl FnMut(&SimSession) -> bool,
    ) -> Option<u64> {
        let start = self.clock.now_us();
        while self.clock.now_us() - start < max_us {
            self.step(tick_us);
            if pred(self) {
                return Some(self.clock.now_us() - start);
            }
        }
        None
    }
}
