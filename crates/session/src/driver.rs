//! The [`SessionDriver`] trait: sessions an external event loop can step.
//!
//! [`crate::AppHost`] historically owned its cadence — callers invoked
//! `step(now_us)` on a fixed tick and the AH did everything inside. A
//! multi-tenant host running thousands of sessions cannot afford a thread
//! (or even a guaranteed tick) per session; it needs to ask each session
//! *when it next needs service* and *whether it still holds unflushed
//! work*, and step only the sessions whose answer demands it. This trait
//! is that contract, implemented by both the bare [`crate::AppHost`]
//! (virtual-time absolute stepping) and the full [`crate::SimSession`]
//! world (clock-relative stepping).

use crate::app_host::AppHost;
use crate::sim::SimSession;

/// A session that an external readiness-driven event loop can step.
///
/// The contract the loop relies on:
///
/// * [`drive_to`](SessionDriver::drive_to) with a monotonically
///   non-decreasing `now_us` advances the session's world to that virtual
///   instant (capture → flush → deliver → feedback).
/// * [`next_due_us`](SessionDriver::next_due_us) is the earliest instant
///   at which something held by the session (an in-flight datagram, a
///   queued TCP byte, a timer) becomes deliverable. `None` means no event
///   is in flight.
/// * [`has_pending`](SessionDriver::has_pending) reports unflushed work —
///   damage, pacer queues, owed repairs — that needs future steps even if
///   nothing is currently in flight on a link.
///
/// A session that reports `next_due_us() == None && !has_pending()` is
/// idle: the loop may park it at zero cost until its workload produces new
/// damage.
pub trait SessionDriver {
    /// Advance the session's world to the absolute virtual time `now_us`.
    fn drive_to(&mut self, now_us: u64);

    /// Earliest pending instant needing service (µs), if anything is in
    /// flight.
    fn next_due_us(&self) -> Option<u64>;

    /// Whether unflushed work (damage, queued sends, repairs) remains.
    fn has_pending(&self) -> bool;
}

impl SessionDriver for AppHost {
    fn drive_to(&mut self, now_us: u64) {
        self.step(now_us);
    }

    fn next_due_us(&self) -> Option<u64> {
        self.next_event_us()
    }

    fn has_pending(&self) -> bool {
        AppHost::has_pending(self)
    }
}

impl SessionDriver for SimSession {
    fn drive_to(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.clock.now_us());
        if dt > 0 {
            self.step(dt);
        }
    }

    fn next_due_us(&self) -> Option<u64> {
        SimSession::next_due_us(self)
    }

    fn has_pending(&self) -> bool {
        self.ah.has_pending()
    }
}
