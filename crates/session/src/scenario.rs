//! Adversarial scenario schedules: seeded, declarative stress tests with
//! the health engine as pass/fail oracle.
//!
//! A [`Scenario`] composes timed [`Action`]s — join/leave churn,
//! [`LinkStep`] bandwidth cliffs, BFCP floor-request storms, HID-status
//! flips — over simulated time, plus [`Expectation`]s describing the
//! health verdicts the run is allowed (and required) to produce. The
//! runner ([`run_scenario`]) drives a [`SimSession`] through the schedule,
//! evaluates the health engine on a fixed cadence, and scores the run:
//!
//! * **No false alarm** — a health report whose overall verdict exceeds an
//!   expectation window's `max` fails the scenario (a healthy system under
//!   designed-for stress must not page anyone).
//! * **No missed degradation** — a window with `min = Some(level)` in
//!   which no report reaches `level` fails the scenario (an unhealthy
//!   system must be noticed).
//!
//! Everything is derived from the scenario seed, so two runs of the same
//! schedule produce identical event logs and identical counter/gauge
//! registries (see [`registry_fingerprint`]); the property tests in
//! `tests/scenarios.rs` pin this down. On failure, the runner writes the
//! outcome document (and the engine its CRITICAL black boxes) into
//! [`Scenario::dump_dir`] for CI to upload.
//!
//! The relay-topology flash-crowd runner in `adshare-relay` reuses these
//! types; the four concrete schedules live in [`presets`] and
//! `adshare_relay::scenario`.

use std::path::PathBuf;

use adshare_bfcp::HidStatus;
use adshare_capture::CaptureMode;
use adshare_codec::Rect;
use adshare_netsim::udp::{LinkConfig, LinkStep};
use adshare_obs::{json, DumpSink, HealthConfig, HealthReport, HealthStatus, Obs};
use adshare_screen::desktop::Desktop;
use adshare_screen::workload::{Typing, Video, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{AhConfig, Layout};
use crate::sim::SimSession;

/// Schema marker of the JSON outcome document ([`ScenarioOutcome::to_json`]).
pub const SCENARIO_SCHEMA: &str = "adshare-scenario/v1";

/// One scheduled stimulus.
#[derive(Debug, Clone)]
pub enum Action {
    /// `count` UDP viewers join (each with these link conditions).
    Join {
        /// How many viewers join at this instant.
        count: usize,
        /// Downstream link of each joiner.
        down: LinkConfig,
        /// Upstream (feedback) link of each joiner.
        up: LinkConfig,
        /// Fixed pacing rate for each joiner (`None` = unpaced).
        rate_bps: Option<u64>,
    },
    /// A viewer leaves (by join-order index).
    Leave {
        /// Participant index (assigned in join order, starting at 0).
        participant: usize,
    },
    /// Re-schedule a viewer's downstream link (bandwidth cliffs, loss
    /// steps). `LinkStep::at_us` values are absolute simulation times.
    Link {
        /// Participant index.
        participant: usize,
        /// The time-varying link schedule to install.
        steps: Vec<LinkStep>,
    },
    /// A viewer requests the BFCP floor.
    FloorRequest {
        /// Participant index.
        participant: usize,
        /// `true` routes the request over the viewer's lossy/duplicating
        /// upstream link; `false` uses the idealized reliable exchange.
        via_link: bool,
    },
    /// A viewer releases the BFCP floor (same routing choice as requests).
    FloorRelease {
        /// Participant index.
        participant: usize,
        /// See [`Action::FloorRequest::via_link`].
        via_link: bool,
    },
    /// The chair changes the HID status (draft §4.2 focus changes).
    SetHid {
        /// The new status.
        status: HidStatus,
    },
}

/// An [`Action`] pinned to a simulation instant.
#[derive(Debug, Clone)]
pub struct TimedEvent {
    /// When the action fires (µs; events at the same time fire in order).
    pub at_us: u64,
    /// What happens.
    pub action: Action,
}

/// What the health oracle may and must report inside one time window.
#[derive(Debug, Clone, Copy)]
pub struct Expectation {
    /// Window start (µs, inclusive).
    pub from_us: u64,
    /// Window end (µs, inclusive).
    pub to_us: u64,
    /// Ceiling: any report above this is a false alarm.
    pub max: HealthStatus,
    /// Floor: when set, at least one report in the window must reach this
    /// level, else the degradation was missed.
    pub min: Option<HealthStatus>,
}

/// A window constraint on the health engine's `tier` rule value (the
/// worst active quality tier across every layered sender, 0 = lossless).
/// Where [`Expectation`] scores verdicts, this scores the *mechanism*: a
/// bandwidth cliff must be answered by a tier downgrade (`min_tier`), and
/// recovery must return the session to lossless (`max_tier = 0`) instead
/// of parking on a lossy tier forever.
#[derive(Debug, Clone, Copy)]
pub struct TierExpectation {
    /// Window start (µs, inclusive).
    pub from_us: u64,
    /// Window end (µs, inclusive).
    pub to_us: u64,
    /// Floor: when set, at least one report in the window must show a
    /// tier at or above this gauge value, else the downgrade was missed.
    pub min_tier: Option<i64>,
    /// Ceiling: when set, any report in the window with a tier above this
    /// value is a violation (e.g. `Some(0)` = "must be lossless again").
    pub max_tier: Option<i64>,
}

/// The workload the AH types/plays into the shared window while the
/// schedule runs.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadKind {
    /// Text insertion at `cps` bursts per tick (light, latency-sensitive).
    Typing {
        /// Characters inserted per workload tick.
        cps: u32,
    },
    /// Full-motion video region (bandwidth-hungry; used by the cliff
    /// scenario so the link actually saturates).
    Video,
}

/// A wire-capture request attached to a scenario run.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCapture {
    /// Explicit operator consent. [`run_scenario`] panics on a schedule
    /// that requests capture without it — the gate is not bypassable by
    /// automation.
    pub consent: bool,
    /// Retention mode. A [`CaptureMode::Ring`] request on a scenario with
    /// a `dump_dir` installs the health engine's capture hook, so a
    /// CRITICAL black-box dump ships the ring capture next to it.
    pub mode: CaptureMode,
}

/// A complete declarative schedule.
#[derive(Clone)]
pub struct Scenario {
    /// Stable name (also the outcome/artifact file stem).
    pub name: String,
    /// Master seed: every link, workload and joiner seed derives from it.
    pub seed: u64,
    /// Total simulated run time (µs).
    pub duration_us: u64,
    /// The workload stops here (µs ≤ `duration_us`); the remaining quiet
    /// tail lets repair traffic drain so final convergence is meaningful.
    pub workload_until_us: u64,
    /// Fixed step size (µs).
    pub tick_us: u64,
    /// Health-oracle cadence (µs).
    pub check_interval_us: u64,
    /// AH configuration (adaptive rate, floor grant timer, …).
    pub ah: AhConfig,
    /// Health thresholds; `None` keeps [`HealthConfig::default`].
    pub health: Option<HealthConfig>,
    /// What the AH does on screen.
    pub workload: WorkloadKind,
    /// The schedule (sorted by the runner; same-time events keep order).
    pub events: Vec<TimedEvent>,
    /// The oracle windows.
    pub expectations: Vec<Expectation>,
    /// Quality-tier windows (empty = no tier constraints).
    pub tier_expectations: Vec<TierExpectation>,
    /// Assert chair/client floor agreement after every step.
    pub check_floor: bool,
    /// Where failure artifacts (outcome JSON, CRITICAL black boxes) go.
    pub dump_dir: Option<PathBuf>,
    /// Consent-gated wire capture of the run (`None` = off).
    pub capture: Option<ScenarioCapture>,
}

impl Scenario {
    /// A schedule skeleton with the standard tick (30 Hz), a 500 ms health
    /// cadence, typing workload for the full duration, and a whole-run
    /// "never CRITICAL" expectation.
    pub fn new(name: &str, seed: u64, duration_us: u64) -> Self {
        Scenario {
            name: name.to_string(),
            seed,
            duration_us,
            workload_until_us: duration_us,
            tick_us: 33_333,
            check_interval_us: 500_000,
            ah: AhConfig::default(),
            health: None,
            workload: WorkloadKind::Typing { cps: 2 },
            events: Vec::new(),
            expectations: vec![Expectation {
                from_us: 0,
                to_us: duration_us,
                max: HealthStatus::Degraded,
                min: None,
            }],
            tier_expectations: Vec::new(),
            check_floor: false,
            dump_dir: None,
            capture: None,
        }
    }

    /// Append an action at `at_us`.
    pub fn at(mut self, at_us: u64, action: Action) -> Self {
        self.events.push(TimedEvent { at_us, action });
        self
    }

    /// Append an expectation window.
    pub fn expect(mut self, e: Expectation) -> Self {
        self.expectations.push(e);
        self
    }

    /// Append a quality-tier window.
    pub fn expect_tier(mut self, e: TierExpectation) -> Self {
        self.tier_expectations.push(e);
        self
    }
}

/// One scored run of a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// `violations.is_empty()`.
    pub passed: bool,
    /// Oracle violations (false alarms, missed degradations, floor
    /// disagreements), in detection order.
    pub violations: Vec<String>,
    /// Every health report, in evaluation order.
    pub reports: Vec<HealthReport>,
    /// Deterministic event log: one line per applied action and health
    /// check, all derived from virtual time.
    pub log: Vec<String>,
    /// Worst overall verdict any report carried.
    pub worst: HealthStatus,
    /// Whether every still-active viewer ended pixel-identical to the AH.
    pub converged: bool,
    /// Viewers still active at the end.
    pub active_participants: usize,
}

impl ScenarioOutcome {
    /// Serialize as an `adshare-scenario/v1` document (see
    /// `schemas/scenario_result.schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.violations.len() * 64);
        out.push_str("{\"schema\": ");
        json::write_string(&mut out, SCENARIO_SCHEMA);
        out.push_str(", \"name\": ");
        json::write_string(&mut out, &self.name);
        out.push_str(&format!(
            ", \"seed\": {}, \"passed\": {}, \"checks\": {}, \"worst\": ",
            self.seed,
            self.passed,
            self.reports.len()
        ));
        json::write_string(&mut out, self.worst.as_str());
        out.push_str(&format!(
            ", \"converged\": {}, \"active_participants\": {}, \"log_lines\": {}, \"violations\": [",
            self.converged,
            self.active_participants,
            self.log.len()
        ));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_string(&mut out, v);
        }
        out.push_str("]}");
        out
    }

    /// Write the outcome document (always) and, on failure, the full event
    /// log next to it. Directory is created as needed; errors are
    /// propagated so CI fails loudly rather than uploading nothing.
    pub fn write_artifacts(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(
            dir.join(format!("scenario_{}.json", self.name)),
            self.to_json(),
        )?;
        if !self.passed {
            std::fs::write(
                dir.join(format!("scenario_{}.log", self.name)),
                self.log.join("\n"),
            )?;
        }
        Ok(())
    }
}

/// Score `reports` against `expectations`: returns one violation string
/// per false alarm and per missed degradation. Shared by the direct-
/// topology runner here and the relay runner in `adshare-relay`.
pub fn evaluate_expectations(
    expectations: &[Expectation],
    reports: &[HealthReport],
) -> Vec<String> {
    let mut violations = Vec::new();
    for e in expectations {
        let window: Vec<&HealthReport> = reports
            .iter()
            .filter(|r| r.at_us >= e.from_us && r.at_us <= e.to_us)
            .collect();
        for r in &window {
            if r.overall > e.max {
                let culprits: Vec<&str> = r
                    .rules
                    .iter()
                    .filter(|rule| rule.status > e.max)
                    .map(|rule| rule.name)
                    .collect();
                violations.push(format!(
                    "false {} at {} µs in [{}, {}] µs (rules: {})",
                    r.overall.as_str(),
                    r.at_us,
                    e.from_us,
                    e.to_us,
                    culprits.join(", ")
                ));
            }
        }
        if let Some(min) = e.min {
            if !window.iter().any(|r| r.overall >= min) {
                violations.push(format!(
                    "missed degradation: no report reached {} in [{}, {}] µs ({} checks)",
                    min.as_str(),
                    e.from_us,
                    e.to_us,
                    window.len()
                ));
            }
        }
    }
    violations
}

/// Score `reports` against [`TierExpectation`] windows using each
/// report's `tier` rule value. Shared with the relay runner.
pub fn evaluate_tier_expectations(
    expectations: &[TierExpectation],
    reports: &[HealthReport],
) -> Vec<String> {
    let tier_of = |r: &HealthReport| -> i64 {
        r.rules
            .iter()
            .find(|rule| rule.name == "tier")
            .map_or(0, |rule| rule.value as i64)
    };
    let mut violations = Vec::new();
    for e in expectations {
        let window: Vec<&HealthReport> = reports
            .iter()
            .filter(|r| r.at_us >= e.from_us && r.at_us <= e.to_us)
            .collect();
        if let Some(max) = e.max_tier {
            for r in &window {
                let t = tier_of(r);
                if t > max {
                    violations.push(format!(
                        "tier {} above ceiling {} at {} µs in [{}, {}] µs",
                        t, max, r.at_us, e.from_us, e.to_us
                    ));
                }
            }
        }
        if let Some(min) = e.min_tier {
            if !window.iter().any(|r| tier_of(r) >= min) {
                violations.push(format!(
                    "missed tier downgrade: no report reached tier {} in [{}, {}] µs ({} checks)",
                    min,
                    e.from_us,
                    e.to_us,
                    window.len()
                ));
            }
        }
    }
    violations
}

/// Counter/gauge registry fingerprint for determinism checks. Histograms
/// are excluded: the pipeline stage histograms record wall-clock encode
/// and decode times, which legitimately vary between runs. The encoder's
/// `*_us_total` counters accumulate the same wall-clock samples, so they
/// are excluded too; every other counter and gauge is a pure function of
/// the virtual-time schedule and seed.
pub fn registry_fingerprint(obs: &Obs) -> String {
    use adshare_obs::MetricSnapshot;
    let snap = obs.registry.snapshot();
    let mut out = String::new();
    for (name, m) in &snap.metrics {
        if name.ends_with("_us_total") {
            continue;
        }
        match m {
            MetricSnapshot::Counter(v) => out.push_str(&format!("{name}={v}\n")),
            MetricSnapshot::Gauge(v) => out.push_str(&format!("{name}={v}\n")),
            MetricSnapshot::Histogram(_) => {}
        }
    }
    out
}

/// Per-joiner seed, derived from the master seed and the join ordinal so
/// schedules are reproducible regardless of when a joiner appears.
fn joiner_seed(master: u64, ordinal: usize) -> u64 {
    master ^ (ordinal as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5
}

/// Drive a [`SimSession`] through the schedule and score it. Returns the
/// outcome plus the final session so callers can assert domain invariants
/// (rate decreases, floor stats, relay counters) on top of the oracle.
pub fn run_scenario(scn: &Scenario) -> (ScenarioOutcome, SimSession) {
    let mut desktop = Desktop::new(640, 480);
    let win = desktop.create_window(1, Rect::new(30, 30, 300, 220), [250, 250, 250, 255]);
    let mut s = SimSession::new(desktop, scn.ah.clone(), scn.seed);
    {
        let mut engine = s.obs().health.lock().unwrap();
        if let Some(cfg) = &scn.health {
            engine.set_config(cfg.clone());
        }
        if let Some(dir) = &scn.dump_dir {
            engine.set_sink(DumpSink::Dir(dir.clone()));
        }
    }
    if let Some(c) = scn.capture {
        match (c.mode, &scn.dump_dir) {
            (CaptureMode::Ring { window_us }, Some(dir)) => {
                // Black-box mode: the ring rides along at bounded cost and
                // the health engine flushes it next to a CRITICAL dump.
                s.enable_auto_capture(c.consent, window_us, dir.clone(), scn.seed)
                    .expect("scenario requested capture without consent");
            }
            _ => {
                s.arm_capture(c.consent, c.mode, scn.seed)
                    .expect("scenario requested capture without consent");
            }
        }
    }

    let mut workload: Box<dyn Workload> = match scn.workload {
        WorkloadKind::Typing { cps } => Box::new(Typing::new(win, cps)),
        WorkloadKind::Video => Box::new(Video::new(win, Rect::new(20, 20, 240, 180))),
    };
    let mut rng = StdRng::seed_from_u64(scn.seed ^ 0x5EED);

    let mut events = scn.events.clone();
    events.sort_by_key(|e| e.at_us);
    let mut next_event = 0usize;
    let mut joined = 0usize;

    let mut log: Vec<String> = Vec::new();
    let mut reports: Vec<HealthReport> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut last_check_us = 0u64;

    while s.clock.now_us() < scn.duration_us {
        let now = s.clock.now_us();
        while next_event < events.len() && events[next_event].at_us <= now {
            let ev = events[next_event].clone();
            apply_action(&mut s, &ev.action, scn, &mut joined, now, &mut log);
            next_event += 1;
        }
        if now < scn.workload_until_us {
            workload.tick(s.ah.desktop_mut(), &mut rng);
        }
        s.step(scn.tick_us);
        if scn.check_floor && !s.floor_consistent() {
            violations.push(format!(
                "floor disagreement at {} µs: chair and clients differ on the holder",
                s.clock.now_us()
            ));
        }
        if s.clock.now_us().saturating_sub(last_check_us) >= scn.check_interval_us {
            let r = s.obs().health_check(s.clock.now_us());
            log.push(format!("{} health {}", r.at_us, r.overall.as_str()));
            reports.push(r);
            last_check_us = s.clock.now_us();
        }
    }
    let r = s.obs().health_check(s.clock.now_us());
    log.push(format!("{} health {}", r.at_us, r.overall.as_str()));
    reports.push(r);

    violations.extend(evaluate_expectations(&scn.expectations, &reports));
    violations.extend(evaluate_tier_expectations(&scn.tier_expectations, &reports));
    let worst = reports
        .iter()
        .map(|r| r.overall)
        .max()
        .unwrap_or(HealthStatus::Ok);
    let active: Vec<usize> = (0..s.participant_count())
        .filter(|&i| s.is_active(i))
        .collect();
    let converged = active.iter().all(|&i| s.converged(i));

    let outcome = ScenarioOutcome {
        name: scn.name.clone(),
        seed: scn.seed,
        passed: violations.is_empty(),
        violations,
        reports,
        log,
        worst,
        converged,
        active_participants: active.len(),
    };
    if let Some(dir) = &scn.dump_dir {
        // Best-effort here; exp binaries call write_artifacts themselves
        // when they need the error.
        let _ = outcome.write_artifacts(dir);
    }
    (outcome, s)
}

fn apply_action(
    s: &mut SimSession,
    action: &Action,
    scn: &Scenario,
    joined: &mut usize,
    now: u64,
    log: &mut Vec<String>,
) {
    match action {
        Action::Join {
            count,
            down,
            up,
            rate_bps,
        } => {
            for _ in 0..*count {
                let seed = joiner_seed(scn.seed, *joined);
                let idx = s.add_udp_participant(Layout::Original, *down, *up, *rate_bps, seed);
                *joined += 1;
                log.push(format!("{now} join {idx}"));
            }
        }
        Action::Leave { participant } => {
            s.remove_participant(*participant);
            log.push(format!("{now} leave {participant}"));
        }
        Action::Link { participant, steps } => {
            if s.is_active(*participant) {
                s.set_link_schedule(*participant, steps.clone());
                log.push(format!("{now} link {participant} ({} steps)", steps.len()));
            }
        }
        Action::FloorRequest {
            participant,
            via_link,
        } => {
            if s.is_active(*participant) {
                if *via_link {
                    s.request_floor_linked(*participant);
                } else {
                    s.request_floor(*participant);
                }
                log.push(format!("{now} floor-request {participant}"));
            }
        }
        Action::FloorRelease {
            participant,
            via_link,
        } => {
            if s.is_active(*participant) {
                if *via_link {
                    s.release_floor_linked(*participant);
                } else {
                    s.release_floor(*participant);
                }
                log.push(format!("{now} floor-release {participant}"));
            }
        }
        Action::SetHid { status } => {
            s.set_hid_status(*status);
            log.push(format!("{now} hid {status:?}"));
        }
    }
}

/// The three direct-topology schedules of the adversarial suite (the
/// relay flash crowd lives in `adshare_relay::scenario`).
pub mod presets {
    use super::*;

    fn mild(loss: f64) -> LinkConfig {
        LinkConfig {
            loss,
            delay_us: 20_000,
            ..LinkConfig::default()
        }
    }

    /// Sustained viewer churn: three initial viewers, then a join+leave
    /// pair every 1.5 s for eight rounds over mildly lossy links. Every
    /// joiner's PLI-served refresh and every leaver's teardown must pass
    /// without a CRITICAL verdict, and the survivors must converge.
    pub fn churn(seed: u64) -> Scenario {
        let mut scn = Scenario::new("churn", seed, 20_000_000);
        scn.workload_until_us = 17_000_000;
        scn = scn.at(
            0,
            Action::Join {
                count: 3,
                down: mild(0.01),
                up: mild(0.0),
                rate_bps: None,
            },
        );
        for round in 0..8u64 {
            let at = 1_500_000 + round * 1_500_000;
            scn = scn
                .at(
                    at,
                    Action::Join {
                        count: 1,
                        down: mild(0.01),
                        up: mild(0.0),
                        rate_bps: None,
                    },
                )
                .at(
                    at + 200_000,
                    Action::Leave {
                        participant: round as usize,
                    },
                );
        }
        scn
    }

    /// Mid-session bandwidth cliff: one adaptive viewer playing video on a
    /// 6 Mb/s link that collapses to 2 Mb/s at t = 4 s and recovers at
    /// t = 9 s. The AIMD controller must down-shift (the caller asserts
    /// `rate_decreases > 0`), the oracle must notice the constrained phase
    /// (DEGRADED required in [5 s, 9 s]), never page (no CRITICAL), and
    /// the quiet tail must end in lossless repair (converged).
    ///
    /// The tier windows pin the *mechanism*: the cliff must be answered
    /// by a quality-tier downgrade (tier ≥ 1 in [5 s, 9 s] — degrading,
    /// not starving or paging), and once the link lifts the additive
    /// increase must walk the session back to lossless (tier 0 over the
    /// final second).
    ///
    /// The pacer's ceiling sits below the full link rate so the pre-cliff
    /// phase is comfortable; the cliff then oversubscribes the link ~1.5×,
    /// which is real congestion but bounded. Because the congestion is
    /// *designed in*, the scenario raises the paging (CRITICAL) ceilings —
    /// the oracle here tests "noticed but did not page", and the stock SLOs
    /// would page on the very storm the schedule manufactures.
    pub fn bandwidth_cliff(seed: u64) -> Scenario {
        let full = LinkConfig {
            loss: 0.005,
            delay_us: 15_000,
            jitter_us: 2_000,
            rate_bps: Some(6_000_000),
            ..LinkConfig::default()
        };
        let cliff = LinkConfig {
            rate_bps: Some(2_000_000),
            ..full
        };
        let mut scn = Scenario::new("bandwidth_cliff", seed, 18_000_000);
        scn.workload = WorkloadKind::Video;
        scn.workload_until_us = 11_000_000;
        scn.ah = AhConfig {
            adaptive_rate: Some(adshare_rate::RateConfig {
                initial_bps: 2_500_000,
                ceiling_bps: 3_000_000,
                // The join leg is paced at 2.5 Mb/s; tier upgrades need
                // rate >= threshold x 1.15 hysteresis, so the lossless
                // bar must sit below 2.5M / 1.15 or recovery is
                // unreachable. 2.0M keeps the cliff (~1.47M estimate)
                // firmly in Balanced while letting the lifted link
                // climb back to Lossless.
                lossless_above_bps: 2_000_000,
                ..adshare_rate::RateConfig::default()
            }),
            ..AhConfig::default()
        };
        // The 2 s health window integrates the pre-downshift storm: a 1.5×
        // oversubscribed pacer loses ~1/3 of packets (plus lost repairs)
        // until two AIMD decreases land, so windowed loss peaks near 0.4.
        scn.health = Some(HealthConfig {
            loss: (0.02, 0.5),
            nack_rate: (2.0, 60.0),
            staleness_p99_us: (400_000, 3_000_000),
            ..HealthConfig::default()
        });
        scn = scn
            .at(
                0,
                Action::Join {
                    count: 1,
                    down: full,
                    up: mild(0.0),
                    rate_bps: Some(2_500_000),
                },
            )
            .at(
                100_000,
                Action::Link {
                    participant: 0,
                    steps: vec![
                        LinkStep {
                            at_us: 4_000_000,
                            cfg: cliff,
                        },
                        LinkStep {
                            at_us: 9_000_000,
                            cfg: full,
                        },
                    ],
                },
            )
            .expect(Expectation {
                from_us: 5_000_000,
                to_us: 9_000_000,
                max: HealthStatus::Degraded,
                min: Some(HealthStatus::Degraded),
            })
            .expect_tier(TierExpectation {
                from_us: 5_000_000,
                to_us: 9_000_000,
                min_tier: Some(1),
                max_tier: None,
            })
            .expect_tier(TierExpectation {
                from_us: 17_000_000,
                to_us: 18_000_000,
                min_tier: None,
                max_tier: Some(0),
            });
        scn
    }

    /// BFCP control-handoff storm: six viewers fight over the floor with a
    /// 800 ms grant timer, requests travel duplicating upstream links (the
    /// chair must stay idempotent), and the chair flips the HID status
    /// every second. Chair/client agreement is checked after every step.
    pub fn floor_storm(seed: u64) -> Scenario {
        let dup = LinkConfig {
            loss: 0.0,
            duplicate: 0.10,
            delay_us: 20_000,
            jitter_us: 5_000,
            ..LinkConfig::default()
        };
        let mut scn = Scenario::new("floor_storm", seed, 14_000_000);
        scn.workload_until_us = 12_000_000;
        scn.check_floor = true;
        scn.ah = AhConfig {
            floor_grant_us: Some(800_000),
            ..AhConfig::default()
        };
        scn = scn.at(
            0,
            Action::Join {
                count: 6,
                down: mild(0.0),
                up: dup,
                rate_bps: None,
            },
        );
        let hid_cycle = [
            HidStatus::AllAllowed,
            HidStatus::MouseAllowed,
            HidStatus::KeyboardAllowed,
            HidStatus::NotAllowed,
        ];
        for round in 0..24u64 {
            let at = 1_000_000 + round * 400_000;
            scn = scn
                .at(
                    at,
                    Action::FloorRequest {
                        participant: (round % 6) as usize,
                        via_link: true,
                    },
                )
                .at(
                    at + 150_000,
                    Action::FloorRelease {
                        participant: ((round + 3) % 6) as usize,
                        via_link: true,
                    },
                );
            if round % 3 == 0 {
                scn = scn.at(
                    at + 50_000,
                    Action::SetHid {
                        status: hid_cycle[(round as usize / 3) % hid_cycle.len()],
                    },
                );
            }
        }
        scn
    }
}
