//! The Application Host: capture → damage → encode → packetize → pace.

use std::collections::HashMap;

use adshare_bfcp::{BfcpMessage, FloorChair, HidStatus};
use adshare_capture::{
    CaptureHandle, Direction as CapDirection, StreamKind as CapStreamKind,
    Transport as CapTransport,
};
use adshare_codec::codec::{AnyCodec, EncodeOptions};
use adshare_codec::{Codec, CodecKind, CodecRegistry, Image, Rect};
use adshare_encode::{EncodePipeline, TileJob};
use adshare_layers::TierRequest;
use adshare_netsim::multicast::MulticastGroup;
use adshare_netsim::tcp::{TcpConfig, TcpLink};
use adshare_netsim::time::us_to_ticks;
use adshare_netsim::udp::{LinkConfig, UdpChannel};
use adshare_obs::{
    Counter, EventKind, FrameTrace, Histogram, Obs, Registry, ACTOR_AH, RATE_CAUSE_BACKLOG,
    RATE_CAUSE_LOSS_REPORT, RATE_CAUSE_NACK_BURST,
};
use adshare_rate::{FreshQueue, QualityTier, RateController};
use adshare_remoting::fragment::fragment;
use adshare_remoting::hip::HipMessage;
use adshare_remoting::keycodes;
use adshare_remoting::message::{
    MousePointerInfo, MoveRectangle, RegionUpdate, RemotingMessage, WindowManagerInfo,
    WindowRecord as WireWindowRecord,
};
use adshare_remoting::WindowId as WireWindowId;
use adshare_rtp::framing::frame_into;
use adshare_rtp::history::RetransmitHistory;
use adshare_rtp::packet::RtpPacket;
use adshare_rtp::rtcp::{decode_compound, RtcpPacket};
use adshare_rtp::session::RtpSender;
use adshare_screen::damage::DamageTracker;
use adshare_screen::desktop::{Desktop, ScrollHint};
use adshare_screen::wm::WindowId;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{AhConfig, PointerPolicy};

/// Identifies an attached participant at the AH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParticipantHandle(pub usize);

/// AH-side cumulative statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct AhStats {
    /// WindowManagerInfo messages sent (counting per participant).
    pub wmi_msgs: u64,
    /// RegionUpdate messages sent.
    pub region_msgs: u64,
    /// MoveRectangle messages sent.
    pub move_msgs: u64,
    /// MousePointerInfo messages sent.
    pub pointer_msgs: u64,
    /// Distinct region encodes performed (cache misses).
    pub encodes: u64,
    /// Encoded payload bytes produced (before packetization).
    pub encoded_bytes: u64,
    /// RTP packets emitted.
    pub rtp_packets: u64,
    /// Bytes offered to transports.
    pub bytes_sent: u64,
    /// NACK-triggered retransmissions.
    pub retransmits: u64,
    /// Multicast retransmissions suppressed by the dedup window (another
    /// member already triggered the same repair).
    pub retransmits_suppressed: u64,
    /// PLI-triggered full refreshes.
    pub full_refreshes: u64,
    /// RR-driven tail-loss repairs (receiver behind the send tail with no
    /// later packet to reveal the gap; repaired from history).
    pub tail_repairs: u64,
    /// RTCP sender reports emitted.
    pub sr_sent: u64,
    /// HIP events accepted and injected.
    pub hip_injected: u64,
    /// HIP events rejected by the §4.1 legitimacy gate or floor control.
    pub hip_rejected: u64,
}

/// Live handles behind [`AhStats`]. Shared atomics so the same counts can be
/// adopted into an [`adshare_obs::Registry`] under `ah.*` while the POD
/// accessor keeps working.
#[derive(Debug, Clone, Default)]
struct AhCounters {
    wmi_msgs: Counter,
    region_msgs: Counter,
    move_msgs: Counter,
    pointer_msgs: Counter,
    encodes: Counter,
    encoded_bytes: Counter,
    rtp_packets: Counter,
    bytes_sent: Counter,
    retransmits: Counter,
    retransmits_suppressed: Counter,
    full_refreshes: Counter,
    tail_repairs: Counter,
    sr_sent: Counter,
    hip_injected: Counter,
    hip_rejected: Counter,
    /// Wall-clock µs per region encode (cache misses only).
    encode_us: Histogram,
    /// Wall-clock µs per message fragmentation pass.
    fragment_us: Histogram,
}

impl AhCounters {
    fn stats(&self) -> AhStats {
        AhStats {
            wmi_msgs: self.wmi_msgs.get(),
            region_msgs: self.region_msgs.get(),
            move_msgs: self.move_msgs.get(),
            pointer_msgs: self.pointer_msgs.get(),
            encodes: self.encodes.get(),
            encoded_bytes: self.encoded_bytes.get(),
            rtp_packets: self.rtp_packets.get(),
            bytes_sent: self.bytes_sent.get(),
            retransmits: self.retransmits.get(),
            retransmits_suppressed: self.retransmits_suppressed.get(),
            full_refreshes: self.full_refreshes.get(),
            tail_repairs: self.tail_repairs.get(),
            sr_sent: self.sr_sent.get(),
            hip_injected: self.hip_injected.get(),
            hip_rejected: self.hip_rejected.get(),
        }
    }

    /// Adopt every handle into `registry` under `ah.*`. The NACK repair
    /// counter is exported as `ah.retransmissions` (the canonical metric
    /// name); [`AhStats::retransmits`] remains the POD field name.
    fn register(&self, registry: &Registry) {
        registry.adopt_counter("ah.wmi_msgs", &self.wmi_msgs);
        registry.adopt_counter("ah.region_msgs", &self.region_msgs);
        registry.adopt_counter("ah.move_msgs", &self.move_msgs);
        registry.adopt_counter("ah.pointer_msgs", &self.pointer_msgs);
        registry.adopt_counter("ah.encodes", &self.encodes);
        registry.adopt_counter("ah.encoded_bytes", &self.encoded_bytes);
        registry.adopt_counter("ah.rtp_packets", &self.rtp_packets);
        registry.adopt_counter("ah.tx_bytes", &self.bytes_sent);
        registry.adopt_counter("ah.retransmissions", &self.retransmits);
        registry.adopt_counter(
            "ah.retransmissions_suppressed",
            &self.retransmits_suppressed,
        );
        registry.adopt_counter("ah.full_refreshes", &self.full_refreshes);
        registry.adopt_counter("ah.tail_repairs", &self.tail_repairs);
        registry.adopt_counter("ah.sr_sent", &self.sr_sent);
        registry.adopt_counter("ah.hip_injected", &self.hip_injected);
        registry.adopt_counter("ah.hip_rejected", &self.hip_rejected);
        registry.adopt_histogram("ah.encode_us", &self.encode_us);
        registry.adopt_histogram("ah.fragment_us", &self.fragment_us);
    }
}

/// Per-participant pending output (what changed but has not been sent).
#[derive(Debug, Default)]
struct Pending {
    wmi: bool,
    scrolls: Vec<ScrollHint>,
    damage: HashMap<WindowId, DamageTracker>,
    pointer_moved: bool,
    pointer_icon: bool,
}

impl Pending {
    fn add_damage(
        &mut self,
        strategy: adshare_screen::damage::MergeStrategy,
        win: WindowId,
        rect: Rect,
        now_us: u64,
    ) {
        self.damage
            .entry(win)
            .or_insert_with(|| DamageTracker::new(strategy))
            .add_at(rect, now_us);
    }

    fn is_empty(&self) -> bool {
        !self.wmi
            && self.scrolls.is_empty()
            && self.damage.values().all(|d| d.is_empty())
            && !self.pointer_moved
            && !self.pointer_icon
    }
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one Transport per participant; not worth boxing
enum Transport {
    Udp {
        channel: UdpChannel,
    },
    Tcp {
        link: TcpLink,
        outq: Vec<u8>,
    },
    /// Member of multicast session `session` (§4.3 allows several
    /// simultaneous sessions with different transmission rates).
    Multicast {
        session: usize,
    },
}

/// Encoded region updates (and control messages riding FIFO with them)
/// awaiting pacer tokens, in adaptive-rate mode.
type SendQueue = FreshQueue<(RemotingMessage, Option<FrameTrace>)>;

/// One message drained from pending state, carrying the metadata the
/// adaptive send queue needs for §7 supersede-on-coverage and byte-paced
/// pops. Legacy paths just unwrap `msg`/`trace`.
#[derive(Debug)]
struct Drained {
    msg: RemotingMessage,
    trace: Option<FrameTrace>,
    /// For RegionUpdates: source window and window-local rect, so newer
    /// damage can supersede this update while it waits for pacer tokens.
    region: Option<(WindowId, Rect)>,
    /// Encoded payload size; 0 for control messages, which ride the queue
    /// only to preserve FIFO ordering and are never dropped or deferred.
    payload_bytes: u64,
}

impl Drained {
    fn control(msg: RemotingMessage) -> Self {
        Drained {
            msg,
            trace: None,
            region: None,
            payload_bytes: 0,
        }
    }
}

/// How many encoded-but-unsent bytes the adaptive path keeps warm ahead of
/// the pacer before it stops encoding fresh damage. Bounds both encode work
/// thrown away by superseding and the staleness of queued pixels.
const QUEUE_HEADROOM_BYTES: u64 = 64 * 1024;

/// The adaptive-rate send state shared by unicast and multicast flushes.
#[derive(Debug)]
struct RateState {
    rate: RateController,
    /// Paced send queue with §7 supersede-on-coverage (adaptive only;
    /// stays empty in fixed mode).
    queue: SendQueue,
    /// Regions sent at a lossy tier, owed a lossless repair before the
    /// participant can converge pixel-identical.
    degraded: HashMap<WindowId, DamageTracker>,
    /// Lossless-repair mode: forces the lossless tier until the backlog of
    /// degraded regions has fully drained.
    repairing: bool,
    /// When damage was last drained into encodes (for tier coalescing).
    last_encode_us: u64,
    /// Last rate estimate reported to the flight recorder (AIMD growth
    /// detection; 0 = not yet observed).
    last_rate_bps: u64,
    /// Tier pinned by a downstream `TierRequest` (a relay asking for the
    /// lossiest tier its whole subtree still affords). `None` = publish
    /// lossless as usual; the AH's own congestion estimate can still pick
    /// an even lossier tier, so the effective tier is `max(own, pin)`.
    tier_pin: Option<QualityTier>,
}

impl RateState {
    fn new(rate: RateController) -> Self {
        RateState {
            rate,
            queue: FreshQueue::new(),
            degraded: HashMap::new(),
            repairing: false,
            last_encode_us: 0,
            last_rate_bps: 0,
            tier_pin: None,
        }
    }
}

#[derive(Debug)]
struct PState {
    user_id: u16,
    transport: Transport,
    sender: RtpSender,
    history: Option<RetransmitHistory>,
    pending: Pending,
    /// Pacing, congestion control, and adaptive quality for this path.
    rs: RateState,
    /// Latest RTCP receiver-report block from this participant: the AH's
    /// view of its reception quality (loss fraction, jitter).
    last_report: Option<adshare_rtp::rtcp::ReportBlock>,
    /// When the last RTCP sender report was emitted (µs).
    last_sr_us: u64,
}

#[derive(Debug)]
struct McastState {
    group: MulticastGroup,
    sender: RtpSender,
    history: Option<RetransmitHistory>,
    pending: Pending,
    /// Pacing, congestion control, and adaptive quality for the session.
    /// Every member's RTCP feedback feeds this one controller, so the
    /// session reacts to its worst path.
    rs: RateState,
    /// Time of the last flush attempt (gates SR emission for idle groups).
    last_flush_us: u64,
    /// Member index per handle.
    members: HashMap<usize, usize>,
    /// Recently retransmitted seqs → time, to deduplicate the storm of
    /// identical NACKs a shared loss produces across the group.
    recent_retx: HashMap<u16, u64>,
    /// When the last sender report was emitted (µs).
    last_sr_us: u64,
}

/// The application host (Figure 1's server side).
#[derive(Debug)]
pub struct AppHost {
    desktop: Desktop,
    cfg: AhConfig,
    registry: CodecRegistry,
    rng: StdRng,
    chair: FloorChair,
    /// Whether HIP injection requires holding the BFCP floor.
    require_floor: bool,
    participants: Vec<Option<PState>>,
    mcast: Vec<McastState>,
    injected: Vec<(u16, HipMessage)>,
    counters: AhCounters,
    /// Tile-encode pipeline: damage tiling, the cross-frame
    /// content-addressed encode cache (shared by every participant and
    /// transport), and the worker pool for parallel cache-miss encoding.
    encode: EncodePipeline,
    /// Observability bundle when attached; counters flow regardless, the
    /// bundle adds registry export and frame tracing.
    obs: Option<Obs>,
    last_pointer_rect: Option<Rect>,
    /// Windows known to be shared as of the previous step; a window
    /// entering this set needs a full-content transmission.
    known_shared: std::collections::HashSet<WindowId>,
    /// Encode-cache evictions already reported to the flight recorder.
    last_evictions: u64,
    /// Order-sensitive FNV-1a over every RTP/RTCP packet this AH produced
    /// (pre-framing). Two runs with identical wire output — the guarantee
    /// the multi-tenant host's parity tests pin down — have equal digests.
    wire_digest: u64,
    /// Consent-gated wire-capture sink, when armed. Every egress tap sits
    /// immediately after the matching `wire_digest` fold, so capture record
    /// order equals fold order and a replay can reproduce the digest.
    capture: Option<CaptureHandle>,
}

/// Capture-tap one egress packet (no-op when no capture is armed). Free
/// function so call sites inside disjoint-field borrows of `AppHost` can
/// use it.
fn cap_tx(
    capture: &Option<CaptureHandle>,
    kind: CapStreamKind,
    transport: CapTransport,
    actor: u16,
    now_us: u64,
    bytes: &[u8],
) {
    if let Some(cap) = capture {
        cap.record(CapDirection::Tx, kind, transport, actor, now_us, bytes);
    }
}

/// FNV-1a offset basis (the wire digest's initial value).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an order-sensitive FNV-1a digest.
fn fnv1a_fold(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
    digest
}

impl AppHost {
    /// Create an AH sharing `desktop` (builds its own single-session
    /// encode pipeline from `cfg.encode`).
    pub fn new(desktop: Desktop, cfg: AhConfig, seed: u64) -> Self {
        let encode = EncodePipeline::new(cfg.encode);
        Self::new_with_pipeline(desktop, cfg, seed, encode)
    }

    /// Create an AH with an externally built encode pipeline. This is the
    /// multi-tenant injection point: a host passes a pipeline wired to the
    /// process-wide shared encode cache (under this session's tenant
    /// namespace) and the global bounded worker pool, instead of the
    /// per-session cache and thread budget [`AppHost::new`] builds.
    pub fn new_with_pipeline(
        mut desktop: Desktop,
        cfg: AhConfig,
        seed: u64,
        encode: EncodePipeline,
    ) -> Self {
        desktop.set_damage_strategy(cfg.damage_strategy);
        let known_shared = desktop.wm().shared_records().map(|r| r.id).collect();
        AppHost {
            known_shared,
            desktop,
            chair: FloorChair::new(1, 0, cfg.floor_grant_us),
            encode,
            cfg,
            registry: CodecRegistry::default(),
            rng: StdRng::seed_from_u64(seed),
            require_floor: false,
            participants: Vec::new(),
            mcast: Vec::new(),
            injected: Vec::new(),
            counters: AhCounters::default(),
            obs: None,
            last_pointer_rect: None,
            last_evictions: 0,
            wire_digest: FNV_OFFSET,
            capture: None,
        }
    }

    /// Order-sensitive digest of every packet produced so far — equal
    /// digests mean byte-identical wire output in identical order.
    pub fn wire_digest(&self) -> u64 {
        self.wire_digest
    }

    /// Attach an armed capture sink: from now on every egress RTP/RTCP
    /// packet is recorded next to its `wire_digest` fold, in fold order.
    pub fn attach_capture(&mut self, capture: CaptureHandle) {
        self.capture = Some(capture);
    }

    /// The armed capture sink, if any.
    pub fn capture(&self) -> Option<&CaptureHandle> {
        self.capture.as_ref()
    }

    /// Record a flight-recorder event under the AH actor, if observed.
    fn rec_event(&self, now_us: u64, kind: EventKind, a: u64, b: u64) {
        if let Some(obs) = &self.obs {
            obs.event(now_us, ACTOR_AH, kind, a, b);
        }
    }

    /// Record an event attributed to a specific participant (its handle
    /// index as the actor), so health rules can name the offender.
    fn rec_event_for(&self, now_us: u64, actor: u16, kind: EventKind, a: u64, b: u64) {
        if let Some(obs) = &self.obs {
            obs.event(now_us, actor, kind, a, b);
        }
    }

    /// Record floor grant/revoke events from a batch of chair responses.
    fn rec_floor(&self, msgs: &[BfcpMessage], now_us: u64) {
        for m in msgs {
            if let BfcpMessage::FloorRequestStatus {
                user_id, status, ..
            } = m
            {
                match status {
                    adshare_bfcp::RequestStatus::Granted => {
                        self.rec_event(now_us, EventKind::FloorGrant, *user_id as u64, 0)
                    }
                    adshare_bfcp::RequestStatus::Revoked => {
                        self.rec_event(now_us, EventKind::FloorRevoke, *user_id as u64, 0)
                    }
                    _ => {}
                }
            }
        }
    }

    /// Refresh a path's rate estimate and report AIMD growth as a
    /// [`EventKind::RateUp`] event (decreases are cause-tagged at the
    /// congestion-signal sites instead).
    fn note_rate_change(obs: Option<&Obs>, rs: &mut RateState, now_us: u64) {
        let Some(obs) = obs else { return };
        let Some(rate) = rs.rate.rate_bps(now_us) else {
            return;
        };
        if rs.last_rate_bps > 0 && rate > rs.last_rate_bps {
            obs.event(now_us, ACTOR_AH, EventKind::RateUp, rate, rs.last_rate_bps);
        }
        rs.last_rate_bps = rate;
    }

    /// The shared desktop (drive workloads through this).
    pub fn desktop_mut(&mut self) -> &mut Desktop {
        &mut self.desktop
    }

    /// The shared desktop, read-only.
    pub fn desktop(&self) -> &Desktop {
        &self.desktop
    }

    /// The AH configuration.
    pub fn config(&self) -> &AhConfig {
        &self.cfg
    }

    /// The codec registry (payload types ↔ codecs).
    pub fn registry(&self) -> &CodecRegistry {
        &self.registry
    }

    /// The tile-encode pipeline (cache occupancy, worker count).
    pub fn encode_pipeline(&self) -> &EncodePipeline {
        &self.encode
    }

    /// Enable or disable BFCP floor enforcement for HIP events.
    pub fn set_require_floor(&mut self, on: bool) {
        self.require_floor = on;
    }

    /// The BFCP floor chair.
    pub fn chair_mut(&mut self) -> &mut FloorChair {
        &mut self.chair
    }

    /// Cumulative statistics (compatibility snapshot of the live counters).
    pub fn stats(&self) -> AhStats {
        self.counters.stats()
    }

    /// Attach an observability bundle: adopt the AH counters under `ah.*`,
    /// register every existing transport's counters, and start registering
    /// frame traces at packetize time so participants can complete them.
    /// Transports attached later register themselves automatically.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.counters.register(&obs.registry);
        self.encode.register_metrics(&obs.registry, "ah.encode");
        for (idx, slot) in self.participants.iter().enumerate() {
            if let Some(p) = slot {
                Self::register_participant(&obs.registry, idx, p);
            }
        }
        for (i, m) in self.mcast.iter().enumerate() {
            Self::register_mcast(&obs.registry, i, m);
        }
        self.obs = Some(obs);
    }

    /// The attached observability bundle, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    fn register_participant(registry: &Registry, idx: usize, p: &PState) {
        match &p.transport {
            Transport::Udp { channel, .. } => {
                channel.register_metrics(registry, &format!("ah.participant.{idx}.udp"));
            }
            Transport::Tcp { link, .. } => {
                link.register_metrics(registry, &format!("ah.participant.{idx}.tcp"));
            }
            // Multicast members are registered with their group.
            Transport::Multicast { .. } => return,
        }
        p.rs.rate
            .register_metrics(registry, &format!("ah.participant.{idx}.rate"));
        if let Some(h) = &p.history {
            h.register_metrics(registry, &format!("ah.participant.{idx}.retx_history"));
        }
    }

    fn register_mcast(registry: &Registry, session: usize, m: &McastState) {
        m.group
            .register_metrics(registry, &format!("ah.mcast.{session}"));
        m.rs.rate
            .register_metrics(registry, &format!("ah.mcast.{session}.rate"));
        if let Some(h) = &m.history {
            h.register_metrics(registry, &format!("ah.mcast.{session}.retx_history"));
        }
    }

    /// Attach a unicast UDP participant; the participant must send a PLI to
    /// receive initial state (§4.3: "participants using UDP send an
    /// RTCP-based feedback message, Picture Loss Indication (PLI), after
    /// joining the session").
    pub fn attach_udp(
        &mut self,
        user_id: u16,
        link: LinkConfig,
        seed: u64,
        rate_bps: Option<u64>,
    ) -> ParticipantHandle {
        let sender = RtpSender::new(
            0x41480000 | user_id as u32,
            self.cfg.remoting_pt,
            &mut self.rng,
        );
        let history = self
            .cfg
            .retransmissions
            .then(|| RetransmitHistory::new(self.cfg.history.0, self.cfg.history.1));
        let state = PState {
            user_id,
            transport: Transport::Udp {
                channel: UdpChannel::new(link, seed),
            },
            sender,
            history,
            pending: Pending::default(),
            rs: RateState::new(Self::make_controller(&self.cfg, rate_bps)),
            last_report: None,
            last_sr_us: 0,
        };
        self.participants.push(Some(state));
        let handle = ParticipantHandle(self.participants.len() - 1);
        if let Some(obs) = &self.obs {
            let p = self.participants[handle.0].as_ref().expect("just pushed");
            Self::register_participant(&obs.registry, handle.0, p);
        }
        handle
    }

    /// The congestion controller for a new path: adaptive when the config
    /// enables it (the static `rate_bps` then caps the estimate), else the
    /// legacy fixed-rate pacer.
    fn make_controller(cfg: &AhConfig, rate_bps: Option<u64>) -> RateController {
        match cfg.adaptive_rate {
            Some(rc) => RateController::new_adaptive(rc, rate_bps, cfg.mtu),
            None => RateController::new_fixed(rate_bps, cfg.mtu),
        }
    }

    /// Attach a TCP participant. Initial state is sent immediately (§4.4:
    /// "right after the TCP connection establishment").
    pub fn attach_tcp(&mut self, user_id: u16, link: TcpConfig) -> ParticipantHandle {
        let sender = RtpSender::new(
            0x41480000 | user_id as u32,
            self.cfg.remoting_pt,
            &mut self.rng,
        );
        let mut state = PState {
            user_id,
            transport: Transport::Tcp {
                link: TcpLink::new(link),
                outq: Vec::new(),
            },
            sender,
            history: None,
            pending: Pending::default(),
            // TCP is never byte-paced here (the link backpressures); the
            // controller still adapts quality from the backlog signal.
            rs: RateState::new(Self::make_controller(&self.cfg, None)),
            last_report: None,
            last_sr_us: 0,
        };
        Self::schedule_full_refresh(&self.desktop, &self.cfg, &mut state.pending, 0);
        self.participants.push(Some(state));
        let handle = ParticipantHandle(self.participants.len() - 1);
        if let Some(obs) = &self.obs {
            let p = self.participants[handle.0].as_ref().expect("just pushed");
            Self::register_participant(&obs.registry, handle.0, p);
        }
        handle
    }

    /// Create a multicast session with its own pacing rate; returns its
    /// index. §4.3: "Several simultaneous multicast sessions with different
    /// transmission rates can be created at the AH."
    pub fn create_multicast_session(&mut self, rate_bps: Option<u64>) -> usize {
        let sender = RtpSender::new(
            0x4d430001 + self.mcast.len() as u32,
            self.cfg.remoting_pt,
            &mut self.rng,
        );
        let history = self
            .cfg
            .retransmissions
            .then(|| RetransmitHistory::new(self.cfg.history.0, self.cfg.history.1));
        self.mcast.push(McastState {
            group: MulticastGroup::new(),
            sender,
            history,
            pending: Pending::default(),
            rs: RateState::new(Self::make_controller(&self.cfg, rate_bps)),
            last_flush_us: 0,
            members: HashMap::new(),
            recent_retx: HashMap::new(),
            last_sr_us: 0,
        });
        let session = self.mcast.len() - 1;
        if let Some(obs) = &self.obs {
            Self::register_mcast(&obs.registry, session, &self.mcast[session]);
        }
        session
    }

    /// Ensure a default multicast session (index 0) exists.
    pub fn enable_multicast(&mut self, rate_bps: Option<u64>) {
        if self.mcast.is_empty() {
            self.create_multicast_session(rate_bps);
        }
    }

    /// Join a participant to the default multicast session.
    pub fn attach_multicast(
        &mut self,
        user_id: u16,
        link: LinkConfig,
        seed: u64,
    ) -> ParticipantHandle {
        self.enable_multicast(None);
        self.attach_multicast_session(0, user_id, link, seed)
            .expect("default session exists")
    }

    /// Join a participant to a specific multicast session.
    pub fn attach_multicast_session(
        &mut self,
        session: usize,
        user_id: u16,
        link: LinkConfig,
        seed: u64,
    ) -> Option<ParticipantHandle> {
        if session >= self.mcast.len() {
            return None;
        }
        let state = PState {
            user_id,
            transport: Transport::Multicast { session },
            sender: RtpSender::new(0, 0, &mut self.rng), // unused for mcast
            history: None,
            pending: Pending::default(),
            // Pacing happens at the session, not the member.
            rs: RateState::new(RateController::new_fixed(None, self.cfg.mtu)),
            last_report: None,
            last_sr_us: 0,
        };
        self.participants.push(Some(state));
        let handle = ParticipantHandle(self.participants.len() - 1);
        let mcast = &mut self.mcast[session];
        let member = mcast.group.join(link, seed);
        mcast.members.insert(handle.0, member);
        if let Some(obs) = &self.obs {
            // Re-registration is idempotent for existing members and picks
            // up the newly joined one.
            Self::register_mcast(&obs.registry, session, mcast);
        }
        Some(handle)
    }

    /// Detach a participant (session end).
    pub fn detach(&mut self, handle: ParticipantHandle) {
        if let Some(slot) = self.participants.get_mut(handle.0) {
            *slot = None;
        }
    }

    /// Schedule time-varying downlink conditions for a UDP participant
    /// (bandwidth steps, loss changes) — see [`adshare_netsim::LinkStep`].
    /// No-op for TCP and multicast members.
    pub fn set_link_schedule(
        &mut self,
        handle: ParticipantHandle,
        steps: Vec<adshare_netsim::LinkStep>,
    ) {
        if let Some(Some(p)) = self.participants.get_mut(handle.0) {
            if let Transport::Udp { channel } = &mut p.transport {
                channel.set_schedule(steps);
            }
        }
    }

    /// Multiplicative rate decreases this participant's congestion
    /// controller has applied so far (0 for fixed-rate paths; a multicast
    /// member reports its session's shared controller).
    pub fn rate_decreases(&self, handle: ParticipantHandle) -> u64 {
        let Some(p) = self.participants.get(handle.0).and_then(|p| p.as_ref()) else {
            return 0;
        };
        match p.transport {
            Transport::Multicast { session } => {
                self.mcast.get(session).map_or(0, |m| m.rs.rate.decreases())
            }
            _ => p.rs.rate.decreases(),
        }
    }

    /// The AH egress byte count for one participant's transport.
    pub fn participant_bytes_sent(&self, handle: ParticipantHandle) -> u64 {
        match self.participants.get(handle.0).and_then(|p| p.as_ref()) {
            Some(p) => match &p.transport {
                Transport::Udp { channel, .. } => channel.stats().bytes_sent,
                Transport::Tcp { link, .. } => link.stats().bytes_accepted,
                Transport::Multicast { session } => self
                    .mcast
                    .get(*session)
                    .map(|m| m.group.egress().1)
                    .unwrap_or(0),
            },
            None => 0,
        }
    }

    /// Capture desktop changes and flush to all participants.
    pub fn step(&mut self, now_us: u64) {
        // 1. Capture once. Application-sharing semantics (§2): only changes
        // belonging to shared windows leave the AH.
        let wm_dirty = self.desktop.take_wm_dirty();
        let is_shared =
            |id: WindowId, d: &Desktop| d.wm().get(id).map(|r| r.shared).unwrap_or(false);
        let scrolls: Vec<ScrollHint> = self
            .desktop
            .take_scroll_hints()
            .into_iter()
            .filter(|h| is_shared(h.window, &self.desktop))
            .collect();
        let mut damage: Vec<adshare_screen::desktop::Damage> = self
            .desktop
            .take_damage()
            .into_iter()
            .filter(|d| is_shared(d.window, &self.desktop))
            .collect();
        // A window whose sharing was just switched on must be transmitted
        // in full — its content never reached participants before.
        let shared_now: std::collections::HashSet<WindowId> =
            self.desktop.wm().shared_records().map(|r| r.id).collect();
        for &id in shared_now.difference(&self.known_shared) {
            if let Some(rec) = self.desktop.wm().get(id) {
                damage.push(adshare_screen::desktop::Damage {
                    window: id,
                    rect: Rect::new(0, 0, rec.rect.width, rec.rect.height),
                });
            }
        }
        self.known_shared = shared_now;
        let (ptr_moved, ptr_icon) = self.desktop.pointer_mut().take_changes();
        let pointer_rect = self.desktop.pointer().rect();

        // In-stream pointer: pointer movement damages the windows under the
        // old and new pointer rectangles.
        let mut pointer_damage: Vec<(WindowId, Rect)> = Vec::new();
        if self.cfg.pointer == PointerPolicy::InStream && (ptr_moved || ptr_icon) {
            let mut rects = vec![pointer_rect];
            if let Some(old) = self.last_pointer_rect {
                rects.push(old);
            }
            for rec in self.desktop.wm().shared_records() {
                for r in &rects {
                    if let Some(overlap) = rec.rect.intersect(r) {
                        // Translate into window-local coordinates.
                        pointer_damage.push((
                            rec.id,
                            Rect::new(
                                overlap.left - rec.rect.left,
                                overlap.top - rec.rect.top,
                                overlap.width,
                                overlap.height,
                            ),
                        ));
                    }
                }
            }
        }
        self.last_pointer_rect = Some(pointer_rect);

        // 2. Merge into every participant's pending state.
        let strategy = self.cfg.damage_strategy;
        let merge = |pending: &mut Pending| {
            pending.wmi |= wm_dirty;
            for hint in &scrolls {
                // Unflushed damage from earlier steps predates this scroll:
                // it must ride along with the moved content, or the replayed
                // MoveRectangle will smear stale pixels past the repaint.
                if let Some(tracker) = pending.damage.get_mut(&hint.window) {
                    tracker.translate_for_scroll(
                        hint.src,
                        hint.dst_left as i64 - hint.src.left as i64,
                        hint.dst_top as i64 - hint.src.top as i64,
                    );
                }
                pending.scrolls.push(*hint);
            }
            for d in &damage {
                pending.add_damage(strategy, d.window, d.rect, now_us);
            }
            for (w, r) in &pointer_damage {
                pending.add_damage(strategy, *w, *r, now_us);
            }
            pending.pointer_moved |= ptr_moved;
            pending.pointer_icon |= ptr_icon;
        };
        for slot in self.participants.iter_mut().flatten() {
            if !matches!(slot.transport, Transport::Multicast { .. }) {
                merge(&mut slot.pending);
            }
        }
        for m in &mut self.mcast {
            if !m.members.is_empty() {
                merge(&mut m.pending);
            }
        }

        // 3. Flush per participant. The encode pipeline's content-addressed
        // cache is shared across all of them (and across frames): identical
        // pixels encode once no matter which participant or transport asks,
        // and the quality tier is part of the cache key so participants at
        // different tiers never share an encode.
        self.encode.begin_step();
        for idx in 0..self.participants.len() {
            self.flush_unicast(idx, now_us);
        }
        self.flush_multicast(now_us);
        let evictions = self.encode.cache_evictions();
        if evictions > self.last_evictions {
            self.rec_event(
                now_us,
                EventKind::CacheEvict,
                evictions - self.last_evictions,
                0,
            );
            self.last_evictions = evictions;
        }
        self.emit_sender_reports(now_us);
    }

    /// Periodic RTCP sender reports (RFC 3550 §6.4.1), multiplexed onto the
    /// media path per RFC 5761. They give participants the wall-clock ↔
    /// RTP-timestamp mapping used to measure capture→display latency.
    fn emit_sender_reports(&mut self, now_us: u64) {
        const SR_INTERVAL_US: u64 = 1_000_000;
        let ticks = us_to_ticks(now_us) as u32;
        for slot in self.participants.iter_mut().flatten() {
            if now_us.saturating_sub(slot.last_sr_us) < SR_INTERVAL_US {
                continue;
            }
            let (packets, octets) = slot.sender.sent_counts();
            if packets == 0 {
                continue;
            }
            slot.last_sr_us = now_us;
            let sr = adshare_rtp::rtcp::SenderReport {
                ssrc: slot.sender.ssrc(),
                // NTP field carries the virtual clock in µs — the mapping is
                // what matters, not the epoch.
                ntp: now_us,
                rtp_ts: slot.sender.timestamp_for(ticks),
                packet_count: packets as u32,
                octet_count: octets as u32,
                reports: vec![],
            };
            // RFC 3550 §6.1: every RTCP compound includes an SDES CNAME.
            let sdes =
                adshare_rtp::rtcp::SourceDescription::cname(slot.sender.ssrc(), "ah@adshare");
            let bytes = adshare_rtp::rtcp::encode_compound(&[
                adshare_rtp::rtcp::RtcpPacket::SenderReport(sr),
                adshare_rtp::rtcp::RtcpPacket::Sdes(sdes),
            ]);
            self.counters.sr_sent.inc();
            self.wire_digest = fnv1a_fold(self.wire_digest, &bytes);
            let cap_transport = match &slot.transport {
                Transport::Udp { .. } => CapTransport::Udp,
                Transport::Tcp { .. } => CapTransport::Tcp,
                Transport::Multicast { .. } => CapTransport::Multicast,
            };
            cap_tx(
                &self.capture,
                CapStreamKind::Rtcp,
                cap_transport,
                ACTOR_AH,
                now_us,
                &bytes,
            );
            match &mut slot.transport {
                Transport::Udp { channel, .. } => channel.send(now_us, &bytes),
                Transport::Tcp { link, outq } => {
                    let mut framed = Vec::with_capacity(bytes.len() + 2);
                    let _ = frame_into(&mut framed, &bytes);
                    if outq.is_empty() {
                        let n = link.send(now_us, &framed);
                        if n < framed.len() {
                            outq.extend_from_slice(&framed[n..]);
                        }
                    } else {
                        outq.extend_from_slice(&framed);
                    }
                }
                Transport::Multicast { .. } => {}
            }
        }
        // One SR per multicast session, into the group.
        for m in &mut self.mcast {
            if m.members.is_empty() || now_us.saturating_sub(m.last_flush_us) > SR_INTERVAL_US * 10
            {
                continue;
            }
            if now_us.saturating_sub(m.last_sr_us) < SR_INTERVAL_US {
                continue;
            }
            let (packets, octets) = m.sender.sent_counts();
            if packets == 0 {
                continue;
            }
            m.last_sr_us = now_us;
            let sr = adshare_rtp::rtcp::SenderReport {
                ssrc: m.sender.ssrc(),
                ntp: now_us,
                rtp_ts: m.sender.timestamp_for(ticks),
                packet_count: packets as u32,
                octet_count: octets as u32,
                reports: vec![],
            };
            let sdes = adshare_rtp::rtcp::SourceDescription::cname(m.sender.ssrc(), "ah@adshare");
            let bytes = adshare_rtp::rtcp::encode_compound(&[
                adshare_rtp::rtcp::RtcpPacket::SenderReport(sr),
                adshare_rtp::rtcp::RtcpPacket::Sdes(sdes),
            ]);
            self.counters.sr_sent.inc();
            self.wire_digest = fnv1a_fold(self.wire_digest, &bytes);
            cap_tx(
                &self.capture,
                CapStreamKind::Rtcp,
                CapTransport::Multicast,
                ACTOR_AH,
                now_us,
                &bytes,
            );
            m.group.send(now_us, &bytes);
        }
    }

    /// Datagrams arriving at a UDP participant by `now_us`.
    pub fn poll_udp(&mut self, handle: ParticipantHandle, now_us: u64) -> Vec<Vec<u8>> {
        match self.participants.get_mut(handle.0).and_then(|p| p.as_mut()) {
            Some(PState {
                transport: Transport::Udp { channel, .. },
                ..
            }) => channel.poll(now_us),
            Some(PState {
                transport: Transport::Multicast { session },
                ..
            }) => {
                let session = *session;
                let Some(m) = self.mcast.get_mut(session) else {
                    return Vec::new();
                };
                let Some(&member) = m.members.get(&handle.0) else {
                    return Vec::new();
                };
                m.group.poll(member, now_us)
            }
            _ => Vec::new(),
        }
    }

    /// Stream bytes arriving at a TCP participant by `now_us`.
    pub fn poll_tcp(&mut self, handle: ParticipantHandle, now_us: u64) -> Vec<u8> {
        match self.participants.get_mut(handle.0).and_then(|p| p.as_mut()) {
            Some(PState {
                transport: Transport::Tcp { link, .. },
                ..
            }) => link.recv(now_us),
            _ => Vec::new(),
        }
    }

    /// Handle RTCP feedback (PLI / NACK) from a participant (§5.3).
    pub fn handle_rtcp(&mut self, handle: ParticipantHandle, bytes: &[u8], now_us: u64) {
        let Ok(packets) = decode_compound(bytes) else {
            return;
        };
        for pkt in packets {
            match pkt {
                RtcpPacket::Pli(_) => {
                    let served = self.full_refresh_for(handle, now_us);
                    self.rec_event_for(
                        now_us,
                        handle.0 as u16,
                        EventKind::PliReceived,
                        served as u64,
                        handle.0 as u64,
                    );
                }
                RtcpPacket::Nack(nack) => {
                    let lost = nack.lost_seqs();
                    self.rec_event_for(
                        now_us,
                        handle.0 as u16,
                        EventKind::NackReceived,
                        lost.len() as u64,
                        lost.first().copied().unwrap_or(0) as u64,
                    );
                    // A NACK is also a congestion signal for the path's
                    // estimator (a burst decreases, a trickle holds off).
                    let mut decreased_to = None;
                    if let Some(rs) = self.rate_state_mut(handle) {
                        let before = rs.rate.decreases();
                        rs.rate.on_nack(lost.len(), now_us);
                        if rs.rate.decreases() > before {
                            decreased_to = Some(rs.rate.rate_bps(now_us).unwrap_or(0));
                        }
                    }
                    if let Some(rate) = decreased_to {
                        self.rec_event(now_us, EventKind::RateDown, rate, RATE_CAUSE_NACK_BURST);
                    }
                    self.retransmit(handle, &lost, now_us);
                }
                RtcpPacket::ReceiverReport(rr) => {
                    if let Some(block) = rr.reports.into_iter().next() {
                        self.handle_receiver_report(handle, block, now_us);
                    }
                }
                RtcpPacket::Unknown { ref raw, .. } => {
                    // A relay's tier subscription (RTCP APP "ADTR"): pin
                    // this participant's published tier so the whole
                    // subtree stops paying for quality it cannot deliver.
                    if let Some(req) = TierRequest::decode(raw) {
                        let pin = (req.tier != QualityTier::Lossless).then_some(req.tier);
                        if let Some(rs) = self.rate_state_mut(handle) {
                            rs.tier_pin = pin;
                        }
                        self.rec_event_for(
                            now_us,
                            handle.0 as u16,
                            EventKind::TierRequest,
                            req.tier.as_gauge() as u64,
                            0,
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// The congestion-control state governing a participant's sends: its
    /// own for unicast, the session's for a multicast member.
    fn rate_state_mut(&mut self, handle: ParticipantHandle) -> Option<&mut RateState> {
        let session = match self.participants.get(handle.0).and_then(|p| p.as_ref()) {
            Some(PState {
                transport: Transport::Multicast { session },
                ..
            }) => Some(*session),
            Some(_) => None,
            None => return None,
        };
        match session {
            Some(s) => self.mcast.get_mut(s).map(|m| &mut m.rs),
            None => self
                .participants
                .get_mut(handle.0)
                .and_then(|p| p.as_mut())
                .map(|p| &mut p.rs),
        }
    }

    /// Schedule a full refresh toward `handle`'s path, subject to the
    /// adaptive controller's PLI throttle (a denied requester re-asks via
    /// its resync timer; fixed-rate mode never throttles). Returns whether
    /// the refresh was actually scheduled.
    fn full_refresh_for(&mut self, handle: ParticipantHandle, now_us: u64) -> bool {
        let allowed = match self.rate_state_mut(handle) {
            Some(rs) => rs.rate.allow_refresh(now_us),
            None => return false,
        };
        if !allowed {
            return false;
        }
        self.counters.full_refreshes.inc();
        let mcast_session = match self.participants.get(handle.0).and_then(|p| p.as_ref()) {
            Some(PState {
                transport: Transport::Multicast { session },
                ..
            }) => Some(*session),
            _ => None,
        };
        if let Some(session) = mcast_session {
            if let Some(m) = self.mcast.get_mut(session) {
                Self::schedule_full_refresh(&self.desktop, &self.cfg, &mut m.pending, now_us);
            }
        } else if let Some(p) = self.participants.get_mut(handle.0).and_then(|p| p.as_mut()) {
            Self::schedule_full_refresh(&self.desktop, &self.cfg, &mut p.pending, now_us);
        }
        true
    }

    /// Process a reception report: stash it as the AH's quality view of the
    /// path, and repair *tail loss*. NACKs only fire when a later packet
    /// reveals a gap, so packets lost at the end of a burst (nothing behind
    /// them) would otherwise desynchronize a participant forever. The RR's
    /// extended-highest-sequence tells the AH how far behind the receiver
    /// is; a short deficit is answered from retransmit history, a hopeless
    /// one with a full refresh.
    fn handle_receiver_report(
        &mut self,
        handle: ParticipantHandle,
        block: adshare_rtp::rtcp::ReportBlock,
        now_us: u64,
    ) {
        let reported = block.highest_seq as u16;
        let fraction_lost = block.fraction_lost;
        let mut session_idx = None;
        let mut is_tcp = false;
        {
            let Some(p) = self.participants.get_mut(handle.0).and_then(|p| p.as_mut()) else {
                return;
            };
            match p.transport {
                Transport::Multicast { session } => session_idx = Some(session),
                Transport::Tcp { .. } => is_tcp = true,
                Transport::Udp { .. } => {}
            }
            p.last_report = Some(block);
        }
        // TCP is reliable and in-order: a lagging RR just means queued bytes
        // (the estimator watches the send-buffer backlog instead).
        if is_tcp {
            return;
        }
        // The receiver's loss fraction is the primary congestion signal.
        let mut decreased_to = None;
        if let Some(rs) = self.rate_state_mut(handle) {
            let before = rs.rate.decreases();
            rs.rate.on_report(fraction_lost, now_us);
            if rs.rate.decreases() > before {
                decreased_to = Some(rs.rate.rate_bps(now_us).unwrap_or(0));
            }
        }
        if let Some(rate) = decreased_to {
            self.rec_event(now_us, EventKind::RateDown, rate, RATE_CAUSE_LOSS_REPORT);
        }
        let sender = match session_idx {
            Some(s) => self.mcast.get(s).map(|m| &m.sender),
            None => self
                .participants
                .get(handle.0)
                .and_then(|p| p.as_ref())
                .map(|p| &p.sender),
        };
        let Some(sender) = sender else { return };
        if sender.sent_counts().0 == 0 {
            return;
        }
        let last_sent = sender.peek_seq().wrapping_sub(1);
        let gap = last_sent.wrapping_sub(reported);
        /// Largest tail deficit worth repairing packet-by-packet; beyond
        /// this (or past the history window) a refresh is cheaper.
        const TAIL_REPAIR_MAX: u16 = 64;
        if gap == 0 || gap >= 0x8000 {
            // Up to date, or the report is ahead of our bookkeeping
            // (sequence wrap mid-flight); nothing to repair.
        } else if gap <= TAIL_REPAIR_MAX {
            let seqs: Vec<u16> = (1..=gap).map(|i| reported.wrapping_add(i)).collect();
            self.counters.tail_repairs.inc();
            self.retransmit(handle, &seqs, now_us);
        } else {
            self.full_refresh_for(handle, now_us);
        }
    }

    fn retransmit(&mut self, handle: ParticipantHandle, seqs: &[u16], now_us: u64) {
        if !self.cfg.retransmissions {
            return;
        }
        let Some(p) = self.participants.get_mut(handle.0).and_then(|p| p.as_mut()) else {
            return;
        };
        match &mut p.transport {
            Transport::Udp { channel, .. } => {
                if let Some(history) = &mut p.history {
                    for &seq in seqs {
                        if let Some(pkt) = history.lookup(seq) {
                            let encoded = pkt.encode();
                            self.wire_digest = fnv1a_fold(self.wire_digest, &encoded);
                            cap_tx(
                                &self.capture,
                                CapStreamKind::Rtp,
                                CapTransport::Udp,
                                handle.0 as u16,
                                now_us,
                                &encoded,
                            );
                            channel.send(now_us, &encoded);
                            self.counters.retransmits.inc();
                            self.counters.bytes_sent.add(encoded.len() as u64);
                            if let Some(obs) = &self.obs {
                                obs.event(
                                    now_us,
                                    handle.0 as u16,
                                    EventKind::RetxServed,
                                    seq as u64,
                                    encoded.len() as u64,
                                );
                            }
                        } else if let Some(obs) = &self.obs {
                            obs.event(
                                now_us,
                                handle.0 as u16,
                                EventKind::RetxExpired,
                                seq as u64,
                                0,
                            );
                        }
                    }
                }
            }
            Transport::Multicast { session } => {
                if let Some(m) = self.mcast.get_mut(*session) {
                    // A repair already multicast within the window reaches
                    // every member; answering the same NACK again only
                    // amplifies the storm.
                    const RETX_DEDUP_WINDOW_US: u64 = 100_000;
                    m.recent_retx
                        .retain(|_, &mut at| now_us.saturating_sub(at) < RETX_DEDUP_WINDOW_US);
                    if let Some(history) = &mut m.history {
                        for &seq in seqs {
                            if m.recent_retx.contains_key(&seq) {
                                self.counters.retransmits_suppressed.inc();
                                if let Some(obs) = &self.obs {
                                    obs.event(
                                        now_us,
                                        ACTOR_AH,
                                        EventKind::RetxSuppressed,
                                        seq as u64,
                                        0,
                                    );
                                }
                                continue;
                            }
                            if let Some(pkt) = history.lookup(seq) {
                                let encoded = pkt.encode();
                                self.wire_digest = fnv1a_fold(self.wire_digest, &encoded);
                                cap_tx(
                                    &self.capture,
                                    CapStreamKind::Rtp,
                                    CapTransport::Multicast,
                                    ACTOR_AH,
                                    now_us,
                                    &encoded,
                                );
                                m.group.send(now_us, &encoded);
                                m.recent_retx.insert(seq, now_us);
                                self.counters.retransmits.inc();
                                self.counters.bytes_sent.add(encoded.len() as u64);
                                if let Some(obs) = &self.obs {
                                    obs.event(
                                        now_us,
                                        ACTOR_AH,
                                        EventKind::RetxServed,
                                        seq as u64,
                                        encoded.len() as u64,
                                    );
                                }
                            } else if let Some(obs) = &self.obs {
                                obs.event(now_us, ACTOR_AH, EventKind::RetxExpired, seq as u64, 0);
                            }
                        }
                    }
                }
            }
            Transport::Tcp { .. } => {} // TCP is reliable; NACK not used
        }
    }

    /// Handle one HIP RTP packet from a participant (§6), enforcing the
    /// §4.1 legitimacy gate and (optionally) BFCP floor ownership.
    pub fn handle_hip(&mut self, handle: ParticipantHandle, rtp_datagram: &[u8]) {
        let Some(p) = self.participants.get(handle.0).and_then(|p| p.as_ref()) else {
            return;
        };
        let user_id = p.user_id;
        let Ok(pkt) = RtpPacket::decode(rtp_datagram) else {
            self.counters.hip_rejected.inc();
            return;
        };
        let Ok(msg) = adshare_remoting::packetizer::depacketize_hip(&pkt) else {
            self.counters.hip_rejected.inc();
            return;
        };
        // Floor gate.
        if self.require_floor {
            let allowed = match &msg {
                HipMessage::KeyPressed { .. }
                | HipMessage::KeyReleased { .. }
                | HipMessage::KeyTyped { .. } => self.chair.keyboard_allowed(user_id),
                _ => self.chair.mouse_allowed(user_id),
            };
            if !allowed {
                self.counters.hip_rejected.inc();
                return;
            }
        }
        // §4.1: "The AH MUST only accept legitimate HIP events by checking
        // whether the requested coordinates are inside the shared windows."
        let target = WindowId(msg.window_id().0);
        let Some(rec) = self.desktop.wm().get(target).filter(|r| r.shared) else {
            self.counters.hip_rejected.inc();
            return;
        };
        if let Some((x, y)) = msg.coordinates() {
            if !rec.rect.contains(x, y) {
                self.counters.hip_rejected.inc();
                return;
            }
        }
        // Accepted: inject. Mouse movement drives the desktop pointer, as
        // the regenerated OS event would.
        if let HipMessage::MouseMoved { left, top, .. } = &msg {
            self.desktop.pointer_mut().move_to(*left, *top);
        }
        if let HipMessage::KeyPressed { key_code, .. } = &msg {
            // Exercise the keycode table for diagnostics parity.
            let _ = keycodes::vk_name(*key_code);
        }
        self.counters.hip_injected.inc();
        self.injected.push((user_id, msg));
    }

    /// Handle a BFCP message from a participant; returns responses routed
    /// by user id.
    pub fn handle_bfcp(&mut self, bytes: &[u8], now_us: u64) -> Vec<(u16, Vec<u8>)> {
        let Ok(msg) = BfcpMessage::decode(bytes) else {
            return Vec::new();
        };
        let out = self.chair.handle(&msg, now_us);
        self.rec_floor(&out, now_us);
        out.into_iter()
            .map(|m| (bfcp_target(&m), m.encode()))
            .collect()
    }

    /// Advance floor-control timers.
    pub fn tick_floor(&mut self, now_us: u64) -> Vec<(u16, Vec<u8>)> {
        let out = self.chair.tick(now_us);
        self.rec_floor(&out, now_us);
        out.into_iter()
            .map(|m| (bfcp_target(&m), m.encode()))
            .collect()
    }

    /// Update the HID status (e.g. shared app lost focus, Appendix A).
    pub fn set_hid_status(&mut self, status: HidStatus) -> Vec<(u16, Vec<u8>)> {
        self.chair
            .set_hid_status(status)
            .into_iter()
            .map(|m| (bfcp_target(&m), m.encode()))
            .collect()
    }

    /// Earliest pending transport delivery across every participant, in µs
    /// — lets an orchestrator advance the clock straight to the next
    /// interesting instant instead of polling on a fixed tick.
    pub fn next_event_us(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut fold = |e: Option<u64>| {
            min = match (min, e) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        };
        for slot in self.participants.iter().flatten() {
            match &slot.transport {
                Transport::Udp { channel, .. } => fold(channel.next_delivery_us()),
                Transport::Tcp { link, .. } => fold(link.next_event_us()),
                Transport::Multicast { .. } => {}
            }
        }
        for m in &self.mcast {
            fold(m.group.next_delivery_us());
        }
        min
    }

    /// Whether any path still holds unflushed work — pending damage, a
    /// non-empty pacer queue, owed lossless repairs, or TCP bytes queued
    /// behind a full send buffer. A host can skip stepping a session whose
    /// workload is idle and whose paths report nothing pending.
    pub fn has_pending(&self) -> bool {
        let rs_busy =
            |rs: &RateState| rs.repairing || !rs.queue.is_empty() || !rs.degraded.is_empty();
        for slot in self.participants.iter().flatten() {
            if matches!(slot.transport, Transport::Multicast { .. }) {
                continue;
            }
            if !slot.pending.is_empty() || rs_busy(&slot.rs) {
                return true;
            }
            if let Transport::Tcp { outq, .. } = &slot.transport {
                if !outq.is_empty() {
                    return true;
                }
            }
        }
        self.mcast
            .iter()
            .any(|m| !m.members.is_empty() && (!m.pending.is_empty() || rs_busy(&m.rs)))
    }

    /// Take the HIP events accepted so far: (user, event).
    pub fn take_injected(&mut self) -> Vec<(u16, HipMessage)> {
        std::mem::take(&mut self.injected)
    }

    /// The latest RTCP receiver report from a participant — the AH's view
    /// of that path's loss fraction and jitter (RFC 3550 §6.4).
    pub fn reception_report(
        &self,
        handle: ParticipantHandle,
    ) -> Option<&adshare_rtp::rtcp::ReportBlock> {
        self.participants
            .get(handle.0)
            .and_then(|p| p.as_ref())
            .and_then(|p| p.last_report.as_ref())
    }

    fn schedule_full_refresh(
        desktop: &Desktop,
        cfg: &AhConfig,
        pending: &mut Pending,
        now_us: u64,
    ) {
        pending.wmi = true;
        pending.pointer_moved = true;
        pending.pointer_icon = true;
        for rec in desktop.wm().shared_records() {
            pending.add_damage(
                cfg.damage_strategy,
                rec.id,
                Rect::new(0, 0, rec.rect.width, rec.rect.height),
                now_us,
            );
        }
    }

    /// Build a WindowManagerInfo message reflecting current WM state
    /// (exposed for tests and the real-socket examples).
    pub fn build_wmi(&self) -> RemotingMessage {
        Self::build_wmi_static(&self.desktop)
    }

    /// Composite the pointer into `crop` (a window-local `tile` of window
    /// record rect `rec_rect`) where the pointer overlaps it. Runs before
    /// hashing, so pointer pixels are part of the tile's cache identity.
    fn composite_pointer(desktop: &Desktop, rec_rect: Rect, tile: Rect, crop: &mut Image) {
        let ptr = desktop.pointer();
        let ptr_rect = ptr.rect();
        let region_desktop = Rect::new(
            rec_rect.left + tile.left,
            rec_rect.top + tile.top,
            tile.width,
            tile.height,
        );
        if !ptr_rect.intersects(&region_desktop) {
            return;
        }
        let icon = ptr.icon();
        for dy in 0..icon.height() {
            for dx in 0..icon.width() {
                let px = icon.pixel(dx, dy).expect("in bounds");
                if px[3] == 0 {
                    continue;
                }
                let dx_abs = ptr_rect.left + dx;
                let dy_abs = ptr_rect.top + dy;
                if region_desktop.contains(dx_abs, dy_abs) {
                    crop.set_pixel(
                        dx_abs - region_desktop.left,
                        dy_abs - region_desktop.top,
                        px,
                    );
                }
            }
        }
    }

    /// Encode one damaged region of a window through the tile pipeline.
    /// The region is split along the pipeline's fixed grid; tiles already
    /// in the content-addressed cache are served without encoding, the
    /// rest encode on the worker pool. Returns `(payload_type, tile_rect,
    /// payload, encode_us)` per tile in deterministic row-major order
    /// (`encode_us` is 0 on a cache hit). At a lossy `tier` every tile is
    /// sent as coarse DCT regardless of the configured codec (the decoder
    /// needs no side channel; the payload type says DCT), and the tier is
    /// part of the cache key so a lossy encode never poisons a lossless
    /// lookup.
    #[allow(clippy::too_many_arguments)]
    fn encode_region_tiles(
        desktop: &Desktop,
        cfg: &AhConfig,
        registry: &CodecRegistry,
        counters: &AhCounters,
        pipeline: &mut EncodePipeline,
        obs: Option<&Obs>,
        now_us: u64,
        win: WindowId,
        rect: Rect,
        tier: QualityTier,
    ) -> Vec<(u8, Rect, Bytes, u64)> {
        let Some(rec) = desktop.wm().get(win).filter(|r| r.shared).copied() else {
            return Vec::new();
        };
        let Some(content) = desktop.window_content(win) else {
            return Vec::new();
        };
        let Some(rect) = rect.intersect(&content.bounds()) else {
            return Vec::new();
        };
        let mut jobs = Vec::new();
        for tile in pipeline.tile(rect) {
            let Ok(mut crop) = content.crop(tile) else {
                continue;
            };
            if cfg.pointer == PointerPolicy::InStream {
                Self::composite_pointer(desktop, rec.rect, tile, &mut crop);
            }
            jobs.push(TileJob {
                rect: tile,
                image: crop,
            });
        }
        // A congestion-driven lossy tier overrides codec choice entirely;
        // otherwise §4.2: pick the codec "according to their
        // characteristics" when adaptive mode is on, else the configured
        // codec. The closure is a pure function of the pixels, so it is
        // safe to run on the pool and its output safe to cache by content.
        let dct_kernel = if cfg.dct_reference_kernel {
            adshare_codec::dct::Kernel::Reference
        } else {
            adshare_codec::dct::Kernel::Fast
        };
        let encode = |img: &Image| -> (u8, Vec<u8>) {
            if let Some(quality) = tier.dct_quality() {
                let pt = registry.pt_for(CodecKind::Dct).expect("DCT registered");
                let codec = AnyCodec::with_options(
                    CodecKind::Dct,
                    EncodeOptions {
                        quality,
                        dct_kernel,
                        ..EncodeOptions::default()
                    },
                );
                (pt, codec.encode(img))
            } else {
                let pt = if cfg.adaptive_codec {
                    match adshare_codec::classify(img).class {
                        adshare_codec::ContentClass::Photographic => {
                            registry.pt_for(CodecKind::Dct).expect("DCT registered")
                        }
                        adshare_codec::ContentClass::Synthetic => registry
                            .pt_for(cfg.codec)
                            .expect("configured codec registered"),
                    }
                } else {
                    registry
                        .pt_for(cfg.codec)
                        .expect("configured codec registered")
                };
                let codec = *registry.get(pt).expect("registered");
                let codec = if codec.kind() == CodecKind::Dct {
                    AnyCodec::with_options(
                        CodecKind::Dct,
                        EncodeOptions {
                            dct_kernel,
                            ..EncodeOptions::default()
                        },
                    )
                } else {
                    codec
                };
                (pt, codec.encode(img))
            }
        };
        let tiles = pipeline.encode_batch(tier.as_gauge() as u8, jobs, encode);
        let total = tiles.len() as u64;
        let mut hits = 0u64;
        // Per-codec encode CPU split: (cpu_us, encodes, bytes) per payload
        // type actually used this batch, folded into `codec.<name>.*` after
        // the loop so registry lookups happen once per codec, not per tile.
        let mut per_codec: Vec<(u8, u64, u64, u64, Vec<u64>)> = Vec::new();
        let out: Vec<(u8, Rect, Bytes, u64)> = tiles
            .into_iter()
            .map(|t| {
                if t.cache_hit {
                    hits += 1;
                } else {
                    counters.encodes.inc();
                    counters.encoded_bytes.add(t.payload.len() as u64);
                    counters.encode_us.record(t.encode_us);
                    if obs.is_some() {
                        let slot = match per_codec.iter_mut().find(|e| e.0 == t.payload_type) {
                            Some(s) => s,
                            None => {
                                per_codec.push((t.payload_type, 0, 0, 0, Vec::new()));
                                per_codec.last_mut().expect("just pushed")
                            }
                        };
                        slot.1 += t.encode_us;
                        slot.2 += 1;
                        slot.3 += t.payload.len() as u64;
                        slot.4.push(t.encode_us);
                    }
                }
                (t.payload_type, t.rect, t.payload, t.encode_us)
            })
            .collect();
        if let Some(obs) = obs {
            for (pt, cpu_us, encodes, bytes, samples) in per_codec {
                let name = registry
                    .get(pt)
                    .map(|c| c.kind().encoding_name())
                    .unwrap_or("unknown");
                obs.registry
                    .counter(&format!("codec.{name}.cpu_us_total"))
                    .add(cpu_us);
                obs.registry
                    .counter(&format!("codec.{name}.encodes"))
                    .add(encodes);
                obs.registry
                    .counter(&format!("codec.{name}.bytes"))
                    .add(bytes);
                let hist = obs.registry.histogram(&format!("codec.{name}.encode_us"));
                for us in samples {
                    hist.record(us);
                }
            }
            if hits > 0 {
                obs.event(now_us, ACTOR_AH, EventKind::CacheHit, hits, total);
            }
            if hits < total {
                obs.event(now_us, ACTOR_AH, EventKind::CacheMiss, total - hits, total);
            }
        }
        out
    }

    /// Build the ordered message list for a pending state, consuming it.
    /// `budget_bytes` bounds how many encoded-payload bytes of RegionUpdates
    /// are drained this flush (None = unlimited); undrained damage stays.
    /// At a lossy `tier`, every drained region is also remembered in
    /// `degraded` so a lossless repair can follow once bandwidth allows.
    ///
    /// Each RegionUpdate is paired with a partially-filled [`FrameTrace`]
    /// (damage age, encode cost, payload size); the flush path completes it
    /// with fragmentation and send timing before registering it.
    #[allow(clippy::too_many_arguments)]
    fn drain_pending(
        desktop: &Desktop,
        cfg: &AhConfig,
        registry: &CodecRegistry,
        counters: &AhCounters,
        pipeline: &mut EncodePipeline,
        obs: Option<&Obs>,
        pending: &mut Pending,
        budget_bytes: Option<u64>,
        now_us: u64,
        tier: QualityTier,
        mut degraded: Option<&mut HashMap<WindowId, DamageTracker>>,
    ) -> Vec<Drained> {
        let mut out: Vec<Drained> = Vec::new();
        if pending.wmi {
            pending.wmi = false;
            out.push(Drained::control(Self::build_wmi_static(desktop)));
            counters.wmi_msgs.inc();
        }
        for hint in std::mem::take(&mut pending.scrolls) {
            if !cfg.use_move_rectangle {
                // Ablation: convert the scroll into plain damage of the
                // whole scrolled area.
                let dst = Rect::new(hint.dst_left, hint.dst_top, hint.src.width, hint.src.height);
                pending.add_damage(
                    cfg.damage_strategy,
                    hint.window,
                    hint.src.union(&dst),
                    now_us,
                );
                continue;
            }
            let Some(rec) = desktop.wm().get(hint.window).filter(|r| r.shared) else {
                continue;
            };
            out.push(Drained::control(RemotingMessage::MoveRectangle(
                MoveRectangle {
                    window_id: WireWindowId(hint.window.0),
                    src_left: rec.rect.left + hint.src.left,
                    src_top: rec.rect.top + hint.src.top,
                    width: hint.src.width,
                    height: hint.src.height,
                    dst_left: rec.rect.left + hint.dst_left,
                    dst_top: rec.rect.top + hint.dst_top,
                },
            )));
            counters.move_msgs.inc();
        }
        if cfg.pointer == PointerPolicy::Explicit && (pending.pointer_moved || pending.pointer_icon)
        {
            let ptr = desktop.pointer();
            let (x, y) = ptr.position();
            let image = if pending.pointer_icon {
                let raw_pt = registry.pt_for(CodecKind::Raw).expect("raw registered");
                let codec = registry.get(raw_pt).expect("registered");
                Some((raw_pt, Bytes::from(codec.encode(ptr.icon()))))
            } else {
                None
            };
            let window_id = desktop
                .wm()
                .window_at(x, y)
                .filter(|r| r.shared)
                .map(|r| WireWindowId(r.id.0))
                .unwrap_or(WireWindowId(0));
            let (pt, image_bytes) = match image {
                Some((pt, b)) => (pt, Some(b)),
                None => (
                    registry.pt_for(CodecKind::Raw).expect("raw registered"),
                    None,
                ),
            };
            out.push(Drained::control(RemotingMessage::MousePointerInfo(
                MousePointerInfo {
                    window_id,
                    payload_type: pt,
                    left: x,
                    top: y,
                    image: image_bytes,
                },
            )));
            counters.pointer_msgs.inc();
            pending.pointer_moved = false;
            pending.pointer_icon = false;
        }
        // Damage → RegionUpdates, freshest content, budget-bounded.
        let mut spent: u64 = 0;
        let windows: Vec<WindowId> = pending.damage.keys().copied().collect();
        for win in windows {
            // Window gone or no longer shared? Drop its damage.
            if !desktop.wm().get(win).map(|r| r.shared).unwrap_or(false) {
                pending.damage.remove(&win);
                continue;
            }
            let tracker = pending.damage.get_mut(&win).expect("keyed");
            let damage_at_us = tracker.oldest_pending_us().unwrap_or(now_us);
            let rects = tracker.take();
            let mut unspent = Vec::new();
            for rect in rects {
                if budget_bytes.is_some_and(|b| spent >= b) {
                    unspent.push(rect);
                    continue;
                }
                // One pipeline batch per damage rect: a full-window refresh
                // becomes dozens of tiles encoding in parallel, and each
                // tile is a stable content-addressed cache unit.
                for (pt, tile, payload, encode_us) in Self::encode_region_tiles(
                    desktop, cfg, registry, counters, pipeline, obs, now_us, win, rect, tier,
                ) {
                    spent += payload.len() as u64;
                    if tier.is_lossy() {
                        // A lossy encode leaves the participant with
                        // approximate pixels; remember the region so a
                        // lossless repair pass can follow once bandwidth
                        // allows (pixel-identical convergence).
                        if let Some(d) = degraded.as_deref_mut() {
                            d.entry(win)
                                .or_insert_with(|| DamageTracker::new(cfg.damage_strategy))
                                .add_at(tile, now_us);
                        }
                    }
                    let trace = FrameTrace {
                        window_id: win.0,
                        damage_at_us,
                        encode_wall_us: encode_us,
                        bytes: payload.len() as u64,
                        ..FrameTrace::default()
                    };
                    let rec = desktop.wm().get(win).expect("checked above");
                    let payload_bytes = payload.len() as u64;
                    out.push(Drained {
                        msg: RemotingMessage::RegionUpdate(RegionUpdate {
                            window_id: WireWindowId(win.0),
                            payload_type: pt,
                            left: rec.rect.left + tile.left,
                            top: rec.rect.top + tile.top,
                            payload,
                        }),
                        trace: Some(trace),
                        region: Some((win, tile)),
                        payload_bytes,
                    });
                    counters.region_msgs.inc();
                }
            }
            // Budget-deferred rects keep their original observation time so
            // the damage stage reflects the full queueing delay.
            for rect in unspent {
                tracker.add_at(rect, damage_at_us);
            }
        }
        out
    }

    /// Adaptive-mode drain (UDP unicast and multicast): pick the encode
    /// tier, re-inject owed lossless repairs, encode under the
    /// coalesce/headroom gate, and route everything through the
    /// supersede-on-coverage send queue. Returns the messages the pacer
    /// releases this flush, in FIFO order.
    #[allow(clippy::too_many_arguments)]
    fn drain_adaptive(
        desktop: &Desktop,
        cfg: &AhConfig,
        registry: &CodecRegistry,
        counters: &AhCounters,
        pipeline: &mut EncodePipeline,
        obs: Option<&Obs>,
        pending: &mut Pending,
        rs: &mut RateState,
        budget: Option<u64>,
        now_us: u64,
    ) -> Vec<(RemotingMessage, Option<FrameTrace>)> {
        // Tier: forced lossless while a repair pass is draining, else the
        // lossier of the bandwidth estimate and a downstream tier pin.
        let mut tier = if rs.repairing {
            QualityTier::Lossless
        } else {
            rs.rate
                .tier()
                .max(rs.tier_pin.unwrap_or(QualityTier::Lossless))
        };
        // Owed repairs re-enter as damage once the estimate is back at the
        // lossless tier, or when there is nothing fresher to send. The
        // repair pins the tier lossless until it drains, so repaired
        // pixels are never immediately re-degraded.
        let idle = pending.is_empty() && rs.queue.is_empty();
        if !rs.degraded.is_empty() && (tier == QualityTier::Lossless || idle) {
            for (win, mut tracker) in std::mem::take(&mut rs.degraded) {
                for rect in tracker.take() {
                    pending.add_damage(cfg.damage_strategy, win, rect, now_us);
                }
            }
            rs.repairing = true;
            tier = QualityTier::Lossless;
        }
        // Encode gate: stop producing fresh encodes while the queue already
        // holds a pacer-window's worth (supersede keeps it fresh), or while
        // inside the tier's damage-coalescing interval. Control messages
        // still drain — a zero budget only defers rect encodes.
        let queued = rs.queue.bytes();
        let coalescing = now_us.saturating_sub(rs.last_encode_us) < rs.rate.coalesce_us();
        let encode_budget = if queued >= QUEUE_HEADROOM_BYTES || coalescing {
            Some(0)
        } else {
            budget.map(|b| b.saturating_add(QUEUE_HEADROOM_BYTES - queued))
        };
        let drained = Self::drain_pending(
            desktop,
            cfg,
            registry,
            counters,
            pipeline,
            obs,
            pending,
            encode_budget,
            now_us,
            tier,
            Some(&mut rs.degraded),
        );
        if drained.iter().any(|d| d.region.is_some()) {
            rs.last_encode_us = now_us;
        }
        for d in drained {
            match d.region {
                Some((win, rect)) => {
                    // §7 generalised to UDP: fresher damage covering a
                    // queued-but-unsent update makes it stale; drop it and
                    // let the fresh encode (pushed at `now_us`, so never
                    // self-superseded) take its place.
                    let dropped = rs.queue.supersede(win.0 as u64, rect, now_us);
                    rs.rate.note_superseded(dropped);
                    if dropped > 0 {
                        if let Some(obs) = obs {
                            obs.event(
                                now_us,
                                ACTOR_AH,
                                EventKind::PacerSupersede,
                                dropped as u64,
                                0,
                            );
                        }
                    }
                    rs.queue.push(
                        win.0 as u64,
                        rect,
                        now_us,
                        d.payload_bytes,
                        (d.msg, d.trace),
                    );
                }
                // Control messages: a window id no real window uses, an
                // empty rect and zero bytes — never superseded, virtually
                // free to pop, but strictly FIFO with the region updates
                // around them (MoveRectangle ordering matters).
                None => rs
                    .queue
                    .push(u64::MAX, Rect::new(0, 0, 0, 0), now_us, 0, (d.msg, d.trace)),
            }
        }
        let released = rs.queue.pop_budget(budget);
        // Repair complete once every owed region was re-encoded and sent.
        if rs.repairing && pending.is_empty() && rs.queue.is_empty() && rs.degraded.is_empty() {
            rs.repairing = false;
        }
        rs.rate.note_queue(rs.queue.len(), rs.queue.bytes());
        released.into_iter().map(|q| q.payload).collect()
    }

    fn build_wmi_static(desktop: &Desktop) -> RemotingMessage {
        let windows = desktop
            .wm()
            .shared_records()
            .map(|r| WireWindowRecord {
                window_id: WireWindowId(r.id.0),
                group_id: r.group,
                left: r.rect.left,
                top: r.rect.top,
                width: r.rect.width,
                height: r.rect.height,
            })
            .collect();
        RemotingMessage::WindowManagerInfo(WindowManagerInfo { windows })
    }

    fn flush_unicast(&mut self, idx: usize, now_us: u64) {
        let Some(Some(p)) = self.participants.get_mut(idx) else {
            return;
        };
        let ticks = us_to_ticks(now_us) as u32;
        match &mut p.transport {
            Transport::Tcp { link, outq } => {
                // Push queued bytes first.
                if !outq.is_empty() {
                    let n = link.send(now_us, outq);
                    outq.drain(..n);
                }
                let backlog = link.backlog(now_us) + outq.len();
                if p.rs.rate.is_adaptive() {
                    // §7's select() signal doubles as TCP's congestion
                    // signal: the controller adapts quality from the
                    // send-buffer occupancy. TCP is never byte-paced here
                    // — the buffer itself does the pacing.
                    let before = p.rs.rate.decreases();
                    p.rs.rate
                        .on_backlog(backlog, link.config().send_buf, now_us);
                    let _ = p.rs.rate.flush_budget(now_us); // refresh gauges
                    if p.rs.rate.decreases() > before {
                        if let Some(obs) = &self.obs {
                            obs.event(
                                now_us,
                                ACTOR_AH,
                                EventKind::RateDown,
                                p.rs.rate.rate_bps(now_us).unwrap_or(0),
                                RATE_CAUSE_BACKLOG,
                            );
                        }
                    }
                    Self::note_rate_change(self.obs.as_ref(), &mut p.rs, now_us);
                }
                let mut tier = if p.rs.repairing {
                    QualityTier::Lossless
                } else {
                    p.rs.rate
                        .tier()
                        .max(p.rs.tier_pin.unwrap_or(QualityTier::Lossless))
                };
                // Owed lossless repairs re-enter once the buffer is clean.
                if !p.rs.degraded.is_empty()
                    && backlog == 0
                    && (tier == QualityTier::Lossless || p.pending.is_empty())
                {
                    for (win, mut tracker) in std::mem::take(&mut p.rs.degraded) {
                        for rect in tracker.take() {
                            p.pending
                                .add_damage(self.cfg.damage_strategy, win, rect, now_us);
                        }
                    }
                    p.rs.repairing = true;
                    tier = QualityTier::Lossless;
                }
                if p.pending.is_empty() {
                    return;
                }
                if self.cfg.tcp_freshness_policy && backlog > 0 {
                    // §7: backlog present — hold pending state, send the
                    // freshest version once the buffer drains.
                    if let Some(obs) = &self.obs {
                        obs.event(
                            now_us,
                            idx as u16,
                            EventKind::BacklogSkip,
                            backlog as u64,
                            0,
                        );
                    }
                    return;
                }
                let msgs = Self::drain_pending(
                    &self.desktop,
                    &self.cfg,
                    &self.registry,
                    &self.counters,
                    &mut self.encode,
                    self.obs.as_ref(),
                    &mut p.pending,
                    None,
                    now_us,
                    tier,
                    Some(&mut p.rs.degraded),
                );
                if p.rs.repairing && tier == QualityTier::Lossless {
                    // Unbudgeted drain: the whole repair just went out.
                    p.rs.repairing = false;
                }
                // TCP frames can carry large payloads; use a large RTP
                // payload budget to minimise per-packet overhead but stay
                // under the RFC 4571 16-bit frame limit.
                for (msg, seed) in msgs.into_iter().map(|d| (d.msg, d.trace)) {
                    let frag_start = std::time::Instant::now();
                    let Ok(frags) = fragment(&msg, 60_000) else {
                        continue;
                    };
                    let fragment_us = frag_start.elapsed().as_micros() as u64;
                    self.counters.fragment_us.record(fragment_us);
                    let nfrags = frags.len() as u32;
                    let mut marker_seq = None;
                    let mut msg_bytes = 0u64;
                    for f in frags {
                        let marker = f.marker;
                        let pkt = p.sender.next_packet(ticks, marker, f.payload);
                        if marker {
                            marker_seq = Some(pkt.header.sequence);
                        }
                        self.counters.rtp_packets.inc();
                        let encoded = pkt.encode();
                        self.wire_digest = fnv1a_fold(self.wire_digest, &encoded);
                        cap_tx(
                            &self.capture,
                            CapStreamKind::Rtp,
                            CapTransport::Tcp,
                            idx as u16,
                            now_us,
                            &encoded,
                        );
                        let mut framed = Vec::with_capacity(encoded.len() + 2);
                        let _ = frame_into(&mut framed, &encoded);
                        self.counters.bytes_sent.add(framed.len() as u64);
                        msg_bytes += framed.len() as u64;
                        // Stream bytes must stay ordered: once anything is
                        // queued, everything after it queues behind it.
                        if outq.is_empty() {
                            let n = link.send(now_us, &framed);
                            if n < framed.len() {
                                outq.extend_from_slice(&framed[n..]);
                            }
                        } else {
                            outq.extend_from_slice(&framed);
                        }
                    }
                    if let Some(obs) = &self.obs {
                        obs.event(
                            now_us,
                            idx as u16,
                            EventKind::RtpTx,
                            marker_seq.unwrap_or(0) as u64,
                            ((nfrags as u64) << 32) | (msg_bytes & 0xFFFF_FFFF),
                        );
                    }
                    if let (Some(obs), Some(mut trace), Some(seq)) = (&self.obs, seed, marker_seq) {
                        trace.sent_at_us = now_us;
                        trace.fragment_wall_us = fragment_us;
                        trace.fragments = nfrags;
                        obs.traces.register(p.sender.ssrc(), seq, trace);
                    }
                }
            }
            Transport::Udp { channel, .. } => {
                let adaptive = p.rs.rate.is_adaptive();
                let rs_idle = p.rs.degraded.is_empty() && (!adaptive || p.rs.queue.is_empty());
                if p.pending.is_empty() && rs_idle {
                    if adaptive {
                        // Nothing to send, but the lazy additive increase
                        // still accrues: refresh the rate/tier gauges so an
                        // idle recovered leg reads lossless, not its last
                        // congested snapshot.
                        let _ = p.rs.rate.flush_budget(now_us);
                    }
                    return;
                }
                // Token bucket for §4.3 AH-side pacing (fixed link rate or
                // the live congestion estimate).
                let budget = p.rs.rate.flush_budget(now_us);
                Self::note_rate_change(self.obs.as_ref(), &mut p.rs, now_us);
                let msgs: Vec<(RemotingMessage, Option<FrameTrace>)> = if adaptive {
                    Self::drain_adaptive(
                        &self.desktop,
                        &self.cfg,
                        &self.registry,
                        &self.counters,
                        &mut self.encode,
                        self.obs.as_ref(),
                        &mut p.pending,
                        &mut p.rs,
                        budget,
                        now_us,
                    )
                } else {
                    // A fixed-rate leg has no congestion estimate, but a
                    // downstream TierRequest can still pin it lossy; owed
                    // repairs re-enter as soon as the pin lifts.
                    let tier = if p.rs.repairing || p.rs.tier_pin.is_none() {
                        QualityTier::Lossless
                    } else {
                        p.rs.tier_pin.unwrap_or(QualityTier::Lossless)
                    };
                    if tier == QualityTier::Lossless && !p.rs.degraded.is_empty() {
                        for (win, mut tracker) in std::mem::take(&mut p.rs.degraded) {
                            for rect in tracker.take() {
                                p.pending
                                    .add_damage(self.cfg.damage_strategy, win, rect, now_us);
                            }
                        }
                        p.rs.repairing = true;
                    }
                    let drained = Self::drain_pending(
                        &self.desktop,
                        &self.cfg,
                        &self.registry,
                        &self.counters,
                        &mut self.encode,
                        self.obs.as_ref(),
                        &mut p.pending,
                        budget,
                        now_us,
                        tier,
                        Some(&mut p.rs.degraded),
                    );
                    if p.rs.repairing && p.pending.is_empty() && p.rs.degraded.is_empty() {
                        p.rs.repairing = false;
                    }
                    drained.into_iter().map(|d| (d.msg, d.trace)).collect()
                };
                let mut sent_bytes = 0u64;
                for (msg, seed) in msgs {
                    let frag_start = std::time::Instant::now();
                    let Ok(frags) = fragment(&msg, self.cfg.mtu) else {
                        continue;
                    };
                    let fragment_us = frag_start.elapsed().as_micros() as u64;
                    self.counters.fragment_us.record(fragment_us);
                    let nfrags = frags.len() as u32;
                    let mut marker_seq = None;
                    let mut msg_bytes = 0u64;
                    for f in frags {
                        let marker = f.marker;
                        let pkt = p.sender.next_packet(ticks, marker, f.payload);
                        if marker {
                            marker_seq = Some(pkt.header.sequence);
                        }
                        self.counters.rtp_packets.inc();
                        let encoded = pkt.encode();
                        self.wire_digest = fnv1a_fold(self.wire_digest, &encoded);
                        cap_tx(
                            &self.capture,
                            CapStreamKind::Rtp,
                            CapTransport::Udp,
                            idx as u16,
                            now_us,
                            &encoded,
                        );
                        sent_bytes += encoded.len() as u64;
                        msg_bytes += encoded.len() as u64;
                        self.counters.bytes_sent.add(encoded.len() as u64);
                        channel.send(now_us, &encoded);
                        if let Some(history) = &mut p.history {
                            history.record(pkt);
                        }
                    }
                    if let Some(obs) = &self.obs {
                        obs.event(
                            now_us,
                            idx as u16,
                            EventKind::RtpTx,
                            marker_seq.unwrap_or(0) as u64,
                            ((nfrags as u64) << 32) | (msg_bytes & 0xFFFF_FFFF),
                        );
                    }
                    if let (Some(obs), Some(mut trace), Some(seq)) = (&self.obs, seed, marker_seq) {
                        trace.sent_at_us = now_us;
                        trace.fragment_wall_us = fragment_us;
                        trace.fragments = nfrags;
                        obs.traces.register(p.sender.ssrc(), seq, trace);
                    }
                }
                p.rs.rate.consume(sent_bytes);
            }
            Transport::Multicast { .. } => {}
        }
    }

    fn flush_multicast(&mut self, now_us: u64) {
        for session in 0..self.mcast.len() {
            self.flush_multicast_session(session, now_us);
        }
    }

    fn flush_multicast_session(&mut self, session: usize, now_us: u64) {
        let Some(m) = self.mcast.get_mut(session) else {
            return;
        };
        let adaptive = m.rs.rate.is_adaptive();
        let rs_idle = !adaptive || (m.rs.queue.is_empty() && m.rs.degraded.is_empty());
        if m.members.is_empty() || (m.pending.is_empty() && rs_idle) {
            return;
        }
        let ticks = us_to_ticks(now_us) as u32;
        let budget = m.rs.rate.flush_budget(now_us);
        Self::note_rate_change(self.obs.as_ref(), &mut m.rs, now_us);
        m.last_flush_us = now_us;
        let msgs: Vec<(RemotingMessage, Option<FrameTrace>)> = if adaptive {
            Self::drain_adaptive(
                &self.desktop,
                &self.cfg,
                &self.registry,
                &self.counters,
                &mut self.encode,
                self.obs.as_ref(),
                &mut m.pending,
                &mut m.rs,
                budget,
                now_us,
            )
        } else {
            Self::drain_pending(
                &self.desktop,
                &self.cfg,
                &self.registry,
                &self.counters,
                &mut self.encode,
                self.obs.as_ref(),
                &mut m.pending,
                budget,
                now_us,
                QualityTier::Lossless,
                None,
            )
            .into_iter()
            .map(|d| (d.msg, d.trace))
            .collect()
        };
        let mut sent_bytes = 0u64;
        for (msg, seed) in msgs {
            let frag_start = std::time::Instant::now();
            let Ok(frags) = fragment(&msg, self.cfg.mtu) else {
                continue;
            };
            let fragment_us = frag_start.elapsed().as_micros() as u64;
            self.counters.fragment_us.record(fragment_us);
            let nfrags = frags.len() as u32;
            let mut marker_seq = None;
            let mut msg_bytes = 0u64;
            for f in frags {
                let marker = f.marker;
                let pkt = m.sender.next_packet(ticks, marker, f.payload);
                if marker {
                    marker_seq = Some(pkt.header.sequence);
                }
                self.counters.rtp_packets.inc();
                let encoded = pkt.encode();
                self.wire_digest = fnv1a_fold(self.wire_digest, &encoded);
                cap_tx(
                    &self.capture,
                    CapStreamKind::Rtp,
                    CapTransport::Multicast,
                    ACTOR_AH,
                    now_us,
                    &encoded,
                );
                sent_bytes += encoded.len() as u64;
                msg_bytes += encoded.len() as u64;
                self.counters.bytes_sent.add(encoded.len() as u64);
                m.group.send(now_us, &encoded);
                if let Some(history) = &mut m.history {
                    history.record(pkt);
                }
            }
            if let Some(obs) = &self.obs {
                obs.event(
                    now_us,
                    ACTOR_AH,
                    EventKind::RtpTx,
                    marker_seq.unwrap_or(0) as u64,
                    ((nfrags as u64) << 32) | (msg_bytes & 0xFFFF_FFFF),
                );
            }
            if let (Some(obs), Some(mut trace), Some(seq)) = (&self.obs, seed, marker_seq) {
                trace.sent_at_us = now_us;
                trace.fragment_wall_us = fragment_us;
                trace.fragments = nfrags;
                obs.traces.register(m.sender.ssrc(), seq, trace);
            }
        }
        m.rs.rate.consume(sent_bytes);
    }
}

/// The user a chair response is addressed to.
fn bfcp_target(msg: &BfcpMessage) -> u16 {
    match msg {
        BfcpMessage::FloorRequest { user_id, .. }
        | BfcpMessage::FloorRelease { user_id, .. }
        | BfcpMessage::FloorRequestStatus { user_id, .. } => *user_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_remoting::registry::MouseButton;

    fn ah_with_window() -> (AppHost, WindowId) {
        let mut desktop = Desktop::new(640, 480);
        let win = desktop.create_window(1, Rect::new(100, 80, 200, 150), [200, 200, 200, 255]);
        let ah = AppHost::new(desktop, AhConfig::default(), 7);
        (ah, win)
    }

    #[test]
    fn build_wmi_reflects_wm_state() {
        let (ah, win) = ah_with_window();
        let RemotingMessage::WindowManagerInfo(wmi) = ah.build_wmi() else {
            panic!()
        };
        assert_eq!(wmi.windows.len(), 1);
        assert_eq!(wmi.windows[0].window_id.0, win.0);
        assert_eq!(wmi.windows[0].left, 100);
        assert_eq!(wmi.windows[0].width, 200);
    }

    #[test]
    fn hip_gate_rejects_outside_coordinates() {
        let (mut ah, win) = ah_with_window();
        let h = ah.attach_udp(1, LinkConfig::default(), 1, None);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hip = adshare_remoting::packetizer::HipPacketizer::new(
            RtpSender::new(9, 100, &mut rng),
            1400,
        );
        let inside = HipMessage::MousePressed {
            window_id: WireWindowId(win.0),
            button: MouseButton::Left,
            left: 150,
            top: 100,
        };
        let outside = HipMessage::MousePressed {
            window_id: WireWindowId(win.0),
            button: MouseButton::Left,
            left: 10,
            top: 10,
        };
        let badwin = HipMessage::MouseMoved {
            window_id: WireWindowId(999),
            left: 150,
            top: 100,
        };
        for (msg, ok) in [(&inside, true), (&outside, false), (&badwin, false)] {
            let pkts = hip.packetize(msg, 0).unwrap();
            ah.handle_hip(h, &pkts[0].encode());
            let _ = ok;
        }
        assert_eq!(ah.stats().hip_injected, 1);
        assert_eq!(ah.stats().hip_rejected, 2);
        let injected = ah.take_injected();
        assert_eq!(injected.len(), 1);
        assert_eq!(injected[0].0, 1);
    }

    #[test]
    fn floor_gate_blocks_without_floor() {
        let (mut ah, win) = ah_with_window();
        ah.set_require_floor(true);
        let h = ah.attach_udp(5, LinkConfig::default(), 1, None);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hip = adshare_remoting::packetizer::HipPacketizer::new(
            RtpSender::new(9, 100, &mut rng),
            1400,
        );
        let msg = HipMessage::MouseMoved {
            window_id: WireWindowId(win.0),
            left: 150,
            top: 100,
        };
        let pkts = hip.packetize(&msg, 0).unwrap();
        ah.handle_hip(h, &pkts[0].encode());
        assert_eq!(ah.stats().hip_rejected, 1);

        // Grant the floor via BFCP and retry.
        let req = BfcpMessage::FloorRequest {
            conference_id: 1,
            transaction_id: 1,
            user_id: 5,
            floor_id: 0,
        };
        let responses = ah.handle_bfcp(&req.encode(), 0);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].0, 5);
        let pkts = hip.packetize(&msg, 10).unwrap();
        ah.handle_hip(h, &pkts[0].encode());
        assert_eq!(ah.stats().hip_injected, 1);
    }

    #[test]
    fn mouse_move_drives_pointer() {
        let (mut ah, win) = ah_with_window();
        let h = ah.attach_udp(1, LinkConfig::default(), 1, None);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hip = adshare_remoting::packetizer::HipPacketizer::new(
            RtpSender::new(9, 100, &mut rng),
            1400,
        );
        let msg = HipMessage::MouseMoved {
            window_id: WireWindowId(win.0),
            left: 180,
            top: 120,
        };
        let pkts = hip.packetize(&msg, 0).unwrap();
        ah.handle_hip(h, &pkts[0].encode());
        assert_eq!(ah.desktop().pointer().position(), (180, 120));
    }

    #[test]
    fn tcp_attach_gets_initial_state_immediately() {
        let (mut ah, _) = ah_with_window();
        let h = ah.attach_tcp(1, TcpConfig::default());
        ah.step(1_000);
        // Bytes start flowing without any PLI.
        let bytes = ah.poll_tcp(h, 2_000_000);
        assert!(!bytes.is_empty());
        assert!(ah.stats().wmi_msgs >= 1);
        assert!(ah.stats().region_msgs >= 1);
    }

    #[test]
    fn udp_attach_needs_pli_for_state() {
        let (mut ah, _) = ah_with_window();
        // Consume the initial desktop damage before the participant joins:
        // a late joiner must not rely on it.
        ah.step(0);
        let h = ah.attach_udp(1, LinkConfig::default(), 1, None);
        ah.step(1_000);
        assert!(ah.poll_udp(h, 10_000_000).is_empty(), "nothing until PLI");
        // PLI triggers WMI + full refresh.
        let pli = RtcpPacket::Pli(adshare_rtp::rtcp::PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        });
        ah.handle_rtcp(h, &pli.encode(), 2_000);
        ah.step(3_000);
        let datagrams = ah.poll_udp(h, 10_000_000);
        assert!(!datagrams.is_empty());
        assert_eq!(ah.stats().full_refreshes, 1);
    }

    #[test]
    fn nack_retransmits_from_history() {
        let (mut ah, win) = ah_with_window();
        let h = ah.attach_udp(1, LinkConfig::default(), 1, None);
        let pli = RtcpPacket::Pli(adshare_rtp::rtcp::PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        });
        ah.handle_rtcp(h, &pli.encode(), 0);
        ah.step(1_000);
        let datagrams = ah.poll_udp(h, 10_000_000);
        assert!(!datagrams.is_empty());
        // Ask for the first packet's sequence again.
        let first = RtpPacket::decode(&datagrams[0]).unwrap();
        let nack = RtcpPacket::Nack(adshare_rtp::rtcp::GenericNack::from_seqs(
            1,
            2,
            &[first.header.sequence],
        ));
        ah.handle_rtcp(h, &nack.encode(), 20_000_000);
        let retrans = ah.poll_udp(h, 30_000_000);
        assert_eq!(retrans.len(), 1);
        let again = RtpPacket::decode(&retrans[0]).unwrap();
        assert_eq!(again.header.sequence, first.header.sequence);
        assert_eq!(ah.stats().retransmits, 1);
        let _ = win;
    }

    #[test]
    fn detach_stops_flow() {
        let (mut ah, _) = ah_with_window();
        let h = ah.attach_tcp(1, TcpConfig::default());
        ah.detach(h);
        ah.step(1_000);
        assert!(ah.poll_tcp(h, 10_000_000).is_empty());
    }

    /// Decode a batch of datagrams into remoting payload types seen.
    fn payload_types(
        depkt: &mut adshare_remoting::packetizer::RemotingDepacketizer,
        datagrams: &[Vec<u8>],
    ) -> Vec<u8> {
        let mut pts = Vec::new();
        for dg in datagrams {
            let Ok(pkt) = RtpPacket::decode(dg) else {
                continue;
            };
            if let Ok(Some(RemotingMessage::RegionUpdate(ru))) = depkt.feed(&pkt) {
                pts.push(ru.payload_type);
            }
        }
        pts
    }

    #[test]
    fn tier_request_pins_fixed_leg_lossy_then_repairs_on_release() {
        let (mut ah, win) = ah_with_window();
        let h = ah.attach_udp(1, LinkConfig::default(), 1, None);
        let pli = RtcpPacket::Pli(adshare_rtp::rtcp::PictureLossIndication {
            sender_ssrc: 1,
            media_ssrc: 2,
        });
        ah.handle_rtcp(h, &pli.encode(), 0);
        ah.step(1_000);
        let mut depkt = adshare_remoting::packetizer::RemotingDepacketizer::new();
        let initial = ah.poll_udp(h, 10_000_000);
        let pts = payload_types(&mut depkt, &initial);
        assert!(!pts.is_empty());
        assert!(pts
            .iter()
            .all(|&pt| pt != adshare_codec::codec::default_pt::DCT));

        // A downstream relay subscribes Balanced: fresh damage goes lossy.
        let req = TierRequest {
            ssrc: 0x5245_0000,
            tier: QualityTier::Balanced,
        };
        ah.handle_rtcp(h, &req.encode(), 10_050_000);
        ah.desktop_mut()
            .fill(win, Rect::new(120, 100, 64, 48), [10, 200, 40, 255]);
        ah.step(10_100_000);
        let lossy = ah.poll_udp(h, 20_000_000);
        let pts = payload_types(&mut depkt, &lossy);
        assert!(
            pts.contains(&adshare_codec::codec::default_pt::DCT),
            "pinned leg must publish the lossy tier, got {pts:?}"
        );

        // Releasing the pin owes the leg a lossless repair of the same
        // region so it converges pixel-identical.
        let release = TierRequest {
            ssrc: 0x5245_0000,
            tier: QualityTier::Lossless,
        };
        ah.handle_rtcp(h, &release.encode(), 20_050_000);
        ah.step(20_100_000);
        let repaired = ah.poll_udp(h, 30_000_000);
        let pts = payload_types(&mut depkt, &repaired);
        assert!(
            !pts.is_empty()
                && pts
                    .iter()
                    .all(|&pt| pt != adshare_codec::codec::default_pt::DCT),
            "repair pass must be lossless, got {pts:?}"
        );
    }
}
