//! End-to-end application and desktop sharing sessions.
//!
//! This crate composes every substrate into the system Figure 1 of the
//! draft describes: an [`AppHost`] that captures window content, encodes
//! damaged regions, packetizes them onto per-participant RTP streams, and
//! paces transmission per transport policy; and a [`Participant`] that
//! reorders/reassembles the stream, decodes updates into local window
//! buffers, lays the windows out on its own screen (Figures 3–5), and
//! sends HIP events back — moderated by BFCP floor control.
//!
//! * [`config`] — tunables for both sides (codec, MTU, §7 policy, …).
//! * [`app_host`] — the AH pipeline and per-participant transmit state.
//! * [`participant`] — the viewer pipeline and layout policies.
//! * [`sim`] — a deterministic orchestrator binding AHs and participants
//!   over `adshare-netsim` links; every experiment drives this.
//! * [`driver`] — the [`SessionDriver`] contract a multi-tenant host's
//!   readiness event loop steps sessions through.
//! * [`baseline`] — a VNC-style client-pull baseline for comparison.
//! * [`scenario`] — seeded adversarial scenario schedules (churn,
//!   bandwidth cliffs, floor storms) judged by the health engine.
//! * [`mod@replay`] — deterministic re-execution of `adshare-capture/v1`
//!   files with bit-exact wire/surface digest checks and historical
//!   Perfetto export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app_host;
pub mod baseline;
pub mod config;
pub mod driver;
pub mod participant;
pub mod replay;
pub mod scenario;
pub mod sim;

pub use app_host::{AppHost, ParticipantHandle};
pub use config::{AhConfig, Layout, PointerPolicy, TransportKind};
pub use driver::SessionDriver;
pub use participant::Participant;
pub use replay::{
    historical_chrome_trace, packet_samples, participant_surface_digest, replay, ReplayReport,
    SurfaceCheck,
};
pub use scenario::{run_scenario, Action, Scenario, ScenarioCapture, ScenarioOutcome, TimedEvent};
pub use sim::SimSession;
