//! Session configuration types.

use adshare_codec::CodecKind;
use adshare_screen::damage::MergeStrategy;

/// Which transport a participant uses (§4.3/§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Unicast UDP with RTCP feedback (PLI/NACK).
    Udp,
    /// TCP with RFC 4571 framing.
    Tcp,
    /// Member of a multicast group.
    Multicast,
}

/// How the AH ships the mouse pointer (§4.2: "The protocol supports two
/// different mouse pointer models. ... The AH decides which mouse model to
/// use. The participants MUST support both").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerPolicy {
    /// Pointer pixels composited into RegionUpdates.
    InStream,
    /// Explicit MousePointerInfo messages.
    Explicit,
}

/// AH-side configuration.
#[derive(Debug, Clone)]
pub struct AhConfig {
    /// Content codec for RegionUpdates.
    pub codec: CodecKind,
    /// §4.2 "according to their characteristics": classify each region and
    /// encode photographic content with the lossy DCT codec, synthetic
    /// content with `codec`. Off by default (pure lossless).
    pub adaptive_codec: bool,
    /// RTP payload budget per UDP packet (bytes).
    pub mtu: usize,
    /// Dynamic PT of the remoting stream itself.
    pub remoting_pt: u8,
    /// Pointer model.
    pub pointer: PointerPolicy,
    /// Whether the AH answers Generic NACKs with retransmissions
    /// (§4.5.1 MAY).
    pub retransmissions: bool,
    /// §7 policy: monitor the TCP send buffer and transmit only the
    /// freshest state when there is no backlog. Disabled = naive sender
    /// that queues everything (the ablation in experiment E4).
    pub tcp_freshness_policy: bool,
    /// Translate scrolls into MoveRectangle messages (§5.2.3). Disabled =
    /// re-encode scrolled pixels (ablation in E3).
    pub use_move_rectangle: bool,
    /// Damage coalescing strategy (ablation in E9).
    pub damage_strategy: MergeStrategy,
    /// Retransmission cache bounds: (packets, bytes).
    pub history: (usize, usize),
    /// Floor grant duration in µs; `None` = hold until release.
    pub floor_grant_us: Option<u64>,
    /// Closed-loop congestion control (`adshare-rate`): estimate each
    /// participant's available bandwidth from RTCP feedback, pace
    /// RegionUpdates through a freshest-frame queue, and adapt codec
    /// quality to the estimate. `None` (the default) keeps the legacy
    /// fixed-rate pacing.
    pub adaptive_rate: Option<adshare_rate::RateConfig>,
    /// Tile-encode pipeline (`adshare-encode`): damage tiling grain, worker
    /// pool size, and the cross-frame content-addressed cache budget. The
    /// default enables the persistent cache with auto-sized workers; set
    /// `workers: 1` + `cross_frame_cache: false` to reproduce the legacy
    /// serial per-step path.
    pub encode: adshare_encode::EncodeConfig,
    /// Ablation: run the scalar reference DCT kernel instead of the
    /// vectorised fast one. Wire bytes are identical either way (the
    /// kernels are bit-identical by construction and proptest); this exists
    /// to measure what the fast kernel buys (E22).
    pub dct_reference_kernel: bool,
}

impl Default for AhConfig {
    fn default() -> Self {
        AhConfig {
            codec: CodecKind::Png,
            adaptive_codec: false,
            mtu: 1400,
            remoting_pt: 99,
            pointer: PointerPolicy::Explicit,
            retransmissions: true,
            tcp_freshness_policy: true,
            use_move_rectangle: true,
            damage_strategy: MergeStrategy::Greedy { slack_percent: 130 },
            history: (4096, 8 << 20),
            floor_grant_us: None,
            adaptive_rate: None,
            encode: adshare_encode::EncodeConfig::default(),
            dct_reference_kernel: false,
        }
    }
}

/// How a participant lays out the shared windows on its own screen
/// (Figures 3–5 of the draft).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Original AH coordinates (participant 1, Figure 3).
    Original,
    /// All windows shifted by a fixed offset, relations preserved
    /// (participant 2, Figure 4).
    Shifted {
        /// Pixels subtracted from every window's x.
        dx: i64,
        /// Pixels subtracted from every window's y.
        dy: i64,
    },
    /// Windows packed toward the origin independently, for small screens
    /// (participant 3, Figure 5). Each window keeps its size; positions are
    /// assigned compactly in z-order.
    Packed {
        /// Participant screen width.
        width: u32,
        /// Participant screen height.
        height: u32,
    },
    /// Like [`Layout::Packed`], but windows of the same GroupID move as a
    /// unit, preserving their relative offsets (§4.1: "Grouping information
    /// MAY be used by the participant while relocating the windows").
    GroupedPacked {
        /// Participant screen width.
        width: u32,
        /// Participant screen height.
        height: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spec_shaped() {
        let c = AhConfig::default();
        assert_eq!(c.codec, CodecKind::Png, "PNG is the mandatory codec");
        assert!(c.tcp_freshness_policy, "§7 policy on by default");
        assert!(c.use_move_rectangle);
        assert!(c.mtu >= 576, "minimum sane MTU");
    }
}
