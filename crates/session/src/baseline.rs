//! A VNC/RFB-style baseline for the comparison experiments (E10).
//!
//! Architectural differences from the draft's RTP design, faithfully kept:
//!
//! * **Client-pull**: the viewer sends a framebuffer-update request and the
//!   server answers with at most one update per outstanding request (RFB's
//!   FramebufferUpdateRequest/FramebufferUpdate cycle).
//! * **No window model**: the server shares the composited desktop, so a
//!   window *move* is pixel damage over both the old and new areas, and
//!   z-order changes re-send pixels — where the RTP protocol sends a
//!   20-byte window record.
//! * **Run-length rectangles** (RRE/hextile-family) instead of PNG.
//! * **TCP only**, one update in flight, no partial-reliability options.

use std::collections::HashMap;

use adshare_codec::rle;
use adshare_codec::{Image, Rect};
use adshare_netsim::tcp::{TcpConfig, TcpLink};
use adshare_screen::damage::{DamageTracker, MergeStrategy};
use adshare_screen::desktop::Desktop;
use adshare_screen::wm::WindowId;

/// Wire encoding of one update rectangle: x, y (u32), then the RLE body
/// length (u32) and body.
fn encode_rect(out: &mut Vec<u8>, x: u32, y: u32, img: &Image) {
    out.extend_from_slice(&x.to_be_bytes());
    out.extend_from_slice(&y.to_be_bytes());
    let body = rle::encode(img);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
}

/// VNC-style server state for one client.
#[derive(Debug)]
pub struct VncServer {
    link: TcpLink,
    pending: DamageTracker,
    /// Last known geometry per window, to convert window events into pixel
    /// damage.
    last_rects: HashMap<WindowId, Rect>,
    /// Whether the client has an unanswered update request.
    outstanding_request: bool,
    /// Bytes of updates sent.
    pub bytes_sent: u64,
    /// Updates (FramebufferUpdate messages) sent.
    pub updates_sent: u64,
    /// User-space queue for bytes the socket refused.
    outq: Vec<u8>,
}

impl VncServer {
    /// New server over the given link.
    pub fn new(link: TcpConfig) -> Self {
        VncServer {
            link: TcpLink::new(link),
            pending: DamageTracker::new(MergeStrategy::Greedy { slack_percent: 130 }),
            last_rects: HashMap::new(),
            outstanding_request: true, // RFB clients request immediately
            bytes_sent: 0,
            updates_sent: 0,
            outq: Vec::new(),
        }
    }

    /// Capture the desktop's changes into desktop-coordinate damage. VNC
    /// has no window abstraction: geometry changes become pixel damage.
    pub fn capture(&mut self, desktop: &mut Desktop) {
        let _ = desktop.take_wm_dirty();
        // Window create/close/move/resize → damage old ∪ new areas.
        let mut seen: HashMap<WindowId, Rect> = HashMap::new();
        for rec in desktop.wm().records() {
            seen.insert(rec.id, rec.rect);
            match self.last_rects.get(&rec.id) {
                Some(old) if *old != rec.rect => {
                    self.pending.add(*old);
                    self.pending.add(rec.rect);
                }
                None => self.pending.add(rec.rect),
                _ => {}
            }
        }
        for (id, old) in &self.last_rects {
            if !seen.contains_key(id) {
                self.pending.add(*old);
            }
        }
        self.last_rects = seen;
        // Scrolls are just damage (no MoveRectangle analogue in the RFB
        // core; CopyRect exists but RRE-era viewers rarely negotiated it —
        // the baseline models the common path).
        for hint in desktop.take_scroll_hints() {
            if let Some(rec) = desktop.wm().get(hint.window) {
                let dst = Rect::new(hint.dst_left, hint.dst_top, hint.src.width, hint.src.height);
                let union = hint.src.union(&dst);
                self.pending.add(Rect::new(
                    rec.rect.left + union.left,
                    rec.rect.top + union.top,
                    union.width,
                    union.height,
                ));
            }
        }
        for d in desktop.take_damage() {
            if let Some(rec) = desktop.wm().get(d.window) {
                self.pending.add(Rect::new(
                    rec.rect.left + d.rect.left,
                    rec.rect.top + d.rect.top,
                    d.rect.width,
                    d.rect.height,
                ));
            }
        }
    }

    /// The client asked for an update.
    pub fn on_update_request(&mut self) {
        self.outstanding_request = true;
    }

    /// Service the client: if a request is outstanding and damage exists,
    /// send one FramebufferUpdate with the current pixels.
    pub fn service(&mut self, desktop: &Desktop, now_us: u64) {
        // Drain the user-space queue first.
        if !self.outq.is_empty() {
            let n = self.link.send(now_us, &self.outq);
            self.outq.drain(..n);
        }
        if !self.outstanding_request || self.pending.is_empty() || !self.outq.is_empty() {
            return;
        }
        let frame = desktop.composite(false);
        let rects = self.pending.take();
        let mut msg = Vec::new();
        msg.extend_from_slice(&(rects.len() as u16).to_be_bytes());
        for r in rects {
            let Some(clipped) = r.intersect(&frame.bounds()) else {
                continue;
            };
            let crop = frame.crop(clipped).expect("clipped to bounds");
            encode_rect(&mut msg, clipped.left, clipped.top, &crop);
        }
        self.bytes_sent += msg.len() as u64;
        self.updates_sent += 1;
        let n = self.link.send(now_us, &msg);
        if n < msg.len() {
            self.outq.extend_from_slice(&msg[n..]);
        }
        self.outstanding_request = false;
    }

    /// Bytes arriving at the client by `now_us`.
    pub fn poll(&mut self, now_us: u64) -> Vec<u8> {
        self.link.recv(now_us)
    }
}

/// VNC-style client state.
#[derive(Debug)]
pub struct VncClient {
    framebuffer: Image,
    buf: Vec<u8>,
    /// Completed updates applied.
    pub updates_applied: u64,
}

impl VncClient {
    /// New client with a framebuffer of the server's desktop size.
    pub fn new(width: u32, height: u32) -> Self {
        VncClient {
            framebuffer: Image::filled(width, height, [0, 40, 80, 255])
                .expect("desktop dims bounded"),
            buf: Vec::new(),
            updates_applied: 0,
        }
    }

    /// The client's current view.
    pub fn framebuffer(&self) -> &Image {
        &self.framebuffer
    }

    /// Ingest server bytes; returns true when at least one complete update
    /// was applied (time to send the next request).
    pub fn ingest(&mut self, bytes: &[u8]) -> bool {
        self.buf.extend_from_slice(bytes);
        let mut applied = false;
        while self.try_parse_update().is_some() {
            applied = true;
            self.updates_applied += 1;
        }
        applied
    }

    fn try_parse_update(&mut self) -> Option<()> {
        if self.buf.len() < 2 {
            return None;
        }
        let nrects = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        let mut off = 2usize;
        let mut rects = Vec::with_capacity(nrects);
        for _ in 0..nrects {
            if self.buf.len() < off + 12 {
                return None;
            }
            let x = u32::from_be_bytes(self.buf[off..off + 4].try_into().expect("4 bytes"));
            let y = u32::from_be_bytes(self.buf[off + 4..off + 8].try_into().expect("4 bytes"));
            let len = u32::from_be_bytes(self.buf[off + 8..off + 12].try_into().expect("4 bytes"))
                as usize;
            if self.buf.len() < off + 12 + len {
                return None;
            }
            let body = &self.buf[off + 12..off + 12 + len];
            let img = rle::decode(body).ok()?;
            rects.push((x, y, img));
            off += 12 + len;
        }
        for (x, y, img) in rects {
            self.framebuffer.blit(&img, x, y);
        }
        self.buf.drain(..off);
        Some(())
    }
}

/// One server+client pair over a link, with the request/response pump.
#[derive(Debug)]
pub struct VncSession {
    /// Server side.
    pub server: VncServer,
    /// Client side.
    pub client: VncClient,
}

impl VncSession {
    /// Create a session for a desktop of the given size.
    pub fn new(width: u32, height: u32, link: TcpConfig) -> Self {
        VncSession {
            server: VncServer::new(link),
            client: VncClient::new(width, height),
        }
    }

    /// One tick: capture, service, deliver, re-request.
    pub fn step(&mut self, desktop: &mut Desktop, now_us: u64) {
        self.server.capture(desktop);
        self.server.service(desktop, now_us);
        let bytes = self.server.poll(now_us);
        if !bytes.is_empty() && self.client.ingest(&bytes) {
            // Client immediately requests the next update (continuous mode).
            self.server.on_update_request();
        }
    }

    /// Whether the client view equals the desktop composite.
    pub fn converged(&self, desktop: &Desktop) -> bool {
        *self.client.framebuffer() == desktop.composite(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Desktop, VncSession) {
        let mut d = Desktop::new(320, 240);
        d.create_window(1, Rect::new(20, 20, 100, 80), [220, 220, 220, 255]);
        let v = VncSession::new(320, 240, TcpConfig::default());
        (d, v)
    }

    #[test]
    fn initial_frame_converges() {
        let (mut d, mut v) = setup();
        for ms in 1..200u64 {
            v.step(&mut d, ms * 10_000);
            if v.converged(&d) {
                return;
            }
        }
        panic!("never converged");
    }

    #[test]
    fn window_move_costs_pixels() {
        let (mut d, mut v) = setup();
        for ms in 1..200u64 {
            v.step(&mut d, ms * 10_000);
            if v.converged(&d) {
                break;
            }
        }
        let before = v.server.bytes_sent;
        let win = d.wm().records()[0].id;
        d.move_window(win, 150, 100);
        for ms in 200..500u64 {
            v.step(&mut d, ms * 10_000);
            if v.converged(&d) {
                break;
            }
        }
        assert!(v.converged(&d));
        let cost = v.server.bytes_sent - before;
        // Moving a 100x80 window re-sends old + new pixel areas (RLE
        // compresses the flat test window hard, but it is still an order of
        // magnitude more than a WindowManagerInfo's 24-byte record).
        assert!(cost > 400, "window move cost {cost} bytes");
    }

    #[test]
    fn one_update_per_request() {
        let (mut d, mut v) = setup();
        // Never acknowledge: only one update may be sent.
        v.server.capture(&mut d);
        v.server.service(&d, 10_000);
        v.server.capture(&mut d);
        d.fill(
            d.wm().records()[0].id,
            Rect::new(0, 0, 10, 10),
            [1, 2, 3, 255],
        );
        v.server.capture(&mut d);
        v.server.service(&d, 20_000);
        assert_eq!(
            v.server.updates_sent, 1,
            "client-pull: no request, no update"
        );
    }

    #[test]
    fn updates_survive_byte_fragmentation() {
        let (mut d, mut v) = setup();
        v.server.capture(&mut d);
        v.server.service(&d, 1_000);
        // Deliver the stream one byte at a time.
        let bytes = v.server.poll(10_000_000);
        assert!(!bytes.is_empty());
        let mut any = false;
        for b in bytes {
            any |= v.client.ingest(&[b]);
        }
        assert!(any);
        assert!(v.converged(&d));
    }
}
