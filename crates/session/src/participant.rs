//! The participant: reorder → reassemble → decode → render, plus HIP
//! transmission and loss recovery.

use std::collections::HashMap;

use adshare_bfcp::FloorClient;
use adshare_codec::{Codec, CodecRegistry, Image, Rect};
use adshare_obs::{Counter, EventKind, Gauge, Histogram, Obs};
use adshare_remoting::hip::HipMessage;
use adshare_remoting::message::RemotingMessage;
use adshare_remoting::packetizer::{HipPacketizer, RemotingDepacketizer};
use adshare_remoting::WindowId as WireWindowId;
use adshare_rtp::framing::Deframer;
use adshare_rtp::packet::RtpPacket;
use adshare_rtp::reorder::ReorderBuffer;
use adshare_rtp::rtcp::{encode_compound, GenericNack, PictureLossIndication, RtcpPacket};
use adshare_rtp::session::{RtpReceiver, RtpSender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::Layout;

/// One shared window as the participant tracks it.
#[derive(Debug, Clone)]
struct PWindow {
    /// Geometry at the AH, from the latest WindowManagerInfo.
    ah_rect: Rect,
    /// Group id from the WMI.
    group: u8,
    /// Local content buffer (window-sized).
    content: Image,
}

/// Participant statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParticipantStats {
    /// Remoting messages applied, by rough class.
    pub wmi_applied: u64,
    /// RegionUpdates applied.
    pub regions_applied: u64,
    /// MoveRectangles applied.
    pub moves_applied: u64,
    /// MousePointerInfos applied.
    pub pointers_applied: u64,
    /// Updates whose payload failed to decode.
    pub decode_errors: u64,
    /// PLIs sent.
    pub plis_sent: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// Sequence numbers requested via NACK.
    pub seqs_nacked: u64,
}

/// The participant (Figure 1's client side).
#[derive(Debug)]
pub struct Participant {
    user_id: u16,
    ssrc: u32,
    layout: Layout,
    windows: HashMap<u16, PWindow>,
    /// z-order, bottom first, from the latest WMI.
    z_order: Vec<u16>,
    /// Local positions assigned by the layout policy.
    local_pos: HashMap<u16, (u32, u32)>,
    reorder: ReorderBuffer,
    depacketizer: RemotingDepacketizer,
    deframer: Deframer,
    receiver: RtpReceiver,
    registry: CodecRegistry,
    hip: HipPacketizer,
    floor: FloorClient,
    /// Pointer position + icon (explicit model).
    pointer: Option<((u32, u32), Option<Image>)>,
    /// Whether retransmissions were negotiated (send NACKs).
    nack_enabled: bool,
    /// 90 kHz time of the last PLI, for the resync retry timer.
    last_pli_ticks: u64,
    /// NACK-storm avoidance (§5.3.2: multicast participants "MAY take
    /// necessary precautions to prevent NACK storms such as waiting random
    /// amount of time"): maximum random backoff in ticks (0 = immediate).
    nack_backoff_ticks: u64,
    /// Deterministic jitter source for the backoff.
    backoff_rng: StdRng,
    /// NACKs waiting out their backoff: (fire-at ticks, seqs still missing).
    pending_nacks: Vec<(u64, Vec<u16>)>,
    /// NACKs suppressed because the repair arrived first.
    nacks_suppressed: u64,
    /// Retry state per NACKed-but-undelivered sequence: (last NACK ticks,
    /// attempts). A lost retransmission would otherwise wedge delivery —
    /// `take_missing` reports each gap once, and the coarse gap timeout
    /// only fires when the stream goes quiet.
    nack_retry: HashMap<u16, (u64, u8)>,
    /// Last RR emission time (ticks); 0 = never.
    last_rr_ticks: u64,
    /// Latest sender-report mapping from the AH: (sender clock µs, RTP ts).
    /// RFC 3550's wallclock↔timestamp anchor; lets the viewer compute true
    /// capture→display latency.
    sr_anchor: Option<(u64, u32)>,
    /// Capture→display latencies of applied updates, µs (bounded buffer).
    latencies_us: Vec<u64>,
    /// Timestamp of the RTP packet currently being reassembled/applied.
    current_pkt_ts: u32,
    /// Outbound RTCP queued for the next tick.
    rtcp_out: Vec<RtcpPacket>,
    /// Whether we have ever received a WMI (sync achieved).
    synced: bool,
    stats: ParticipantStats,
    media_ssrc: u32,
    /// RTP media packets ingested (datagram or stream), live counter so it
    /// can be adopted into an observability registry.
    rx_packets: Counter,
    /// Observability bundle when attached; completes frame traces the AH
    /// registered at packetize time.
    obs: Option<Obs>,
    /// Flight-recorder actor id (the participant index from `attach_obs`).
    obs_actor: u16,
    /// Last tick observed, so events from callers without a clock
    /// (e.g. `request_refresh`) still carry a plausible timestamp.
    last_ticks: u64,
    /// Reassembly copy counters already reported to the recorder.
    last_copy_stats: (u64, u64),
    /// Dropped-partial count already reported to the recorder.
    last_dropped: u64,
    /// End-to-end latency histogram (`participant.{i}.frame_latency_us`).
    frame_latency: Option<Histogram>,
    /// Registry mirrors of the latest RR: (cumulative lost, highest seq).
    rr_gauges: Option<(Gauge, Gauge)>,
}

impl Participant {
    /// Create a participant. `nack_enabled` mirrors the SDP
    /// `retransmissions` parameter.
    pub fn new(user_id: u16, layout: Layout, nack_enabled: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ssrc = 0x50000000 | user_id as u32;
        Participant {
            user_id,
            ssrc,
            layout,
            windows: HashMap::new(),
            z_order: Vec::new(),
            local_pos: HashMap::new(),
            reorder: ReorderBuffer::new(256),
            depacketizer: RemotingDepacketizer::new(),
            deframer: Deframer::default(),
            receiver: RtpReceiver::new(),
            registry: CodecRegistry::default(),
            hip: HipPacketizer::new(RtpSender::new(ssrc ^ 0xffff, 100, &mut rng), 1400),
            floor: FloorClient::new(1, user_id, 0),
            pointer: None,
            nack_enabled,
            last_pli_ticks: 0,
            nack_backoff_ticks: 0,
            backoff_rng: StdRng::seed_from_u64(seed ^ 0x6e61636b),
            pending_nacks: Vec::new(),
            nacks_suppressed: 0,
            nack_retry: HashMap::new(),
            last_rr_ticks: 0,
            sr_anchor: None,
            latencies_us: Vec::new(),
            current_pkt_ts: 0,
            rtcp_out: Vec::new(),
            synced: false,
            stats: ParticipantStats::default(),
            media_ssrc: 0,
            rx_packets: Counter::new(),
            obs: None,
            obs_actor: 0,
            last_ticks: 0,
            last_copy_stats: (0, 0),
            last_dropped: 0,
            frame_latency: None,
            rr_gauges: None,
        }
    }

    /// Attach an observability bundle: export this participant's receive
    /// counters and RR mirrors under `participant.{index}.*`, record
    /// end-to-end latency into `participant.{index}.frame_latency_us`, and
    /// complete the frame traces the AH registers at packetize time.
    pub fn attach_obs(&mut self, obs: &Obs, index: usize) {
        let prefix = format!("participant.{index}");
        obs.registry
            .adopt_counter(&format!("{prefix}.rtp_rx_packets"), &self.rx_packets);
        self.frame_latency = Some(
            obs.registry
                .histogram(&format!("{prefix}.frame_latency_us")),
        );
        self.rr_gauges = Some((
            obs.registry.gauge(&format!("{prefix}.rtcp_cum_lost")),
            obs.registry.gauge(&format!("{prefix}.rtcp_highest_seq")),
        ));
        self.obs_actor = index as u16;
        self.obs = Some(obs.clone());
    }

    /// Record a flight-recorder event stamped with the last observed tick.
    fn rec(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(obs) = &self.obs {
            obs.event(self.last_ticks * 100 / 9, self.obs_actor, kind, a, b);
        }
    }

    /// Report newly abandoned partial reassemblies to the recorder.
    fn note_fragment_drops(&mut self) {
        let d = self.depacketizer.dropped_partials();
        if d > self.last_dropped {
            self.rec(EventKind::FragmentDrop, d - self.last_dropped, 0);
            self.last_dropped = d;
        }
    }

    /// This participant's user id.
    pub fn user_id(&self) -> u16 {
        self.user_id
    }

    /// Statistics so far.
    pub fn stats(&self) -> ParticipantStats {
        self.stats
    }

    /// Whether initial state (a WindowManagerInfo) has arrived.
    pub fn synced(&self) -> bool {
        self.synced
    }

    /// The BFCP floor client.
    pub fn floor_mut(&mut self) -> &mut FloorClient {
        &mut self.floor
    }

    /// The BFCP floor client, read-only.
    pub fn floor(&self) -> &FloorClient {
        &self.floor
    }

    /// Queue a PLI (join, or unrecoverable loss) for the next RTCP flush.
    pub fn request_refresh(&mut self) {
        self.rtcp_out.push(RtcpPacket::Pli(PictureLossIndication {
            sender_ssrc: self.ssrc,
            media_ssrc: self.media_ssrc,
        }));
        self.stats.plis_sent += 1;
        self.rec(EventKind::PliSent, self.stats.plis_sent, 0);
    }

    /// Periodic housekeeping. A joiner whose initial WindowManagerInfo was
    /// lost (or arrived hopelessly out of order) would otherwise wait
    /// forever; §5.3.1 lets it simply ask again, so an unsynced participant
    /// re-sends its PLI every second. Also fires backed-off NACKs whose
    /// timer expired and emits the periodic RTCP receiver report.
    pub fn tick(&mut self, now_ticks: u64) {
        self.last_ticks = now_ticks;
        const RESYNC_INTERVAL_TICKS: u64 = 90_000; // 1 s at 90 kHz
        if !self.synced && now_ticks.saturating_sub(self.last_pli_ticks) >= RESYNC_INTERVAL_TICKS {
            self.request_refresh();
            self.last_pli_ticks = now_ticks;
        }
        // Fire due NACKs.
        if !self.pending_nacks.is_empty() {
            let due: Vec<Vec<u16>> = {
                let mut due = Vec::new();
                self.pending_nacks.retain(|(at, seqs)| {
                    if *at <= now_ticks {
                        due.push(seqs.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for seqs in due {
                self.emit_nack(&seqs);
            }
        }
        self.retry_stale_nacks(now_ticks);
        // Periodic receiver report (RFC 3550 §6.4.2) once media flows.
        const RR_INTERVAL_TICKS: u64 = 90_000 * 2; // ~2 s
        if self.receiver.received() > 0
            && now_ticks.saturating_sub(self.last_rr_ticks) >= RR_INTERVAL_TICKS
        {
            let block = self.receiver.report_block(self.media_ssrc);
            if let Some((lost_g, highest_g)) = &self.rr_gauges {
                lost_g.set(block.cumulative_lost as i64);
                highest_g.set(block.highest_seq as i64);
            }
            self.rtcp_out.push(RtcpPacket::ReceiverReport(
                adshare_rtp::rtcp::ReceiverReport {
                    ssrc: self.ssrc,
                    reports: vec![block],
                },
            ));
            // RFC 3550 §6.1: compounds carry an SDES CNAME.
            self.rtcp_out.push(RtcpPacket::Sdes(
                adshare_rtp::rtcp::SourceDescription::cname(
                    self.ssrc,
                    &format!("participant-{}@adshare", self.user_id),
                ),
            ));
            self.last_rr_ticks = now_ticks;
        }
    }

    /// Configure NACK-storm backoff (§5.3.2): NACKs wait a uniform random
    /// 0..=`max_ticks` delay and are suppressed if the repair (triggered by
    /// another group member's NACK) arrives first. Zero disables the delay.
    pub fn set_nack_backoff(&mut self, max_ticks: u64) {
        self.nack_backoff_ticks = max_ticks;
    }

    /// NACKs suppressed by the backoff (repair arrived before the timer).
    pub fn nacks_suppressed(&self) -> u64 {
        self.nacks_suppressed
    }

    /// RFC 5761 demultiplexing: RTCP packet types 200–206 occupy the byte
    /// where RTP carries marker+PT; the dynamic PTs this protocol uses
    /// (96–127) can never collide.
    fn is_rtcp(datagram: &[u8]) -> bool {
        datagram.len() >= 2 && (200..=206).contains(&datagram[1])
    }

    /// Process an RTCP packet from the AH (sender reports).
    fn handle_downstream_rtcp(&mut self, datagram: &[u8]) {
        let Ok(packets) = adshare_rtp::rtcp::decode_compound(datagram) else {
            return;
        };
        for pkt in packets {
            if let RtcpPacket::SenderReport(sr) = pkt {
                self.sr_anchor = Some((sr.ntp, sr.rtp_ts));
            }
        }
    }

    /// Ingest one UDP datagram carrying a remoting RTP packet (or, per
    /// RFC 5761 rtcp-mux, an RTCP sender report).
    pub fn handle_datagram(&mut self, datagram: &[u8], now_ticks: u64) {
        if Self::is_rtcp(datagram) {
            self.handle_downstream_rtcp(datagram);
            return;
        }
        let Ok(pkt) = RtpPacket::decode(datagram) else {
            return;
        };
        self.last_ticks = now_ticks;
        self.media_ssrc = pkt.header.ssrc;
        let seq = pkt.header.sequence;
        self.rx_packets.inc();
        self.rec(EventKind::RtpRx, seq as u64, pkt.payload.len() as u64);
        self.receiver.on_packet(&pkt, now_ticks);
        self.reorder.ingest(pkt);
        self.drain_ready(now_ticks);
        // An arrival repairs any pending backoff NACK that covers it.
        if self.nack_backoff_ticks > 0 {
            for (_, seqs) in &mut self.pending_nacks {
                let before = seqs.len();
                seqs.retain(|&s| s != seq);
                self.nacks_suppressed += (before - seqs.len()) as u64;
            }
            self.pending_nacks.retain(|(_, seqs)| !seqs.is_empty());
        }
        // Gaps → NACK (immediately, or after a random backoff).
        let missing = self.reorder.take_missing();
        if !missing.is_empty() && self.nack_enabled {
            if self.nack_backoff_ticks == 0 {
                self.emit_nack(&missing);
            } else {
                let delay = self.backoff_rng.gen_range(0..=self.nack_backoff_ticks);
                self.pending_nacks.push((now_ticks + delay, missing));
            }
        }
    }

    /// NACK retry cadence: a repair that has not arrived this long after
    /// the request is presumed lost and re-requested (≈250 ms at 90 kHz —
    /// comfortably above any simulated RTT, far below the gap timeout).
    const NACK_RETRY_TICKS: u64 = 22_500;
    /// Retry budget per sequence; past it the gap is left to the overflow /
    /// gap-timeout recovery path so an unservable NACK can't loop forever.
    const NACK_RETRY_LIMIT: u8 = 4;

    /// Re-NACK gaps whose repair never arrived. `take_missing` reports
    /// each gap exactly once, so without this a single lost retransmission
    /// stalls in-order delivery until the stream goes quiet enough for the
    /// session-layer gap timeout — seconds of staleness under a steady
    /// workload (the churn scenario caught exactly that).
    fn retry_stale_nacks(&mut self, now_ticks: u64) {
        if !self.nack_enabled || self.nack_retry.is_empty() {
            return;
        }
        let blocking = self.reorder.missing_now(64);
        // Delivered (or skipped-past) sequences no longer need retry state.
        self.nack_retry.retain(|seq, _| blocking.contains(seq));
        let mut again: Vec<u16> = Vec::new();
        for seq in blocking {
            if let Some((last, attempts)) = self.nack_retry.get_mut(&seq) {
                if *attempts < Self::NACK_RETRY_LIMIT
                    && now_ticks.saturating_sub(*last) >= Self::NACK_RETRY_TICKS
                {
                    *last = now_ticks;
                    *attempts += 1;
                    again.push(seq);
                }
            }
        }
        if !again.is_empty() {
            self.emit_nack(&again);
        }
    }

    fn emit_nack(&mut self, missing: &[u16]) {
        self.stats.nacks_sent += 1;
        self.stats.seqs_nacked += missing.len() as u64;
        for &seq in missing {
            self.nack_retry.entry(seq).or_insert((self.last_ticks, 0));
        }
        self.rec(
            EventKind::NackSent,
            missing.len() as u64,
            missing.first().copied().unwrap_or(0) as u64,
        );
        self.rtcp_out.push(RtcpPacket::Nack(GenericNack::from_seqs(
            self.ssrc,
            self.media_ssrc,
            missing,
        )));
    }

    /// Ingest TCP stream bytes (RFC 4571 framed remoting RTP, with RTCP
    /// sender reports multiplexed per RFC 5761).
    pub fn handle_stream(&mut self, bytes: &[u8], now_ticks: u64) {
        self.deframer.push(bytes);
        while let Ok(Some(frame)) = self.deframer.pop() {
            if Self::is_rtcp(&frame) {
                self.handle_downstream_rtcp(&frame);
                continue;
            }
            let Ok(pkt) = RtpPacket::decode(&frame) else {
                continue;
            };
            self.last_ticks = now_ticks;
            self.media_ssrc = pkt.header.ssrc;
            self.rx_packets.inc();
            self.rec(
                EventKind::RtpRx,
                pkt.header.sequence as u64,
                pkt.payload.len() as u64,
            );
            self.receiver.on_packet(&pkt, now_ticks);
            self.current_pkt_ts = pkt.header.timestamp;
            let (ssrc, seq) = (pkt.header.ssrc, pkt.header.sequence);
            // TCP is ordered and reliable: bypass the reorder buffer.
            if let Ok(Some(msg)) = self.depacketizer.feed(&pkt) {
                self.apply_reassembled(msg, ssrc, seq, now_ticks);
            }
        }
        self.note_fragment_drops();
    }

    /// Record capture→display latency for the update that just completed,
    /// using the latest sender-report anchor.
    fn record_latency(&mut self, now_ticks: u64) {
        let Some((sr_us, sr_ts)) = self.sr_anchor else {
            return;
        };
        // Wrapping RTP-timestamp distance from the anchor (90 kHz).
        let dt_ticks = self.current_pkt_ts.wrapping_sub(sr_ts) as i32 as i64;
        let capture_us = sr_us as i64 + dt_ticks * 100 / 9;
        let now_us = (now_ticks * 100 / 9) as i64;
        let lat = (now_us - capture_us).max(0) as u64;
        if self.latencies_us.len() < 100_000 {
            self.latencies_us.push(lat);
        }
    }

    /// Capture→display latency percentiles of applied updates, in
    /// microseconds: (p50, p95, max). `None` until an SR anchor and at
    /// least one update have arrived.
    pub fn latency_summary_us(&self) -> Option<(u64, u64, u64)> {
        if self.latencies_us.is_empty() {
            return None;
        }
        let mut v = self.latencies_us.clone();
        v.sort_unstable();
        let p = |q: f64| v[((v.len() - 1) as f64 * q) as usize];
        Some((p(0.50), p(0.95), *v.last().expect("non-empty")))
    }

    /// Give up on a reorder gap (retransmission timed out): skip it,
    /// drop any partial message, and ask for a full refresh.
    pub fn recover_from_gap(&mut self) {
        if self.reorder.skip_gap() {
            self.depacketizer.reset();
            self.note_fragment_drops();
            self.drain_ready(self.last_rr_ticks);
            self.request_refresh();
        }
    }

    /// Number of packets parked in the reorder buffer (for timeout logic).
    pub fn reorder_held(&self) -> usize {
        self.reorder.held_len()
    }

    /// Announce departure (RFC 3550 §6.6): queue a BYE for the next RTCP
    /// flush. The session layer sends it when the participant leaves.
    pub fn leave(&mut self) {
        self.rtcp_out.push(RtcpPacket::Bye(adshare_rtp::rtcp::Bye {
            sources: vec![self.ssrc],
            reason: Some("leaving session".to_owned()),
        }));
    }

    /// Take outbound RTCP compound bytes (empty when nothing to send).
    pub fn take_rtcp(&mut self) -> Option<Vec<u8>> {
        if self.rtcp_out.is_empty() {
            return None;
        }
        let packets = std::mem::take(&mut self.rtcp_out);
        Some(encode_compound(&packets))
    }

    /// Build HIP RTP datagrams for a user event at `now_ticks`.
    pub fn send_hip(&mut self, msg: &HipMessage, now_ticks: u64) -> Vec<Vec<u8>> {
        match self.hip.packetize(msg, now_ticks as u32) {
            Ok(pkts) => pkts.iter().map(|p| p.encode()).collect(),
            Err(_) => Vec::new(),
        }
    }

    fn drain_ready(&mut self, now_ticks: u64) {
        while let Some(pkt) = self.reorder.pop_ready() {
            self.current_pkt_ts = pkt.header.timestamp;
            let (ssrc, seq) = (pkt.header.ssrc, pkt.header.sequence);
            match self.depacketizer.feed(&pkt) {
                Ok(Some(msg)) => self.apply_reassembled(msg, ssrc, seq, now_ticks),
                Ok(None) => {}
                Err(_) => {
                    self.depacketizer.reset();
                    self.note_fragment_drops();
                }
            }
        }
    }

    /// Apply one reassembled message, recording latency and — when an
    /// observability bundle is attached — completing the frame trace keyed
    /// by the final fragment's `(ssrc, seq)`.
    fn apply_reassembled(&mut self, msg: RemotingMessage, ssrc: u32, seq: u16, now_ticks: u64) {
        self.record_latency(now_ticks);
        self.rec(EventKind::Reassembled, seq as u64, 0);
        let (allocs, copied) = self.depacketizer.copy_stats();
        if (allocs, copied) != self.last_copy_stats {
            self.rec(
                EventKind::ReassemblyCopy,
                allocs - self.last_copy_stats.0,
                copied - self.last_copy_stats.1,
            );
            self.last_copy_stats = (allocs, copied);
        }
        let traced = self.obs.is_some() && matches!(msg, RemotingMessage::RegionUpdate(_));
        if !traced {
            self.apply(msg);
            return;
        }
        let decode_start = std::time::Instant::now();
        self.apply(msg);
        let decode_us = decode_start.elapsed().as_micros() as u64;
        let now_us = now_ticks * 100 / 9; // 90 kHz ticks → µs
        if let Some(obs) = &self.obs {
            if let Some(stages) = obs.complete_frame(ssrc, seq, now_us, decode_us) {
                if let Some(h) = &self.frame_latency {
                    h.record(stages.total_us);
                }
                // Virtual-time staleness only (damage → delivered): the
                // health engine's windowed staleness rule consumes this,
                // and excluding wall-clock encode/decode keeps verdicts
                // deterministic under a seeded simulation.
                self.rec(
                    EventKind::FrameDelivered,
                    stages.damage_us + stages.transport_us,
                    seq as u64,
                );
            }
        }
    }

    /// Apply one remoting message to local state.
    pub fn apply(&mut self, msg: RemotingMessage) {
        match msg {
            RemotingMessage::WindowManagerInfo(wmi) => {
                self.stats.wmi_applied += 1;
                self.synced = true;
                let ids: Vec<u16> = wmi.windows.iter().map(|w| w.window_id.0).collect();
                // "MUST close this window after receiving a
                // WindowManagerInfo message which does not contain this
                // WindowID."
                self.windows.retain(|id, _| ids.contains(id));
                self.local_pos.retain(|id, _| ids.contains(id));
                self.z_order = ids;
                for w in &wmi.windows {
                    let rect = Rect::new(w.left, w.top, w.width.max(1), w.height.max(1));
                    match self.windows.get_mut(&w.window_id.0) {
                        Some(existing) => {
                            // "The participant MUST keep the existing window
                            // image after a resize and relocation."
                            existing.ah_rect = rect;
                            existing.group = w.group_id;
                            if existing.content.width() != rect.width
                                || existing.content.height() != rect.height
                            {
                                let mut grown =
                                    Image::filled(rect.width, rect.height, [0, 0, 0, 255])
                                        .expect("window dims bounded");
                                grown.blit(&existing.content, 0, 0);
                                existing.content = grown;
                            }
                        }
                        None => {
                            // "The participant MUST create a window for each
                            // new WindowID."
                            self.windows.insert(
                                w.window_id.0,
                                PWindow {
                                    ah_rect: rect,
                                    group: w.group_id,
                                    content: Image::filled(rect.width, rect.height, [0, 0, 0, 255])
                                        .expect("window dims bounded"),
                                },
                            );
                        }
                    }
                }
                self.assign_layout();
            }
            RemotingMessage::RegionUpdate(ru) => {
                let Some(win) = self.windows.get_mut(&ru.window_id.0) else {
                    return;
                };
                let Some(codec) = self.registry.get(ru.payload_type) else {
                    self.stats.decode_errors += 1;
                    return;
                };
                match codec.decode(&ru.payload) {
                    Ok(img) => {
                        // Absolute → window-local coordinates.
                        let lx = ru.left.saturating_sub(win.ah_rect.left);
                        let ly = ru.top.saturating_sub(win.ah_rect.top);
                        win.content.blit(&img, lx, ly);
                        self.stats.regions_applied += 1;
                    }
                    Err(_) => self.stats.decode_errors += 1,
                }
            }
            RemotingMessage::MoveRectangle(mv) => {
                let Some(win) = self.windows.get_mut(&mv.window_id.0) else {
                    return;
                };
                let src = Rect::new(
                    mv.src_left.saturating_sub(win.ah_rect.left),
                    mv.src_top.saturating_sub(win.ah_rect.top),
                    mv.width,
                    mv.height,
                );
                let dst_left = mv.dst_left.saturating_sub(win.ah_rect.left);
                let dst_top = mv.dst_top.saturating_sub(win.ah_rect.top);
                win.content.move_rect(src, dst_left, dst_top);
                self.stats.moves_applied += 1;
            }
            RemotingMessage::MousePointerInfo(mp) => {
                let icon = match &mp.image {
                    Some(bytes) => {
                        match self.registry.get(mp.payload_type).map(|c| c.decode(bytes)) {
                            Some(Ok(img)) => Some(img),
                            _ => {
                                self.stats.decode_errors += 1;
                                None
                            }
                        }
                    }
                    None => self.pointer.take().and_then(|(_, icon)| icon),
                };
                self.pointer = Some(((mp.left, mp.top), icon));
                self.stats.pointers_applied += 1;
            }
        }
    }

    /// Assign local window positions per the layout policy (Figures 3–5).
    fn assign_layout(&mut self) {
        match self.layout {
            Layout::Original => {
                for (&id, w) in &self.windows {
                    self.local_pos.insert(id, (w.ah_rect.left, w.ah_rect.top));
                }
            }
            Layout::Shifted { dx, dy } => {
                for (&id, w) in &self.windows {
                    let x = (w.ah_rect.left as i64 - dx).max(0) as u32;
                    let y = (w.ah_rect.top as i64 - dy).max(0) as u32;
                    self.local_pos.insert(id, (x, y));
                }
            }
            Layout::Packed { width, height } => {
                // Simple shelf packing in z-order; keeps every window fully
                // on screen where possible (participant 3, Figure 5).
                let mut x = 0u32;
                let mut y = 0u32;
                let mut shelf = 0u32;
                for id in &self.z_order {
                    let Some(w) = self.windows.get(id) else {
                        continue;
                    };
                    let ww = w.ah_rect.width.min(width);
                    let wh = w.ah_rect.height.min(height);
                    if x + ww > width {
                        x = 0;
                        y = (y + shelf).min(height.saturating_sub(1));
                        shelf = 0;
                    }
                    self.local_pos.insert(*id, (x, y));
                    x = (x + ww).min(width);
                    shelf = shelf.max(wh);
                }
            }
            Layout::GroupedPacked { width, height } => {
                // Pack group bounding boxes shelf-wise; within a group every
                // window keeps its offset from the group's bounding box, so
                // related windows (toolbars, dialogs) stay arranged (§4.1:
                // grouping MAY be used while relocating windows).
                let mut groups: Vec<(u8, Rect, Vec<u16>)> = Vec::new();
                for id in &self.z_order {
                    let Some(w) = self.windows.get(id) else {
                        continue;
                    };
                    // GroupID 0 = "no grouping": each such window is its own
                    // unit (§5.2.1).
                    let slot = if w.group != 0 {
                        groups.iter_mut().find(|(g, _, _)| *g == w.group)
                    } else {
                        None
                    };
                    match slot {
                        Some((_, bbox, ids)) => {
                            *bbox = bbox.union(&w.ah_rect);
                            ids.push(*id);
                        }
                        None => groups.push((w.group, w.ah_rect, vec![*id])),
                    }
                }
                let mut x = 0u32;
                let mut y = 0u32;
                let mut shelf = 0u32;
                for (_, bbox, ids) in groups {
                    let gw = bbox.width.min(width);
                    let gh = bbox.height.min(height);
                    if x + gw > width {
                        x = 0;
                        y = (y + shelf).min(height.saturating_sub(1));
                        shelf = 0;
                    }
                    for id in ids {
                        let Some(w) = self.windows.get(&id) else {
                            continue;
                        };
                        let ox = w.ah_rect.left - bbox.left;
                        let oy = w.ah_rect.top - bbox.top;
                        self.local_pos
                            .insert(id, ((x + ox).min(width), (y + oy).min(height)));
                    }
                    x = (x + gw).min(width);
                    shelf = shelf.max(gh);
                }
            }
        }
    }

    /// Locally raise a window to the top of this participant's stacking
    /// order without informing the AH (§4.1: "A participant MAY allow
    /// changing the z-order (i.e., stacking order) of windows locally,
    /// without changing the z-order in the AH"). The next WindowManagerInfo
    /// resets to AH order (the draft keeps the AH authoritative).
    pub fn raise_local(&mut self, id: u16) -> bool {
        let Some(pos) = self.z_order.iter().position(|&w| w == id) else {
            return false;
        };
        let moved = self.z_order.remove(pos);
        self.z_order.push(moved);
        true
    }

    /// The local position of a window.
    pub fn window_local_pos(&self, id: u16) -> Option<(u32, u32)> {
        self.local_pos.get(&id).copied()
    }

    /// The AH geometry of a window (from the latest WMI).
    pub fn window_ah_rect(&self, id: u16) -> Option<Rect> {
        self.windows.get(&id).map(|w| w.ah_rect)
    }

    /// A window's content buffer.
    pub fn window_content(&self, id: u16) -> Option<&Image> {
        self.windows.get(&id).map(|w| &w.content)
    }

    /// Window ids in z-order (bottom first).
    pub fn z_order(&self) -> &[u16] {
        &self.z_order
    }

    /// Current pointer position and icon, if the AH uses the explicit
    /// pointer model.
    pub fn pointer(&self) -> Option<(u32, u32)> {
        self.pointer.as_ref().map(|(pos, _)| *pos)
    }

    /// Render the participant's screen: windows at their local positions in
    /// z-order, optional pointer.
    pub fn render(&self, width: u32, height: u32) -> Image {
        let mut frame =
            Image::filled(width, height, [0, 40, 80, 255]).expect("render dims bounded");
        for id in &self.z_order {
            let (Some(w), Some(&(x, y))) = (self.windows.get(id), self.local_pos.get(id)) else {
                continue;
            };
            frame.blit(&w.content, x, y);
        }
        if let Some(((px, py), Some(icon))) = &self.pointer {
            // Translate pointer from AH coordinates into local coordinates
            // using the window under it (Original layout keeps it exact).
            let (lx, ly) = self.translate_point(*px, *py).unwrap_or((*px, *py));
            for dy in 0..icon.height() {
                for dx in 0..icon.width() {
                    let p = icon.pixel(dx, dy).expect("in bounds");
                    if p[3] != 0 {
                        frame.set_pixel(lx + dx, ly + dy, p);
                    }
                }
            }
        }
        frame
    }

    /// Render at native size, then scale the frame to fit a small screen
    /// (§4.2: "participant-side scaling can be used to optimize
    /// transmission of data to participants with a small screen" — here the
    /// scaling happens at the viewer, trading sharpness for fit without
    /// touching the protocol).
    pub fn render_scaled(
        &self,
        native_w: u32,
        native_h: u32,
        out_w: u32,
        out_h: u32,
    ) -> adshare_codec::Result<Image> {
        self.render(native_w, native_h).scale_to(out_w, out_h)
    }

    /// Translate an absolute AH point into local coordinates via the
    /// topmost window containing it.
    pub fn translate_point(&self, x: u32, y: u32) -> Option<(u32, u32)> {
        for id in self.z_order.iter().rev() {
            let (Some(w), Some(&(lx, ly))) = (self.windows.get(id), self.local_pos.get(id)) else {
                continue;
            };
            if w.ah_rect.contains(x, y) {
                return Some((lx + (x - w.ah_rect.left), ly + (y - w.ah_rect.top)));
            }
        }
        None
    }

    /// Translate a local point back into absolute AH coordinates (for HIP
    /// events from a participant using a non-original layout).
    pub fn untranslate_point(&self, lx: u32, ly: u32) -> Option<(WireWindowId, u32, u32)> {
        for id in self.z_order.iter().rev() {
            let (Some(w), Some(&(wx, wy))) = (self.windows.get(id), self.local_pos.get(id)) else {
                continue;
            };
            let local_rect = Rect::new(wx, wy, w.ah_rect.width, w.ah_rect.height);
            if local_rect.contains(lx, ly) {
                return Some((
                    WireWindowId(*id),
                    w.ah_rect.left + (lx - wx),
                    w.ah_rect.top + (ly - wy),
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adshare_remoting::message::{WindowManagerInfo, WindowRecord};
    use bytes::Bytes;

    fn wmi(records: &[(u16, u8, Rect)]) -> RemotingMessage {
        RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: records
                .iter()
                .map(|(id, g, r)| WindowRecord {
                    window_id: WireWindowId(*id),
                    group_id: *g,
                    left: r.left,
                    top: r.top,
                    width: r.width,
                    height: r.height,
                })
                .collect(),
        })
    }

    /// The Figure 2 scenario: windows A(1), C(2), B(3).
    fn figure2() -> RemotingMessage {
        wmi(&[
            (1, 1, Rect::new(220, 150, 350, 450)),
            (2, 2, Rect::new(850, 320, 160, 150)),
            (3, 1, Rect::new(450, 400, 350, 300)),
        ])
    }

    #[test]
    fn wmi_creates_windows_in_z_order() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        assert!(p.synced());
        assert_eq!(p.z_order(), &[1, 2, 3]);
        assert_eq!(p.window_ah_rect(1), Some(Rect::new(220, 150, 350, 450)));
    }

    #[test]
    fn missing_window_closed_on_next_wmi() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        p.apply(wmi(&[(1, 1, Rect::new(220, 150, 350, 450))]));
        assert_eq!(p.z_order(), &[1]);
        assert!(p.window_content(2).is_none());
        assert!(p.window_content(3).is_none());
    }

    #[test]
    fn figure3_original_layout() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        assert_eq!(p.window_local_pos(1), Some((220, 150)));
        assert_eq!(p.window_local_pos(2), Some((850, 320)));
        assert_eq!(p.window_local_pos(3), Some((450, 400)));
    }

    #[test]
    fn figure4_shifted_layout() {
        // Participant 2 shifts all windows 220 left and 150 up.
        let mut p = Participant::new(2, Layout::Shifted { dx: 220, dy: 150 }, true, 1);
        p.apply(figure2());
        assert_eq!(p.window_local_pos(1), Some((0, 0)));
        assert_eq!(p.window_local_pos(2), Some((630, 170)));
        assert_eq!(p.window_local_pos(3), Some((230, 250)));
        // Relations between windows are preserved.
        let (x1, y1) = p.window_local_pos(1).unwrap();
        let (x3, y3) = p.window_local_pos(3).unwrap();
        assert_eq!((x3 - x1, y3 - y1), (230, 250));
    }

    #[test]
    fn figure5_packed_layout_fits_small_screen() {
        let mut p = Participant::new(
            3,
            Layout::Packed {
                width: 640,
                height: 480,
            },
            true,
            1,
        );
        p.apply(figure2());
        for id in [1u16, 2, 3] {
            let (x, y) = p.window_local_pos(id).unwrap();
            assert!(x < 640 && y < 480, "window {id} at ({x},{y})");
        }
        // Z-order preserved ("all participants preserve the z-order").
        assert_eq!(p.z_order(), &[1, 2, 3]);
    }

    #[test]
    fn region_update_lands_in_window_local_coords() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        let img = Image::filled(10, 10, [255, 0, 0, 255]).unwrap();
        let payload = {
            use adshare_codec::codec::{AnyCodec, Codec};
            AnyCodec::new(adshare_codec::CodecKind::Png).encode(&img)
        };
        p.apply(RemotingMessage::RegionUpdate(
            adshare_remoting::message::RegionUpdate {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::PNG,
                left: 230, // absolute; window 1 is at 220,150
                top: 160,
                payload: Bytes::from(payload),
            },
        ));
        let content = p.window_content(1).unwrap();
        assert_eq!(content.pixel(10, 10), Some([255, 0, 0, 255]));
        assert_eq!(content.pixel(9, 10), Some([0, 0, 0, 255]));
        assert_eq!(p.stats().regions_applied, 1);
    }

    #[test]
    fn move_rectangle_scrolls_content() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(wmi(&[(1, 0, Rect::new(100, 100, 50, 50))]));
        // Paint a marker at local (0, 10) via absolute coords.
        let img = Image::filled(50, 10, [9, 9, 9, 255]).unwrap();
        let payload = {
            use adshare_codec::codec::{AnyCodec, Codec};
            AnyCodec::new(adshare_codec::CodecKind::Png).encode(&img)
        };
        p.apply(RemotingMessage::RegionUpdate(
            adshare_remoting::message::RegionUpdate {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::PNG,
                left: 100,
                top: 110,
                payload: Bytes::from(payload),
            },
        ));
        // Move it up by 10 (absolute coordinates).
        p.apply(RemotingMessage::MoveRectangle(
            adshare_remoting::message::MoveRectangle {
                window_id: WireWindowId(1),
                src_left: 100,
                src_top: 110,
                width: 50,
                height: 10,
                dst_left: 100,
                dst_top: 100,
            },
        ));
        let content = p.window_content(1).unwrap();
        assert_eq!(content.pixel(0, 0), Some([9, 9, 9, 255]));
    }

    #[test]
    fn resize_keeps_existing_image() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(wmi(&[(1, 0, Rect::new(0, 0, 20, 20))]));
        let img = Image::filled(20, 20, [5, 5, 5, 255]).unwrap();
        let payload = {
            use adshare_codec::codec::{AnyCodec, Codec};
            AnyCodec::new(adshare_codec::CodecKind::Png).encode(&img)
        };
        p.apply(RemotingMessage::RegionUpdate(
            adshare_remoting::message::RegionUpdate {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::PNG,
                left: 0,
                top: 0,
                payload: Bytes::from(payload),
            },
        ));
        // Resize larger: existing pixels must remain.
        p.apply(wmi(&[(1, 0, Rect::new(0, 0, 40, 40))]));
        let content = p.window_content(1).unwrap();
        assert_eq!(content.width(), 40);
        assert_eq!(content.pixel(10, 10), Some([5, 5, 5, 255]));
        // Relocation alone must not touch content.
        p.apply(wmi(&[(1, 0, Rect::new(300, 300, 40, 40))]));
        assert_eq!(
            p.window_content(1).unwrap().pixel(10, 10),
            Some([5, 5, 5, 255])
        );
        assert_eq!(p.window_local_pos(1), Some((300, 300)));
    }

    #[test]
    fn pointer_info_coords_only_keeps_icon() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        let icon = Image::filled(4, 4, [1, 2, 3, 255]).unwrap();
        let encoded = {
            use adshare_codec::codec::{AnyCodec, Codec};
            AnyCodec::new(adshare_codec::CodecKind::Raw).encode(&icon)
        };
        p.apply(RemotingMessage::MousePointerInfo(
            adshare_remoting::message::MousePointerInfo {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::RAW,
                left: 300,
                top: 200,
                image: Some(Bytes::from(encoded)),
            },
        ));
        assert_eq!(p.pointer(), Some((300, 200)));
        // Coords-only update: "the participant MUST move the existing
        // pointer image to the given coordinates".
        p.apply(RemotingMessage::MousePointerInfo(
            adshare_remoting::message::MousePointerInfo {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::RAW,
                left: 310,
                top: 210,
                image: None,
            },
        ));
        assert_eq!(p.pointer(), Some((310, 210)));
        // Icon visible in the render.
        let frame = p.render(1280, 1024);
        assert_eq!(frame.pixel(310, 210), Some([1, 2, 3, 255]));
    }

    #[test]
    fn translate_and_untranslate_round_trip() {
        let mut p = Participant::new(2, Layout::Shifted { dx: 220, dy: 150 }, true, 1);
        p.apply(figure2());
        // A point inside window 3 (at 450,400 AH; locally at 230,250).
        let (lx, ly) = p.translate_point(500, 450).unwrap();
        assert_eq!((lx, ly), (280, 300));
        let (win, ax, ay) = p.untranslate_point(lx, ly).unwrap();
        assert_eq!(win.0, 3);
        assert_eq!((ax, ay), (500, 450));
    }

    #[test]
    fn unknown_window_update_ignored() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        p.apply(RemotingMessage::RegionUpdate(
            adshare_remoting::message::RegionUpdate {
                window_id: WireWindowId(99),
                payload_type: adshare_codec::codec::default_pt::PNG,
                left: 0,
                top: 0,
                payload: Bytes::from_static(b"junk"),
            },
        ));
        assert_eq!(p.stats().regions_applied, 0);
    }

    #[test]
    fn corrupt_payload_counted_not_fatal() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        p.apply(figure2());
        p.apply(RemotingMessage::RegionUpdate(
            adshare_remoting::message::RegionUpdate {
                window_id: WireWindowId(1),
                payload_type: adshare_codec::codec::default_pt::PNG,
                left: 220,
                top: 150,
                payload: Bytes::from_static(b"definitely not a png"),
            },
        ));
        assert_eq!(p.stats().decode_errors, 1);
    }

    #[test]
    fn grouped_packed_layout_keeps_group_geometry() {
        // Figure 2's windows: A (group 1), C (group 2), B (group 1).
        // In GroupedPacked, A and B keep their relative AH offsets.
        let mut p = Participant::new(
            4,
            Layout::GroupedPacked {
                width: 800,
                height: 800,
            },
            true,
            1,
        );
        p.apply(figure2());
        let (ax, ay) = p.window_local_pos(1).unwrap(); // A
        let (bx, by) = p.window_local_pos(3).unwrap(); // B
                                                       // AH offsets: B - A = (450-220, 400-150) = (230, 250).
        assert_eq!(
            (bx - ax, by - ay),
            (230, 250),
            "intra-group geometry preserved"
        );
        // C (group 2) packs independently and fits the screen.
        let (cx, cy) = p.window_local_pos(2).unwrap();
        assert!(cx < 800 && cy < 800);
        // Group-1 bbox is 580 wide; C cannot share the first shelf at x<800
        // unless it fits: 580+160=740 ≤ 800, so it does — same shelf.
        assert_eq!(cy, 0);
    }

    #[test]
    fn local_z_order_override() {
        let mut p = Participant::new(5, Layout::Original, true, 1);
        p.apply(figure2());
        assert_eq!(p.z_order(), &[1, 2, 3]);
        assert!(p.raise_local(1));
        assert_eq!(p.z_order(), &[2, 3, 1], "window 1 raised locally");
        assert!(!p.raise_local(99), "unknown window");
        // A fresh WMI re-asserts AH order.
        p.apply(figure2());
        assert_eq!(p.z_order(), &[1, 2, 3]);
    }

    #[test]
    fn render_scaled_fits_small_screens() {
        let mut p = Participant::new(3, Layout::Original, true, 1);
        p.apply(figure2());
        let frame = p.render_scaled(1280, 1024, 320, 256).unwrap();
        assert_eq!((frame.width(), frame.height()), (320, 256));
        // Window A (grey-ish) occupies AH (220,150)-(570,600); its centre
        // maps to roughly a quarter scale. The scaled pixel must come from
        // the window's fill, not the background.
        let px = frame.pixel(90, 80).unwrap();
        assert_eq!(px[3], 255);
        assert_ne!(px, [0, 40, 80, 255], "scaled window content visible");
    }

    #[test]
    fn pli_and_nack_flow_through_rtcp_queue() {
        let mut p = Participant::new(1, Layout::Original, true, 1);
        assert!(p.take_rtcp().is_none());
        p.request_refresh();
        let bytes = p.take_rtcp().unwrap();
        let parsed = adshare_rtp::rtcp::decode_compound(&bytes).unwrap();
        assert!(matches!(parsed[0], RtcpPacket::Pli(_)));
        assert!(p.take_rtcp().is_none(), "queue drained");
        assert_eq!(p.stats().plis_sent, 1);
    }
}
