//! Deterministic replay of `adshare-capture/v1` files.
//!
//! A participant's decode state is a pure function of the byte stream it
//! is fed: layout, NACK policy, and RNG seed only shape *outbound*
//! feedback and local window placement, never how a datagram decodes. So
//! replay builds one fresh [`Participant`] per ingress actor, feeds it the
//! capture's `Rx` records at their recorded virtual cadence (and honours
//! [`StreamKind::GapRecover`] markers, skipping the same unrecoverable
//! holes the live session skipped), and then compares two digests against
//! the manifest:
//!
//! - the **wire digest** — FNV fold over the capture's egress records,
//!   which must equal what `SimSession::wire_digest` reported live;
//! - a per-actor **decoded-surface digest** — a fold over every window's
//!   id, dimensions, and pixels in z-order, which must be bit-identical
//!   to the live participant's surface at capture time.
//!
//! [`historical_chrome_trace`] renders the same capture as a Perfetto
//! timeline: the flight-recorder events embedded at finalize time plus
//! one instant per captured packet, all on the single virtual clock the
//! sink and recorder shared.

use std::collections::BTreeMap;

use adshare_capture::{
    flight_events, fnv1a_fold, wire_digest_of, Capture, CaptureRecord, Direction, ManifestSummary,
    StreamKind, Transport, FNV_OFFSET,
};
use adshare_netsim::time::us_to_ticks;
use adshare_obs::{chrome_trace_json_with_packets, PacketSample};

use crate::config::Layout;
use crate::participant::Participant;

/// Digest of a participant's decoded surface: every shared window's id,
/// dimensions, and raw pixels, folded in z-order. Layout-independent, so
/// a replay participant with a default layout still reproduces it.
pub fn participant_surface_digest(p: &Participant) -> u64 {
    let mut digest = FNV_OFFSET;
    for &id in p.z_order() {
        digest = fnv1a_fold(digest, &id.to_le_bytes());
        if let Some(img) = p.window_content(id) {
            digest = fnv1a_fold(digest, &img.width().to_le_bytes());
            digest = fnv1a_fold(digest, &img.height().to_le_bytes());
            digest = fnv1a_fold(digest, img.data());
        }
    }
    digest
}

/// One actor's surface comparison after replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurfaceCheck {
    /// Ingress actor (participant index in the recording session).
    pub actor: u16,
    /// Surface digest of the replayed participant.
    pub replayed: u64,
    /// The manifest's recorded digest for this actor, when present.
    pub recorded: Option<u64>,
}

impl SurfaceCheck {
    /// Whether the replayed surface matches the recorded one (vacuously
    /// true when the manifest carried no digest for this actor).
    pub fn matches(&self) -> bool {
        self.recorded.is_none_or(|r| r == self.replayed)
    }
}

/// Everything a replay run asserts.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// FNV fold over the capture's egress (Tx RTP/RTCP) records.
    pub wire_digest: u64,
    /// The manifest's claimed wire digest, when a manifest was supplied.
    pub recorded_wire_digest: Option<u64>,
    /// Per-actor surface comparisons, ascending by actor.
    pub surfaces: Vec<SurfaceCheck>,
    /// Ingress records fed to replay participants.
    pub records_fed: u64,
    /// Gap-recovery markers honoured during the replay.
    pub gaps_skipped: u64,
}

impl ReplayReport {
    /// Whether the capture's egress digest matches the manifest's claim
    /// (vacuously true without a manifest).
    pub fn wire_matches(&self) -> bool {
        self.recorded_wire_digest
            .is_none_or(|r| r == self.wire_digest)
    }

    /// The acceptance criterion: wire digest and every surface digest
    /// match the manifest.
    pub fn bit_exact(&self) -> bool {
        self.wire_matches() && self.surfaces.iter().all(SurfaceCheck::matches)
    }
}

/// Replay a parsed capture through fresh participants and report the
/// digest comparisons. With `manifest = None` the digests are computed
/// but nothing is asserted against ([`ReplayReport::bit_exact`] is then
/// vacuously true).
pub fn replay(capture: &Capture, manifest: Option<&ManifestSummary>) -> ReplayReport {
    // Which actors received downstream traffic, and whether any of it ran
    // over TCP (stream-framed) rather than datagrams.
    let mut tcp_actor: BTreeMap<u16, bool> = BTreeMap::new();
    for r in &capture.records {
        if r.dir == Direction::Rx {
            *tcp_actor.entry(r.actor).or_insert(false) |= r.transport == Transport::Tcp;
        }
    }
    let mut participants: BTreeMap<u16, Participant> = tcp_actor
        .keys()
        .map(|&actor| {
            // user_id mirrors SimSession's idx→id mapping; the seed is
            // arbitrary because decode never consults the RNG.
            let p = Participant::new(actor + 1, Layout::Original, false, 0x5eed ^ actor as u64);
            (actor, p)
        })
        .collect();
    let mut records_fed = 0u64;
    let mut gaps_skipped = 0u64;
    for r in &capture.records {
        match (r.dir, r.kind) {
            (Direction::Rx, _) => {
                let Some(p) = participants.get_mut(&r.actor) else {
                    continue;
                };
                let ticks = us_to_ticks(r.ts_us);
                if r.transport == Transport::Tcp {
                    p.handle_stream(&r.payload, ticks);
                } else {
                    p.handle_datagram(&r.payload, ticks);
                }
                records_fed += 1;
            }
            (Direction::Internal, StreamKind::GapRecover) => {
                if let Some(p) = participants.get_mut(&r.actor) {
                    p.recover_from_gap();
                    gaps_skipped += 1;
                }
            }
            _ => {}
        }
    }
    let recorded: BTreeMap<u16, u64> = manifest
        .map(|m| m.surface_digests.iter().copied().collect())
        .unwrap_or_default();
    let surfaces = participants
        .iter()
        .map(|(&actor, p)| SurfaceCheck {
            actor,
            replayed: participant_surface_digest(p),
            recorded: recorded.get(&actor).copied(),
        })
        .collect();
    ReplayReport {
        wire_digest: wire_digest_of(&capture.records),
        recorded_wire_digest: manifest.map(|m| m.wire_digest),
        surfaces,
        records_fed,
        gaps_skipped,
    }
}

/// Convert capture records to Perfetto packet instants: one lane per
/// direction (`capture.tx`, `capture.rx`, `capture.up`,
/// `capture.internal`), named by stream kind, carrying payload size and
/// actor as args.
pub fn packet_samples(records: &[CaptureRecord]) -> Vec<PacketSample> {
    records
        .iter()
        .map(|r| PacketSample {
            track: format!("capture.{}", r.dir.name()),
            lane: r.dir as u64,
            name: r.kind.name().to_string(),
            ts_us: r.ts_us,
            bytes: r.payload.len() as u64,
            actor: r.actor,
        })
        .collect()
}

/// Historical Perfetto export from a capture file alone: the embedded
/// flight-recorder events plus one instant per captured packet. Both
/// streams were stamped by the same virtual clock, so the merged timeline
/// is monotone — no negative spans.
pub fn historical_chrome_trace(capture: &Capture) -> String {
    let events = flight_events(&capture.records);
    let packets = packet_samples(&capture.records);
    chrome_trace_json_with_packets(&[], &events, &packets)
}
