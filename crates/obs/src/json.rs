//! A minimal JSON writer helper and recursive-descent parser.
//!
//! No serde is available offline, so snapshot export is hand-serialized
//! (in `registry.rs`) and this module provides the matching parser used by
//! tests and the `obs_schema_check` validation bin to verify that exported
//! documents are well-formed and shaped as claimed.

use std::collections::BTreeMap;

/// Escape and write `s` as a JSON string (with surrounding quotes).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; exact for integers up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric value as i64, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(parse("1.5").unwrap(), Json::Num(1.5));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert!(doc.get("d").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ – ünïcodé \u{1}";
        let mut buf = String::new();
        write_string(&mut buf, original);
        assert_eq!(parse(&buf).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":}",
            "",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn numeric_edge_cases() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert!(parse("1.5").unwrap().as_u64().is_none());
        assert!(parse("-1").unwrap().as_u64().is_none());
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
    }
}
