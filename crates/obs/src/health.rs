//! The SLO health engine: rolling-window rules over registry metrics and
//! the flight-recorder event stream, with anomaly-triggered black-box dumps.
//!
//! Each [`HealthEngine::check`] call evaluates seven built-in rules (loss
//! fraction, NACK rate, frame-staleness p99, TCP backlog-skip ratio,
//! encode-cache hit rate, estimator floor-pinned time, worst active
//! quality tier) against the last
//! [`HealthConfig::window_us`] of recorder events plus the current registry
//! snapshot, producing a typed [`HealthReport`] with an OK / DEGRADED /
//! CRITICAL verdict per rule. A transition *into* CRITICAL dumps the black
//! box — ring contents, registry snapshot, and the triggering report — to
//! the configured [`DumpSink`], so the sequence of events that led to the
//! incident survives it.
//!
//! Adding a rule: compute a value and thresholds in `check`, call
//! `rule(...)`, and document the thresholds in DESIGN.md §10.

use crate::events::{self, Event, EventKind, FlightRecorder};
use crate::json;
use crate::registry::{MetricSnapshot, Registry, Snapshot};

/// Schema marker for the JSON health-report export.
pub const HEALTH_SCHEMA: &str = "adshare-health/v1";
/// Schema marker for the black-box dump (report + events + snapshot).
pub const BLACKBOX_SCHEMA: &str = "adshare-blackbox/v1";

/// Per-rule (and overall) verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Within thresholds.
    Ok,
    /// Above the degraded threshold: the session works but users notice.
    Degraded,
    /// Above the critical threshold: triggers a black-box dump.
    Critical,
}

impl HealthStatus {
    /// Stable uppercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "OK",
            HealthStatus::Degraded => "DEGRADED",
            HealthStatus::Critical => "CRITICAL",
        }
    }
}

/// One evaluated rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleReport {
    /// Stable rule name (`loss`, `nack_rate`, `staleness_p99`, …).
    pub name: &'static str,
    /// Verdict for this window.
    pub status: HealthStatus,
    /// Observed value (unit documented per rule in DESIGN.md §10).
    pub value: f64,
    /// The degraded threshold the value is compared against.
    pub threshold: f64,
    /// Human-readable context (window size, sample counts).
    pub detail: String,
}

/// The result of one health evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Virtual time of the evaluation.
    pub at_us: u64,
    /// Worst rule verdict.
    pub overall: HealthStatus,
    /// Every rule, in fixed order.
    pub rules: Vec<RuleReport>,
}

impl HealthReport {
    /// Serialize as an `adshare-health/v1` document (see
    /// `schemas/health_report.schema.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.rules.len() * 160);
        out.push_str("{\"schema\": ");
        json::write_string(&mut out, HEALTH_SCHEMA);
        out.push_str(&format!(", \"at_us\": {}, \"overall\": ", self.at_us));
        json::write_string(&mut out, self.overall.as_str());
        out.push_str(", \"rules\": [");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            json::write_string(&mut out, r.name);
            out.push_str(", \"status\": ");
            json::write_string(&mut out, r.status.as_str());
            out.push_str(&format!(
                ", \"value\": {:.6}, \"threshold\": {:.6}, \"detail\": ",
                r.value, r.threshold
            ));
            json::write_string(&mut out, &r.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Multi-line human-readable rendering (printed by `adshare-demo sim`).
    pub fn render(&self) -> String {
        let mut out = format!("health @ {} µs: {}\n", self.at_us, self.overall.as_str());
        for r in &self.rules {
            out.push_str(&format!(
                "  {:<13} {:<9} value {:>10.4}  threshold {:>10.4}  {}\n",
                r.name,
                r.status.as_str(),
                r.value,
                r.threshold,
                r.detail
            ));
        }
        out
    }
}

/// Where black-box dumps go. The last dump is always retrievable in memory
/// via [`HealthEngine::last_dump`] regardless of the sink.
#[derive(Debug, Clone, Default)]
pub enum DumpSink {
    /// Keep the dump in memory only (tests, simulations).
    #[default]
    Memory,
    /// Additionally write `blackbox_<at_us>.json` into this directory.
    Dir(std::path::PathBuf),
}

/// Thresholds and window for the built-in rules. Per rule: the first field
/// trips DEGRADED, the second CRITICAL.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Rolling evaluation window over the event stream.
    pub window_us: u64,
    /// Loss fraction (NACKed sequences / packets sent in window).
    pub loss: (f64, f64),
    /// NACK messages received per second.
    pub nack_rate: (f64, f64),
    /// Frame-staleness p99 (µs): damage observed → delivered, over the
    /// `FrameDelivered` events in the rolling window.
    pub staleness_p99_us: (u64, u64),
    /// TCP freshest-frame skips / (skips + sends) in window.
    pub backlog_skip: (f64, f64),
    /// Encode-cache hit rate *floor* (DEGRADED below; no CRITICAL tier —
    /// a cold cache is slow, not an incident).
    pub cache_hit_floor: f64,
    /// Minimum tiles in window before the cache rule engages.
    pub cache_min_tiles: u64,
    /// Time (µs) the estimator may sit at its floor rate before DEGRADED /
    /// CRITICAL.
    pub floor_pinned_us: (u64, u64),
    /// The estimator floor (`RateConfig::floor_bps`) the pin check
    /// compares `*.rate.rate_bps` gauges against.
    pub floor_bps: i64,
    /// Quality-tier gauge value (`*.tier`, 0 = lossless … 2 = economy) at
    /// or above which the tier rule reports DEGRADED. A deliberate layered
    /// downgrade is visible but never CRITICAL — the whole point of
    /// simulcast tiers is that degrading beats starving, so the rule keeps
    /// a downgraded subtree out of the black-box path while still failing
    /// a scenario that *expects* lossless.
    pub tier_degraded: i64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window_us: 2_000_000,
            loss: (0.02, 0.15),
            nack_rate: (2.0, 20.0),
            staleness_p99_us: (400_000, 2_000_000),
            backlog_skip: (0.10, 0.50),
            cache_hit_floor: 0.05,
            cache_min_tiles: 64,
            floor_pinned_us: (1_000_000, 5_000_000),
            floor_bps: 128_000,
            tier_degraded: 1,
        }
    }
}

/// Human-readable actor name for rule details: participant/leg events are
/// tagged with their index; the AH and relay use reserved sentinel ids.
fn actor_name(actor: u16) -> String {
    match actor {
        events::ACTOR_AH => "ah".to_string(),
        events::ACTOR_RELAY => "relay".to_string(),
        id if id & events::ACTOR_LEG_BASE != 0 => {
            format!("relay leg {}", id & !events::ACTOR_LEG_BASE)
        }
        id => format!("participant {id}"),
    }
}

fn rule(
    name: &'static str,
    value: f64,
    degraded: f64,
    critical: f64,
    detail: String,
) -> RuleReport {
    let status = if value >= critical {
        HealthStatus::Critical
    } else if value >= degraded {
        HealthStatus::Degraded
    } else {
        HealthStatus::Ok
    };
    RuleReport {
        name,
        status,
        value,
        threshold: degraded,
        detail,
    }
}

/// The engine: rolling-rule state plus the dump machinery. Lives behind a
/// mutex inside [`Obs`](crate::Obs); use
/// [`Obs::health_check`](crate::Obs::health_check) from pipeline code.
#[derive(Default)]
pub struct HealthEngine {
    cfg: HealthConfig,
    sink: DumpSink,
    prev_overall: Option<HealthStatus>,
    pinned_since: Option<u64>,
    last_dump: Option<String>,
    dumps: u64,
    capture_hook: Option<Box<dyn FnMut(u64) -> Option<String> + Send>>,
}

impl std::fmt::Debug for HealthEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthEngine")
            .field("cfg", &self.cfg)
            .field("sink", &self.sink)
            .field("prev_overall", &self.prev_overall)
            .field("pinned_since", &self.pinned_since)
            .field("dumps", &self.dumps)
            .field("capture_hook", &self.capture_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl HealthEngine {
    /// An engine with the given thresholds and the in-memory sink.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthEngine {
            cfg,
            ..Default::default()
        }
    }

    /// Replace the thresholds (e.g. to tighten them in a stress test).
    pub fn set_config(&mut self, cfg: HealthConfig) {
        self.cfg = cfg;
    }

    /// Current thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Route future black-box dumps.
    pub fn set_sink(&mut self, sink: DumpSink) {
        self.sink = sink;
    }

    /// Install a capture hook: on a CRITICAL transition the engine calls it
    /// with the dump timestamp, and the hook flushes whatever ring capture
    /// is armed, returning the written file's path so the black-box dump
    /// can reference it (`capture_path`). CRITICAL dumps then ship a
    /// replayable capture next to the derived-state snapshot.
    pub fn set_capture_hook(&mut self, hook: Box<dyn FnMut(u64) -> Option<String> + Send>) {
        self.capture_hook = Some(hook);
    }

    /// The most recent black-box dump, if any CRITICAL transition occurred.
    pub fn last_dump(&self) -> Option<&str> {
        self.last_dump.as_deref()
    }

    /// Number of black-box dumps taken.
    pub fn dumps(&self) -> u64 {
        self.dumps
    }

    /// Evaluate every rule at `now_us`. On a transition into CRITICAL,
    /// dump the black box (recorder contents + registry snapshot + this
    /// report) to the sink; on any overall change, record a
    /// [`EventKind::HealthTransition`] event.
    pub fn check(
        &mut self,
        now_us: u64,
        registry: &Registry,
        recorder: &FlightRecorder,
    ) -> HealthReport {
        let snapshot = registry.snapshot();
        let since = now_us.saturating_sub(self.cfg.window_us);
        let window: Vec<Event> = recorder.snapshot_since(since);
        let window_s = (self.cfg.window_us.max(1)) as f64 / 1e6;

        let mut tx_packets = 0u64;
        let mut tx_msgs = 0u64;
        let mut nacked = 0u64;
        let mut nack_msgs = 0u64;
        let mut skips = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_tiles = 0u64;
        let mut staleness: Vec<u64> = Vec::new();
        // Per-actor (nacked sequences, NACK messages) so the loss and
        // nack_rate rules can name the offending participant/leg.
        let mut by_actor: std::collections::HashMap<u16, (u64, u64)> =
            std::collections::HashMap::new();
        for e in &window {
            match e.kind {
                EventKind::RtpTx => {
                    tx_msgs += 1;
                    tx_packets += e.b >> 32;
                }
                EventKind::NackReceived => {
                    nack_msgs += 1;
                    nacked += e.a;
                    let slot = by_actor.entry(e.actor).or_insert((0, 0));
                    slot.0 += e.a;
                    slot.1 += 1;
                }
                EventKind::BacklogSkip => skips += 1,
                EventKind::CacheHit => {
                    cache_hits += e.a;
                    cache_tiles += e.a;
                }
                EventKind::CacheMiss => cache_tiles += e.a,
                EventKind::FrameDelivered => staleness.push(e.a),
                _ => {}
            }
        }
        // Stable pick under ties: highest nacked count, then lowest actor id.
        let worst = by_actor
            .iter()
            .filter(|(_, (n, _))| *n > 0)
            .max_by_key(|(actor, (n, _))| (*n, u16::MAX - **actor))
            .map(|(actor, (n, msgs))| (*actor, *n, *msgs));
        let worst_loss = worst.map_or(String::new(), |(actor, n, _)| {
            format!("; worst: {} ({n} nacked)", actor_name(actor))
        });
        let worst_nacker = worst.map_or(String::new(), |(actor, _, msgs)| {
            format!("; worst: {} ({msgs} NACKs)", actor_name(actor))
        });

        let mut rules = Vec::with_capacity(7);
        let loss = if tx_packets == 0 {
            0.0
        } else {
            nacked as f64 / tx_packets as f64
        };
        rules.push(rule(
            "loss",
            loss,
            self.cfg.loss.0,
            self.cfg.loss.1,
            format!("{nacked} nacked / {tx_packets} sent in window{worst_loss}"),
        ));

        rules.push(rule(
            "nack_rate",
            nack_msgs as f64 / window_s,
            self.cfg.nack_rate.0,
            self.cfg.nack_rate.1,
            format!("{nack_msgs} NACKs / {window_s:.1} s{worst_nacker}"),
        ));

        // Windowed p99 of frame staleness (damage observed → delivered),
        // from FrameDelivered events. A rolling window matters here: the
        // session-cumulative `pipeline.total_us` histogram would let one
        // transient stall pin the rule at CRITICAL long after the system
        // recovered. No deliveries in the window reads as 0 — a quiet
        // screen is not stale; a stalled one shows up as loss/NACKs first.
        let p99 = if staleness.is_empty() {
            0
        } else {
            staleness.sort_unstable();
            staleness[(staleness.len() - 1) * 99 / 100]
        };
        let delivered = staleness.len();
        rules.push(rule(
            "staleness_p99",
            p99 as f64,
            self.cfg.staleness_p99_us.0 as f64,
            self.cfg.staleness_p99_us.1 as f64,
            format!("{delivered} frames delivered in window"),
        ));

        let skip_ratio = if skips + tx_msgs == 0 {
            0.0
        } else {
            skips as f64 / (skips + tx_msgs) as f64
        };
        rules.push(rule(
            "backlog_skip",
            skip_ratio,
            self.cfg.backlog_skip.0,
            self.cfg.backlog_skip.1,
            format!("{skips} skips vs {tx_msgs} sends in window"),
        ));

        // Cache rule inverts: LOW hit rate is bad. Evaluate as a deficit so
        // `rule()`'s >=-threshold logic still applies.
        let hit_rate = if cache_tiles == 0 {
            1.0
        } else {
            cache_hits as f64 / cache_tiles as f64
        };
        let cache_deficit = if cache_tiles < self.cfg.cache_min_tiles {
            0.0
        } else {
            (self.cfg.cache_hit_floor - hit_rate).max(0.0)
        };
        let mut cache_rule = rule(
            "cache_hit",
            hit_rate,
            self.cfg.cache_hit_floor,
            f64::INFINITY,
            format!("{cache_hits}/{cache_tiles} tiles from cache in window"),
        );
        cache_rule.status = if cache_deficit > 0.0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        rules.push(cache_rule);

        let pinned_now = snapshot.metrics.iter().any(|(name, m)| {
            name.ends_with(".rate.rate_bps")
                && matches!(m, MetricSnapshot::Gauge(v) if *v > 0 && *v <= self.cfg.floor_bps)
        });
        self.pinned_since = if pinned_now {
            Some(self.pinned_since.unwrap_or(now_us))
        } else {
            None
        };
        let pinned_us = self.pinned_since.map_or(0, |t| now_us.saturating_sub(t));
        rules.push(rule(
            "floor_pinned",
            pinned_us as f64,
            self.cfg.floor_pinned_us.0 as f64,
            self.cfg.floor_pinned_us.1 as f64,
            format!("µs at floor ({} bit/s)", self.cfg.floor_bps),
        ));

        // Worst active quality tier across every layered sender (`*.tier`
        // gauges from rate controllers and relay legs). Degraded-only by
        // construction: a tier downgrade is the system *working* —
        // trading quality for liveness — so it must surface in reports
        // and scenario expectations without tripping a black-box dump.
        let worst_tier = snapshot
            .metrics
            .iter()
            .filter(|(name, _)| name.ends_with(".tier"))
            .filter_map(|(_, m)| match m {
                MetricSnapshot::Gauge(v) => Some(*v),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut tier_rule = rule(
            "tier",
            worst_tier as f64,
            self.cfg.tier_degraded as f64,
            f64::INFINITY,
            "worst active quality tier (0 = lossless)".to_string(),
        );
        tier_rule.status = if worst_tier >= self.cfg.tier_degraded {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        rules.push(tier_rule);

        let overall = rules
            .iter()
            .map(|r| r.status)
            .max()
            .unwrap_or(HealthStatus::Ok);
        let report = HealthReport {
            at_us: now_us,
            overall,
            rules,
        };

        let prev = self.prev_overall;
        if prev != Some(overall) {
            recorder.record(
                now_us,
                events::ACTOR_AH,
                EventKind::HealthTransition,
                overall as u64,
                prev.map_or(0, |p| p as u64),
            );
            if overall == HealthStatus::Critical {
                self.dump(&report, &snapshot, recorder);
            }
        }
        self.prev_overall = Some(overall);
        report
    }

    fn dump(&mut self, report: &HealthReport, snapshot: &Snapshot, recorder: &FlightRecorder) {
        let capture_path = self
            .capture_hook
            .as_mut()
            .and_then(|hook| hook(report.at_us));
        let mut out = String::new();
        out.push_str("{\"schema\": ");
        json::write_string(&mut out, BLACKBOX_SCHEMA);
        out.push_str(&format!(", \"at_us\": {}, \"report\": ", report.at_us));
        out.push_str(&report.to_json());
        out.push_str(", \"events\": ");
        out.push_str(&recorder.to_json());
        out.push_str(", \"snapshot\": ");
        out.push_str(&snapshot.to_json());
        if let Some(path) = capture_path {
            out.push_str(", \"capture_path\": ");
            json::write_string(&mut out, &path);
        }
        out.push('}');
        if let DumpSink::Dir(dir) = &self.sink {
            let path = dir.join(format!("blackbox_{}.json", report.at_us));
            // Best-effort: a failed dump must never take the session down.
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, &out);
        }
        self.last_dump = Some(out);
        self.dumps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ACTOR_AH;

    fn engine() -> (HealthEngine, Registry, FlightRecorder) {
        (
            HealthEngine::new(HealthConfig::default()),
            Registry::new(),
            FlightRecorder::new(256),
        )
    }

    #[test]
    fn idle_session_is_ok() {
        let (mut eng, reg, rec) = engine();
        let report = eng.check(10_000_000, &reg, &rec);
        assert_eq!(report.overall, HealthStatus::Ok);
        assert_eq!(report.rules.len(), 7);
        assert!(eng.last_dump().is_none());
    }

    #[test]
    fn heavy_loss_goes_critical_and_dumps_black_box() {
        let (mut eng, reg, rec) = engine();
        let now = 10_000_000;
        for i in 0..20u64 {
            rec.record(now - 1000 - i, ACTOR_AH, EventKind::RtpTx, i, 4 << 32);
        }
        for i in 0..30u64 {
            rec.record(now - 500 - i, ACTOR_AH, EventKind::NackReceived, 10, i);
        }
        let report = eng.check(now, &reg, &rec);
        assert_eq!(report.overall, HealthStatus::Critical);
        let dump = eng.last_dump().expect("critical transition dumps");
        let doc = json::parse(dump).expect("dump parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(BLACKBOX_SCHEMA)
        );
        assert!(dump.contains("nack_received"), "triggering events captured");
        assert_eq!(eng.dumps(), 1);
        // Staying critical must not dump again.
        eng.check(now + 1000, &reg, &rec);
        assert_eq!(eng.dumps(), 1);
    }

    #[test]
    fn moderate_loss_is_degraded_without_dump() {
        let (mut eng, reg, rec) = engine();
        let now = 10_000_000;
        for i in 0..100u64 {
            rec.record(now - 1000 - i, ACTOR_AH, EventKind::RtpTx, i, 1 << 32);
        }
        rec.record(now - 500, ACTOR_AH, EventKind::NackReceived, 5, 0);
        let report = eng.check(now, &reg, &rec);
        assert_eq!(report.overall, HealthStatus::Degraded);
        assert!(eng.last_dump().is_none());
    }

    #[test]
    fn events_outside_window_do_not_count() {
        let (mut eng, reg, rec) = engine();
        let now = 10_000_000;
        for i in 0..30u64 {
            rec.record(1000 + i, ACTOR_AH, EventKind::NackReceived, 10, i);
        }
        rec.record(now - 10, ACTOR_AH, EventKind::RtpTx, 0, 4 << 32);
        let report = eng.check(now, &reg, &rec);
        assert_eq!(report.overall, HealthStatus::Ok, "old NACKs aged out");
    }

    #[test]
    fn floor_pin_accumulates_across_checks() {
        let (mut eng, reg, rec) = engine();
        reg.gauge("ah.participant.0.rate.rate_bps").set(128_000);
        eng.check(1_000_000, &reg, &rec);
        let report = eng.check(2_500_000, &reg, &rec);
        let pin = report
            .rules
            .iter()
            .find(|r| r.name == "floor_pinned")
            .unwrap();
        assert_eq!(pin.status, HealthStatus::Degraded);
        assert_eq!(pin.value, 1_500_000.0);
        // Recovery resets the pin clock.
        reg.gauge("ah.participant.0.rate.rate_bps").set(2_000_000);
        let report = eng.check(3_000_000, &reg, &rec);
        let pin = report
            .rules
            .iter()
            .find(|r| r.name == "floor_pinned")
            .unwrap();
        assert_eq!(pin.status, HealthStatus::Ok);
    }

    #[test]
    fn report_json_parses_with_marker() {
        let (mut eng, reg, rec) = engine();
        let report = eng.check(5_000_000, &reg, &rec);
        let doc = json::parse(&report.to_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(HEALTH_SCHEMA)
        );
        assert_eq!(doc.get("overall").and_then(|s| s.as_str()), Some("OK"));
        assert_eq!(
            doc.get("rules").and_then(|r| r.as_array()).map(|r| r.len()),
            Some(7)
        );
    }

    #[test]
    fn loss_detail_names_worst_offender() {
        let (mut eng, reg, rec) = engine();
        let now = 10_000_000;
        for i in 0..100u64 {
            rec.record(now - 1000 - i, ACTOR_AH, EventKind::RtpTx, i, 1 << 32);
        }
        rec.record(now - 500, 3, EventKind::NackReceived, 2, 0);
        rec.record(now - 400, 7, EventKind::NackReceived, 9, 0);
        rec.record(now - 300, 7, EventKind::NackReceived, 1, 0);
        let report = eng.check(now, &reg, &rec);
        let loss = report.rules.iter().find(|r| r.name == "loss").unwrap();
        assert!(
            loss.detail.contains("worst: participant 7 (10 nacked)"),
            "loss detail names offender: {}",
            loss.detail
        );
        let nack = report.rules.iter().find(|r| r.name == "nack_rate").unwrap();
        assert!(
            nack.detail.contains("worst: participant 7 (2 NACKs)"),
            "nack_rate detail names offender: {}",
            nack.detail
        );
    }

    #[test]
    fn transition_records_health_event() {
        let (mut eng, reg, rec) = engine();
        eng.check(1_000_000, &reg, &rec);
        let events = rec.snapshot();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::HealthTransition && e.a == HealthStatus::Ok as u64));
    }
}
