//! The metric registry: hierarchical dot-separated names mapped to live
//! metric handles, plus point-in-time snapshots with a JSON exporter.

use crate::json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A shared, thread-safe collection of named metrics.
///
/// Names are hierarchical with `.` separators (`ah.encode_us`,
/// `participant.0.udp.tx_bytes`). Registration is idempotent: asking for an
/// existing name returns a handle to the same metric; asking with a
/// *different* metric type panics (programmer error, and silently returning
/// a fresh metric would split the data).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        extract: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(make);
        extract(entry)
            .unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", entry.kind()))
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || Metric::Counter(Counter::new()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || Metric::Gauge(Gauge::new()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            || Metric::Histogram(Histogram::new()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Register an *existing* counter handle under `name` ("adoption"):
    /// structs keep their own typed handles on the hot path while the
    /// registry exposes the same atomics for export. Idempotent for the same
    /// underlying counter; panics if `name` is already bound to a different
    /// metric.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        let mut map = self.inner.lock().unwrap();
        match map.get(name) {
            None => {
                map.insert(name.to_string(), Metric::Counter(counter.clone()));
            }
            Some(Metric::Counter(existing)) if existing.same_as(counter) => {}
            Some(existing) => panic!(
                "metric {name:?} already registered as a different {}",
                existing.kind()
            ),
        }
    }

    /// Counter analogue of [`Registry::adopt_counter`] for gauges.
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) {
        let mut map = self.inner.lock().unwrap();
        match map.get(name) {
            None => {
                map.insert(name.to_string(), Metric::Gauge(gauge.clone()));
            }
            Some(Metric::Gauge(existing)) if existing.same_as(gauge) => {}
            Some(existing) => panic!(
                "metric {name:?} already registered as a different {}",
                existing.kind()
            ),
        }
    }

    /// Counter analogue of [`Registry::adopt_counter`] for histograms.
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        let mut map = self.inner.lock().unwrap();
        match map.get(name) {
            None => {
                map.insert(name.to_string(), Metric::Histogram(histogram.clone()));
            }
            Some(Metric::Histogram(existing)) if existing.same_as(histogram) => {}
            Some(existing) => panic!(
                "metric {name:?} already registered as a different {}",
                existing.kind()
            ),
        }
    }

    /// Current value of counter `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.inner.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// A frozen copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().unwrap();
        Snapshot {
            metrics: map
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

/// One metric's frozen state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a [`Registry`], exportable as JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → frozen state, sorted by name.
    pub metrics: BTreeMap<String, MetricSnapshot>,
}

/// Schema identifier embedded in every exported snapshot.
pub const SNAPSHOT_SCHEMA: &str = "adshare-obs/v1";

impl Snapshot {
    /// Frozen state of metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.get(name)
    }

    /// Counter value of `name` (None if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricSnapshot::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value of `name` (None if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricSnapshot::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state of `name` (None if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricSnapshot::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix` and ends with
    /// `suffix` — the roll-up a multi-session host uses to aggregate
    /// per-session labels (e.g. prefix `"host.session."`, suffix
    /// `".steps"`) into one host-level figure. Non-counter metrics in the
    /// range are skipped.
    pub fn sum_counters_with(&self, prefix: &str, suffix: &str) -> u64 {
        // BTreeMap range-scan: names are sorted, so everything with the
        // prefix is contiguous.
        self.metrics
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .filter(|(name, _)| name.ends_with(suffix))
            .map(|(_, m)| match m {
                MetricSnapshot::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Serialize to the `adshare-obs/v1` JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "adshare-obs/v1",
    ///   "metrics": {
    ///     "ah.encodes": {"type": "counter", "value": 12},
    ///     "net.backlog": {"type": "gauge", "value": -3},
    ///     "ah.encode_us": {"type": "histogram", "count": 9, "sum": 1234,
    ///                       "min": 80, "max": 400, "mean": 137,
    ///                       "p50": 127, "p90": 255, "p99": 400,
    ///                       "buckets": [[127, 5], [255, 3], [511, 1]]}
    ///   }
    /// }
    /// ```
    ///
    /// Histogram `buckets` are `[inclusive_upper_bound, count]` pairs for
    /// non-empty buckets only.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.metrics.len() * 64);
        out.push_str("{\n  \"schema\": ");
        json::write_string(&mut out, SNAPSHOT_SCHEMA);
        out.push_str(",\n  \"metrics\": {");
        let mut first = true;
        for (name, m) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::write_string(&mut out, name);
            out.push_str(": ");
            match m {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v}}}"));
                }
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"min\": {}, \"max\": {}, \"mean\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99()
                    ));
                    for (i, (le, c)) in h.nonzero_buckets().into_iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{le}, {c}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("ah.encodes");
        let b = r.counter("ah.encodes");
        a.inc();
        b.inc();
        assert_eq!(r.counter_value("ah.encodes"), Some(2));
        assert!(a.same_as(&b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn adoption_exposes_existing_handles() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(41);
        r.adopt_counter("udp.tx", &c);
        r.adopt_counter("udp.tx", &c); // idempotent for the same handle
        c.inc();
        assert_eq!(r.counter_value("udp.tx"), Some(42));

        let h = Histogram::new();
        h.record(9);
        r.adopt_histogram("lat", &h);
        assert_eq!(r.snapshot().histogram("lat").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn adopting_over_foreign_counter_panics() {
        let r = Registry::new();
        r.adopt_counter("udp.tx", &Counter::new());
        r.adopt_counter("udp.tx", &Counter::new());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.gauge("b.depth").set(-7);
        let h = r.histogram("c.lat_us");
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = snap.to_json();
        let doc = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(SNAPSHOT_SCHEMA)
        );
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("a.count")
                .unwrap()
                .get("value")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(
            metrics
                .get("b.depth")
                .unwrap()
                .get("value")
                .unwrap()
                .as_i64(),
            Some(-7)
        );
        let hist = metrics.get("c.lat_us").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(1000));
        assert!(hist.get("p50").unwrap().as_u64().unwrap() >= 20);
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert!(!buckets.is_empty());
    }

    #[test]
    fn snapshot_accessors() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(-3);
        r.histogram("h").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(5));
        assert_eq!(s.counter("h"), None);
        assert_eq!(s.gauge("g"), Some(-3));
        assert_eq!(s.gauge("c"), None);
        assert_eq!(s.histogram("h").unwrap().max, 100);
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn sum_counters_with_rolls_up_per_session_labels() {
        let r = Registry::new();
        r.counter("host.session.0.steps").add(10);
        r.counter("host.session.1.steps").add(32);
        r.counter("host.session.10.steps").add(100);
        r.counter("host.session.1.cpu_us").add(999); // other suffix
        r.counter("host.steps").add(7); // outside the prefix
        r.gauge("host.session.2.steps").set(50); // wrong type: skipped
        let s = r.snapshot();
        assert_eq!(s.sum_counters_with("host.session.", ".steps"), 142);
        assert_eq!(s.sum_counters_with("host.session.", ".cpu_us"), 999);
        assert_eq!(s.sum_counters_with("relay.", ".steps"), 0);
    }
}
