//! Per-frame pipeline tracing.
//!
//! A [`FrameTrace`] token follows one `RegionUpdate` through the pipeline:
//! damage is observed (`adshare-screen`), the region is encoded
//! (`adshare-codec` via the AH), fragmented (`adshare-remoting`), sent and
//! delivered over a simulated transport (`adshare-netsim`), and decoded at a
//! participant (`adshare-session`). The sender registers the trace keyed on
//! `(ssrc, sequence of the marker fragment)` — the packet whose arrival
//! completes reassembly — so the receiver can complete it without any wire
//! format change.
//!
//! Times on the `*_at_us` axis are **virtual simulation microseconds**; the
//! `*_wall_us` fields are **wall-clock CPU time** spent in a stage. The two
//! axes never mix inside a single stage figure.

use crate::metrics::{Counter, Histogram};
use crate::registry::Registry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Sender-side record of one region update's journey, registered when the
/// update is packetized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameTrace {
    /// Wire window id the update belongs to.
    pub window_id: u16,
    /// Virtual time the oldest damage merged into this update was observed.
    pub damage_at_us: u64,
    /// Virtual time the update's packets were handed to the transport.
    pub sent_at_us: u64,
    /// Wall-clock time spent encoding the region.
    pub encode_wall_us: u64,
    /// Wall-clock time spent fragmenting the encoded message.
    pub fragment_wall_us: u64,
    /// Number of fragments the update was split into.
    pub fragments: u32,
    /// Encoded payload size in bytes.
    pub bytes: u64,
}

/// Per-stage latency breakdown for one delivered frame. `total_us` is the
/// sum of the five stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageLatencies {
    /// Damage observed → handed to transport (virtual µs): capture cadence,
    /// merge batching, and pacing queue time.
    pub damage_us: u64,
    /// Encode cost (wall µs).
    pub encode_us: u64,
    /// Fragmentation cost (wall µs).
    pub fragment_us: u64,
    /// Transport: sent → last fragment delivered, including any
    /// retransmission rounds (virtual µs).
    pub transport_us: u64,
    /// Decode cost at the participant (wall µs).
    pub decode_us: u64,
    /// Sum of all stages.
    pub total_us: u64,
}

/// A completed trace: the sender-side token plus receiver-side timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedTrace {
    /// RTP SSRC of the media stream.
    pub ssrc: u32,
    /// Sequence number of the marker (final) fragment.
    pub seq: u16,
    /// Virtual delivery time at the completing participant.
    pub delivered_at_us: u64,
    /// The sender-side token.
    pub trace: FrameTrace,
    /// Derived stage breakdown.
    pub stages: StageLatencies,
}

#[derive(Debug, Default)]
struct TraceSinkInner {
    pending: HashMap<(u32, u16), FrameTrace>,
    pending_order: VecDeque<(u32, u16)>,
    completed: VecDeque<CompletedTrace>,
}

/// Bounded, shared store of in-flight and completed frame traces.
///
/// Completion is **non-destructive**: with multicast fan-out several
/// participants complete the same key, each producing its own
/// [`CompletedTrace`]. Pending entries are evicted FIFO past the capacity
/// bound (frames lost beyond recovery would otherwise pin memory forever).
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<Mutex<TraceSinkInner>>,
    capacity: usize,
    registered: Counter,
    completed: Counter,
    evicted: Counter,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(4096)
    }
}

impl TraceSink {
    /// A sink bounding both pending and completed traces to `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            inner: Arc::new(Mutex::new(TraceSinkInner::default())),
            capacity: capacity.max(1),
            registered: Counter::new(),
            completed: Counter::new(),
            evicted: Counter::new(),
        }
    }

    /// Expose the sink's own health counters on `registry`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.adopt_counter("trace.registered", &self.registered);
        registry.adopt_counter("trace.completed", &self.completed);
        registry.adopt_counter("trace.evicted", &self.evicted);
    }

    /// Sender side: file `trace` under the marker fragment's `(ssrc, seq)`.
    pub fn register(&self, ssrc: u32, seq: u16, trace: FrameTrace) {
        let mut inner = self.inner.lock().unwrap();
        let key = (ssrc, seq);
        if inner.pending.insert(key, trace).is_none() {
            inner.pending_order.push_back(key);
        }
        while inner.pending.len() > self.capacity {
            if let Some(old) = inner.pending_order.pop_front() {
                if inner.pending.remove(&old).is_some() {
                    self.evicted.inc();
                }
            } else {
                break;
            }
        }
        self.registered.inc();
    }

    /// Receiver side: a message keyed by `(ssrc, seq)` finished reassembly
    /// and decoded in `decode_wall_us`. Returns the stage breakdown, or
    /// `None` for untraced messages (evicted, or predating the sink).
    pub fn complete(
        &self,
        ssrc: u32,
        seq: u16,
        delivered_at_us: u64,
        decode_wall_us: u64,
    ) -> Option<StageLatencies> {
        let mut inner = self.inner.lock().unwrap();
        let trace = *inner.pending.get(&(ssrc, seq))?;
        let stages = compute_stages(&trace, delivered_at_us, decode_wall_us);
        inner.completed.push_back(CompletedTrace {
            ssrc,
            seq,
            delivered_at_us,
            trace,
            stages,
        });
        while inner.completed.len() > self.capacity {
            inner.completed.pop_front();
        }
        self.completed.inc();
        Some(stages)
    }

    /// Copy of all retained completed traces, oldest first.
    pub fn completed_traces(&self) -> Vec<CompletedTrace> {
        self.inner
            .lock()
            .unwrap()
            .completed
            .iter()
            .copied()
            .collect()
    }

    /// Number of currently pending (registered, not yet completed) traces.
    pub fn pending_len(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }
}

fn compute_stages(trace: &FrameTrace, delivered_at_us: u64, decode_wall_us: u64) -> StageLatencies {
    let damage_us = trace.sent_at_us.saturating_sub(trace.damage_at_us);
    let transport_us = delivered_at_us.saturating_sub(trace.sent_at_us);
    let encode_us = trace.encode_wall_us;
    let fragment_us = trace.fragment_wall_us;
    let decode_us = decode_wall_us;
    StageLatencies {
        damage_us,
        encode_us,
        fragment_us,
        transport_us,
        decode_us,
        total_us: damage_us + encode_us + fragment_us + transport_us + decode_us,
    }
}

/// The five pipeline stages plus the total, in reporting order.
pub const STAGE_NAMES: [&str; 6] = [
    "damage",
    "encode",
    "fragment",
    "transport",
    "decode",
    "total",
];

/// Registry-backed histograms for each pipeline stage.
#[derive(Debug, Clone)]
pub struct StageHistograms {
    /// One histogram per entry of [`STAGE_NAMES`].
    hists: [Histogram; 6],
}

impl StageHistograms {
    /// Create (or re-attach to) `pipeline.<stage>_us` histograms on `registry`.
    pub fn new(registry: &Registry) -> Self {
        let hists = STAGE_NAMES.map(|s| registry.histogram(&format!("pipeline.{s}_us")));
        StageHistograms { hists }
    }

    /// Record one delivered frame's breakdown.
    pub fn record(&self, stages: &StageLatencies) {
        let values = [
            stages.damage_us,
            stages.encode_us,
            stages.fragment_us,
            stages.transport_us,
            stages.decode_us,
            stages.total_us,
        ];
        for (h, v) in self.hists.iter().zip(values) {
            h.record(v);
        }
    }
}

/// The observability bundle threaded through the pipeline: one shared
/// registry, one shared trace sink, the stage histograms connecting them,
/// plus the session's flight recorder and health engine.
#[derive(Debug, Clone)]
pub struct Obs {
    /// The metric registry every component exports into.
    pub registry: Registry,
    /// Frame traces in flight and completed.
    pub traces: TraceSink,
    /// The always-on black-box event ring.
    pub recorder: Arc<crate::events::FlightRecorder>,
    /// The rolling-window SLO engine (locked only on `health_check`).
    pub health: Arc<Mutex<crate::health::HealthEngine>>,
    stage_hists: StageHistograms,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh bundle with an empty registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        let traces = TraceSink::default();
        traces.register_metrics(&registry);
        let stage_hists = StageHistograms::new(&registry);
        Obs {
            registry,
            traces,
            recorder: Arc::new(crate::events::FlightRecorder::default()),
            health: Arc::new(Mutex::new(crate::health::HealthEngine::default())),
            stage_hists,
        }
    }

    /// Record one flight-recorder event (see [`crate::events::EventKind`]
    /// for the `a`/`b` payload conventions).
    pub fn event(&self, ts_us: u64, actor: u16, kind: crate::events::EventKind, a: u64, b: u64) {
        self.recorder.record(ts_us, actor, kind, a, b);
    }

    /// Evaluate the health rules at `now_us` (dumping the black box on a
    /// CRITICAL transition — see [`crate::health::HealthEngine::check`]).
    pub fn health_check(&self, now_us: u64) -> crate::health::HealthReport {
        self.health
            .lock()
            .unwrap()
            .check(now_us, &self.registry, &self.recorder)
    }

    /// Export completed stage spans plus the current event ring as
    /// Chrome-trace JSON (see [`crate::timeline`]).
    pub fn export_chrome_trace(&self) -> String {
        crate::timeline::chrome_trace_json(
            &self.traces.completed_traces(),
            &self.recorder.snapshot(),
        )
    }

    /// Receiver-side completion: resolve the trace for `(ssrc, seq)`, record
    /// its breakdown into the `pipeline.*_us` histograms, and return it.
    pub fn complete_frame(
        &self,
        ssrc: u32,
        seq: u16,
        delivered_at_us: u64,
        decode_wall_us: u64,
    ) -> Option<StageLatencies> {
        let stages = self
            .traces
            .complete(ssrc, seq, delivered_at_us, decode_wall_us)?;
        self.stage_hists.record(&stages);
        Some(stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(damage: u64, sent: u64) -> FrameTrace {
        FrameTrace {
            window_id: 1,
            damage_at_us: damage,
            sent_at_us: sent,
            encode_wall_us: 40,
            fragment_wall_us: 5,
            fragments: 3,
            bytes: 2048,
        }
    }

    #[test]
    fn register_complete_breakdown() {
        let sink = TraceSink::default();
        sink.register(7, 100, trace(1_000, 3_000));
        let stages = sink.complete(7, 100, 10_000, 25).unwrap();
        assert_eq!(stages.damage_us, 2_000);
        assert_eq!(stages.transport_us, 7_000);
        assert_eq!(stages.encode_us, 40);
        assert_eq!(stages.fragment_us, 5);
        assert_eq!(stages.decode_us, 25);
        assert_eq!(stages.total_us, 2_000 + 7_000 + 40 + 5 + 25);
        assert_eq!(sink.completed_traces().len(), 1);
    }

    #[test]
    fn unknown_key_returns_none() {
        let sink = TraceSink::default();
        assert!(sink.complete(1, 1, 10, 0).is_none());
    }

    #[test]
    fn completion_is_non_destructive_for_multicast() {
        let sink = TraceSink::default();
        sink.register(9, 5, trace(0, 100));
        let a = sink.complete(9, 5, 400, 10).unwrap();
        let b = sink.complete(9, 5, 900, 12).unwrap();
        assert_eq!(a.transport_us, 300);
        assert_eq!(b.transport_us, 800);
        assert_eq!(sink.completed_traces().len(), 2);
    }

    #[test]
    fn pending_evicts_fifo_past_capacity() {
        let sink = TraceSink::with_capacity(4);
        for seq in 0..10u16 {
            sink.register(1, seq, trace(0, 1));
        }
        assert_eq!(sink.pending_len(), 4);
        assert!(sink.complete(1, 0, 10, 0).is_none(), "oldest evicted");
        assert!(sink.complete(1, 9, 10, 0).is_some(), "newest retained");
    }

    #[test]
    fn obs_records_stage_histograms() {
        let obs = Obs::new();
        obs.traces.register(3, 1, trace(0, 1_000));
        obs.traces.register(3, 2, trace(500, 2_000));
        obs.complete_frame(3, 1, 5_000, 30).unwrap();
        obs.complete_frame(3, 2, 4_000, 20).unwrap();
        let snap = obs.registry.snapshot();
        for stage in STAGE_NAMES {
            let h = snap
                .histogram(&format!("pipeline.{stage}_us"))
                .unwrap_or_else(|| panic!("missing pipeline.{stage}_us"));
            assert_eq!(h.count, 2, "pipeline.{stage}_us");
        }
        assert_eq!(snap.counter("trace.registered"), Some(2));
        assert_eq!(snap.counter("trace.completed"), Some(2));
        let transport = snap.histogram("pipeline.transport_us").unwrap();
        assert_eq!(transport.max, 4_000);
    }

    #[test]
    fn duplicate_registration_overwrites_in_place() {
        let sink = TraceSink::with_capacity(8);
        sink.register(1, 1, trace(0, 100));
        sink.register(1, 1, trace(0, 200));
        assert_eq!(sink.pending_len(), 1);
        let stages = sink.complete(1, 1, 300, 0).unwrap();
        assert_eq!(stages.transport_us, 100, "latest registration wins");
    }
}
