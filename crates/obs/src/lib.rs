//! # adshare-obs — unified observability for the adshare pipeline
//!
//! One registry, three metric kinds, one trace token:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: atomic handles updated lock-free
//!   on hot paths; the log₂-bucket histogram reports p50/p90/p99.
//! - [`Registry`]: hierarchical dot-separated names (`ah.encode_us`,
//!   `participant.0.udp.tx_bytes`), idempotent registration, *adoption* of
//!   handles owned by existing structs, and JSON [`Snapshot`] export
//!   (`adshare-obs/v1`).
//! - [`FrameTrace`] + [`TraceSink`]: follows one `RegionUpdate` from damage
//!   observation through encode, fragmentation, and transport to decode,
//!   yielding a per-stage [`StageLatencies`] breakdown keyed on
//!   `(ssrc, marker fragment sequence)` with no wire-format change.
//! - [`FlightRecorder`]: a lock-free fixed-capacity ring of compact
//!   structured [`Event`]s (NACK/PLI, retransmits, rate decisions, cache
//!   hits, floor control) — the session's always-on black box.
//! - [`HealthEngine`]: rolling-window SLO rules over metrics + events with
//!   CRITICAL-triggered black-box dumps.
//! - [`timeline`]: Chrome-trace / Perfetto JSON export merging stage spans
//!   and recorder events.
//! - [`Obs`]: the cloneable bundle (registry + sink + stage histograms +
//!   recorder + health) threaded through AH, participants, and transports.
//!
//! See DESIGN.md § Observability and § Flight recorder & health for the
//! naming scheme and how to add a metric, event, or rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod health;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use events::{
    Event, EventKind, FlightRecorder, ACTOR_AH, ACTOR_LEG_BASE, ACTOR_RELAY, EVENTS_SCHEMA,
    EVENT_KINDS, RATE_CAUSE_BACKLOG, RATE_CAUSE_LOSS_REPORT, RATE_CAUSE_NACK_BURST,
};
pub use health::{
    DumpSink, HealthConfig, HealthEngine, HealthReport, HealthStatus, RuleReport, BLACKBOX_SCHEMA,
    HEALTH_SCHEMA,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricSnapshot, Registry, Snapshot, SNAPSHOT_SCHEMA};
pub use timeline::{
    chrome_trace_json, chrome_trace_json_with_packets, validate_chrome_trace, PacketSample,
};
pub use trace::{
    CompletedTrace, FrameTrace, Obs, StageHistograms, StageLatencies, TraceSink, STAGE_NAMES,
};
