//! # adshare-obs — unified observability for the adshare pipeline
//!
//! One registry, three metric kinds, one trace token:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: atomic handles updated lock-free
//!   on hot paths; the log₂-bucket histogram reports p50/p90/p99.
//! - [`Registry`]: hierarchical dot-separated names (`ah.encode_us`,
//!   `participant.0.udp.tx_bytes`), idempotent registration, *adoption* of
//!   handles owned by existing structs, and JSON [`Snapshot`] export
//!   (`adshare-obs/v1`).
//! - [`FrameTrace`] + [`TraceSink`]: follows one `RegionUpdate` from damage
//!   observation through encode, fragmentation, and transport to decode,
//!   yielding a per-stage [`StageLatencies`] breakdown keyed on
//!   `(ssrc, marker fragment sequence)` with no wire-format change.
//! - [`Obs`]: the cloneable bundle (registry + sink + stage histograms)
//!   threaded through AH, participants, and transports.
//!
//! See DESIGN.md § Observability for the naming scheme and how to add a
//! metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricSnapshot, Registry, Snapshot, SNAPSHOT_SCHEMA};
pub use trace::{
    CompletedTrace, FrameTrace, Obs, StageHistograms, StageLatencies, TraceSink, STAGE_NAMES,
};
