//! The flight recorder: a fixed-capacity, lock-free ring buffer of compact
//! structured events — the black box every session carries.
//!
//! Metrics (PR 1) answer *how much*; traces answer *how long*; the recorder
//! answers *what happened, in what order* — the question a NACK storm or a
//! rate collapse poses after the fact. Recording is always-on: a write is
//! one `fetch_add` plus six relaxed atomic stores, cheap enough for bench
//! runs and per-packet call sites.
//!
//! ## Lock freedom without `unsafe`
//!
//! The crate forbids `unsafe`, so the classic reserve-then-memcpy ring is
//! out. Instead every slot is six `AtomicU64` words, the write cursor is a
//! global `fetch_add` (reserving a unique sequence number → slot per lap),
//! and the last word is a **checksum** of the other five mixed with a
//! constant. A reader validates the checksum before accepting a slot; a
//! torn slot — two writers a full lap apart interleaving, or a read racing
//! a write — fails validation and is skipped rather than surfaced as a
//! garbage event. [`FlightRecorder::snapshot`] returns the survivors in
//! sequence order, so consumers always see a monotonic, untorn event log.

use std::sync::atomic::{AtomicU64, Ordering};

/// Actor id for the application host itself (participants use their index).
pub const ACTOR_AH: u16 = 0xFFFF;

/// Actor id for a relay node (its downstream legs use their leg index).
pub const ACTOR_RELAY: u16 = 0xFFFE;

/// Relay downstream legs record events under `ACTOR_LEG_BASE | leg_index`
/// so they never collide with AH participant indices in a shared registry.
pub const ACTOR_LEG_BASE: u16 = 0x8000;

/// Schema marker for the JSON event-log export.
pub const EVENTS_SCHEMA: &str = "adshare-obs-events/v1";

/// Cause code for a rate decrease driven by an RTCP receiver-report loss
/// fraction above the threshold.
pub const RATE_CAUSE_LOSS_REPORT: u64 = 1;
/// Cause code for a rate decrease driven by a NACK burst.
pub const RATE_CAUSE_NACK_BURST: u64 = 2;
/// Cause code for a rate decrease driven by TCP send-backlog pressure.
pub const RATE_CAUSE_BACKLOG: u64 = 3;

/// What happened. Each variant documents the meaning of the event's `a`/`b`
/// payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A region update hit the wire. `a` = RTP sequence of the marker
    /// fragment, `b` = (fragments << 32) | payload bytes.
    RtpTx = 1,
    /// A participant received an RTP datagram. `a` = RTP sequence,
    /// `b` = payload bytes.
    RtpRx = 2,
    /// A partial reassembly was abandoned (lost end fragment or gap
    /// recovery). `a` = total partials dropped so far.
    FragmentDrop = 3,
    /// A multi-fragment message finished reassembly. `a` = RTP sequence of
    /// the marker fragment, `b` = reassembled body bytes.
    Reassembled = 4,
    /// A participant sent a NACK. `a` = missing sequence count, `b` = first
    /// missing sequence.
    NackSent = 5,
    /// The AH received a NACK. `a` = missing sequence count, `b` = first
    /// missing sequence.
    NackReceived = 6,
    /// A participant requested a full refresh (PLI). `a` = PLIs sent so far.
    PliSent = 7,
    /// The AH received a PLI. `a` = 1 if the refresh was served, 0 if
    /// throttled by the rate controller.
    PliReceived = 8,
    /// A retransmit was served from history. `a` = RTP sequence, `b` = bytes.
    RetxServed = 9,
    /// A NACKed sequence had already left the history. `a` = RTP sequence.
    RetxExpired = 10,
    /// A multicast retransmit was suppressed (served within the dedup
    /// window). `a` = RTP sequence.
    RetxSuppressed = 11,
    /// The estimator's additive increase raised the pacing rate. `a` = new
    /// rate in bit/s, `b` = previous rate in bit/s.
    RateUp = 12,
    /// The estimator cut the pacing rate. `a` = new rate in bit/s, `b` =
    /// cause ([`RATE_CAUSE_LOSS_REPORT`], [`RATE_CAUSE_NACK_BURST`],
    /// [`RATE_CAUSE_BACKLOG`]).
    RateDown = 13,
    /// The pacer's fresh queue superseded stale updates with fresher
    /// coverage. `a` = updates dropped.
    PacerSupersede = 14,
    /// Encode-cache hits in one batch (cross-frame + intra-batch dedup).
    /// `a` = hits, `b` = tiles in the batch.
    CacheHit = 15,
    /// Encode-cache misses (fresh encodes) in one batch. `a` = misses,
    /// `b` = tiles in the batch.
    CacheMiss = 16,
    /// Encode-cache evictions to hold the byte budget. `a` = entries
    /// evicted.
    CacheEvict = 17,
    /// A TCP send was skipped because the link still had backlog (the §7
    /// freshest-frame policy). `a` = backlogged messages.
    BacklogSkip = 18,
    /// Reassembly copy accounting for one completed message. `a` = heap
    /// allocations, `b` = bytes copied (0/0 for the zero-copy single-slice
    /// path).
    ReassemblyCopy = 19,
    /// The BFCP chair granted the floor. `a` = user id.
    FloorGrant = 20,
    /// The BFCP chair revoked the floor. `a` = user id.
    FloorRevoke = 21,
    /// The health engine's overall status changed. `a` = new status
    /// (0 = OK, 1 = DEGRADED, 2 = CRITICAL), `b` = previous status.
    HealthTransition = 22,
    /// A relay forwarded one reassembled upstream message downstream.
    /// Actor = downstream leg index. `a` = upstream sequence of the last
    /// packet, `b` = (packets << 32) | wire bytes.
    RelayForward = 23,
    /// A relay retransmit-cache probe found the NACKed packet. `a` = the
    /// upstream sequence, `b` = cached wire bytes.
    RelayCacheHit = 24,
    /// A relay retransmit-cache probe missed (already evicted or never
    /// seen). `a` = the upstream sequence.
    RelayCacheMiss = 25,
    /// A downstream NACK was answered entirely from the relay cache.
    /// Actor = downstream leg index. `a` = sequences served, `b` = first
    /// sequence.
    RelayNackAbsorbed = 26,
    /// Cache misses forced the relay to NACK upstream. `a` = sequences
    /// escalated, `b` = first sequence.
    RelayNackEscalated = 27,
    /// A downstream PLI was handled at the relay. `a` = 1 if an upstream
    /// PLI was sent, 0 if coalesced into the refresh interval, `b` = leg.
    RelayPliCoalesced = 28,
    /// A late joiner was served a synthesized catch-up burst. Actor = the
    /// joining leg index. `a` = packets in the burst, `b` = burst bytes.
    RelayCatchupServed = 29,
    /// A participant delivered (decoded and applied) one traced frame.
    /// `a` = virtual-time staleness in µs (damage observed → delivered,
    /// excluding wall-clock encode/decode costs, so the value is
    /// deterministic under a seeded simulation), `b` = marker RTP sequence.
    FrameDelivered = 30,
    /// A wire capture was armed (consent granted). `a` = 1 for ring mode
    /// (0 = full), `b` = ring window in µs (0 for full captures).
    CaptureArmed = 31,
    /// A ring capture overwrote old records to hold its window. `a` =
    /// total records truncated so far, `b` = total payload bytes truncated.
    CaptureTruncated = 32,
    /// A capture was finalized and flushed. `a` = records retained, `b` =
    /// payload bytes retained.
    CaptureFlushed = 33,
    /// A layered-quality sender committed a tier switch at a unit
    /// boundary. Actor = the leg (or AH participant) switching. `a` = new
    /// tier gauge (0 = lossless … 2 = economy), `b` = previous tier gauge.
    TierSwitch = 34,
    /// A tier subscription changed hands: a relay asked its upstream for a
    /// different tier, or a sender accepted one. `a` = requested tier
    /// gauge, `b` = 1 when sent upstream, 0 when received/applied.
    TierRequest = 35,
}

/// Every kind, in discriminant order (drives schema docs and name lookup).
pub const EVENT_KINDS: [EventKind; 35] = [
    EventKind::RtpTx,
    EventKind::RtpRx,
    EventKind::FragmentDrop,
    EventKind::Reassembled,
    EventKind::NackSent,
    EventKind::NackReceived,
    EventKind::PliSent,
    EventKind::PliReceived,
    EventKind::RetxServed,
    EventKind::RetxExpired,
    EventKind::RetxSuppressed,
    EventKind::RateUp,
    EventKind::RateDown,
    EventKind::PacerSupersede,
    EventKind::CacheHit,
    EventKind::CacheMiss,
    EventKind::CacheEvict,
    EventKind::BacklogSkip,
    EventKind::ReassemblyCopy,
    EventKind::FloorGrant,
    EventKind::FloorRevoke,
    EventKind::HealthTransition,
    EventKind::RelayForward,
    EventKind::RelayCacheHit,
    EventKind::RelayCacheMiss,
    EventKind::RelayNackAbsorbed,
    EventKind::RelayNackEscalated,
    EventKind::RelayPliCoalesced,
    EventKind::RelayCatchupServed,
    EventKind::FrameDelivered,
    EventKind::CaptureArmed,
    EventKind::CaptureTruncated,
    EventKind::CaptureFlushed,
    EventKind::TierSwitch,
    EventKind::TierRequest,
];

impl EventKind {
    /// Stable snake_case name (used in JSON export and timeline tracks).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RtpTx => "rtp_tx",
            EventKind::RtpRx => "rtp_rx",
            EventKind::FragmentDrop => "fragment_drop",
            EventKind::Reassembled => "reassembled",
            EventKind::NackSent => "nack_sent",
            EventKind::NackReceived => "nack_received",
            EventKind::PliSent => "pli_sent",
            EventKind::PliReceived => "pli_received",
            EventKind::RetxServed => "retx_served",
            EventKind::RetxExpired => "retx_expired",
            EventKind::RetxSuppressed => "retx_suppressed",
            EventKind::RateUp => "rate_up",
            EventKind::RateDown => "rate_down",
            EventKind::PacerSupersede => "pacer_supersede",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheEvict => "cache_evict",
            EventKind::BacklogSkip => "backlog_skip",
            EventKind::ReassemblyCopy => "reassembly_copy",
            EventKind::FloorGrant => "floor_grant",
            EventKind::FloorRevoke => "floor_revoke",
            EventKind::HealthTransition => "health_transition",
            EventKind::RelayForward => "relay_forward",
            EventKind::RelayCacheHit => "relay_cache_hit",
            EventKind::RelayCacheMiss => "relay_cache_miss",
            EventKind::RelayNackAbsorbed => "relay_nack_absorbed",
            EventKind::RelayNackEscalated => "relay_nack_escalated",
            EventKind::RelayPliCoalesced => "relay_pli_coalesced",
            EventKind::RelayCatchupServed => "relay_catchup_served",
            EventKind::FrameDelivered => "frame_delivered",
            EventKind::CaptureArmed => "capture_armed",
            EventKind::CaptureTruncated => "capture_truncated",
            EventKind::CaptureFlushed => "capture_flushed",
            EventKind::TierSwitch => "tier_switch",
            EventKind::TierRequest => "tier_request",
        }
    }

    /// Reverse of the `repr(u8)` discriminant; `None` for unknown values
    /// (a torn slot that survived the checksum, or a future version).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EVENT_KINDS.get(v.wrapping_sub(1) as usize).copied()
    }
}

/// One decoded recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (monotonic across the whole session).
    pub seq: u64,
    /// Virtual-time microseconds when the event was recorded.
    pub ts_us: u64,
    /// Who: a participant index, or [`ACTOR_AH`] for the host.
    pub actor: u16,
    /// What.
    pub kind: EventKind,
    /// First payload word (meaning per [`EventKind`]).
    pub a: u64,
    /// Second payload word (meaning per [`EventKind`]).
    pub b: u64,
}

/// One ring slot: five data words plus the validating checksum.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    chk: AtomicU64,
}

/// Mixed into every checksum so an all-zero slot never validates.
const CHK_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn checksum(seq: u64, ts: u64, meta: u64, a: u64, b: u64) -> u64 {
    // xor alone would let two swapped words cancel; rotate between terms.
    let mut h = CHK_SEED ^ seq;
    for w in [ts, meta, a, b] {
        h = h.rotate_left(17) ^ w;
    }
    h
}

/// The per-session black box: a power-of-two ring of slots written
/// lock-free and read (rarely) by snapshot, dump, and timeline export.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(8192)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap).map(|_| Slot::default()).collect::<Vec<_>>();
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// Slot count (events retained once the ring has wrapped).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ retained once wrapped).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free; safe from any thread.
    pub fn record(&self, ts_us: u64, actor: u16, kind: EventKind, a: u64, b: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let meta = ((actor as u64) << 8) | kind as u64;
        slot.seq.store(seq, Ordering::Relaxed);
        slot.ts.store(ts_us, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.chk
            .store(checksum(seq, ts_us, meta, a, b), Ordering::Release);
    }

    /// Decode the ring: every slot whose checksum validates, in sequence
    /// order. Torn slots (a read racing a write, or a lapped stalled
    /// writer) are silently skipped — the log is always consistent, merely
    /// occasionally one event short at the churn frontier.
    pub fn snapshot(&self) -> Vec<Event> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(self.slots.len().min(cursor as usize));
        for (idx, slot) in self.slots.iter().enumerate() {
            let chk = slot.chk.load(Ordering::Acquire);
            let seq = slot.seq.load(Ordering::Relaxed);
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if chk != checksum(seq, ts, meta, a, b) {
                continue; // torn or never written
            }
            if seq & self.mask != idx as u64 || seq >= cursor {
                continue; // slot content belongs to a different lap
            }
            let Some(kind) = EventKind::from_u8((meta & 0xff) as u8) else {
                continue;
            };
            out.push(Event {
                seq,
                ts_us: ts,
                actor: (meta >> 8) as u16,
                kind,
                a,
                b,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events with `ts_us >= since_us`, in sequence order.
    pub fn snapshot_since(&self, since_us: u64) -> Vec<Event> {
        let mut v = self.snapshot();
        v.retain(|e| e.ts_us >= since_us);
        v
    }

    /// Serialize the current ring contents as an `adshare-obs-events/v1`
    /// JSON document (see `schemas/obs_events.schema.json`).
    pub fn to_json(&self) -> String {
        events_to_json(&self.snapshot(), self.capacity(), self.recorded())
    }
}

/// Serialize an event list as an `adshare-obs-events/v1` document. Split
/// from [`FlightRecorder::to_json`] so black-box dumps can serialize a
/// snapshot taken earlier.
pub fn events_to_json(events: &[Event], capacity: usize, recorded: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"schema\": ");
    crate::json::write_string(&mut out, EVENTS_SCHEMA);
    out.push_str(&format!(
        ", \"capacity\": {capacity}, \"recorded\": {recorded}, \"events\": ["
    ));
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"seq\": {}, \"ts_us\": {}, \"actor\": {}, \"kind\": ",
            e.seq, e.ts_us, e.actor
        ));
        crate::json::write_string(&mut out, e.kind.name());
        out.push_str(&format!(", \"a\": {}, \"b\": {}}}", e.a, e.b));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_in_order() {
        let r = FlightRecorder::new(16);
        r.record(10, 0, EventKind::RtpRx, 1, 100);
        r.record(20, ACTOR_AH, EventKind::RtpTx, 2, 200);
        r.record(30, 1, EventKind::NackSent, 3, 300);
        let events = r.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::RtpRx);
        assert_eq!(events[1].actor, ACTOR_AH);
        assert_eq!(events[2].a, 3);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = FlightRecorder::new(8);
        for i in 0..20u64 {
            r.record(i, 0, EventKind::RtpTx, i, 0);
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().a, 12);
        assert_eq!(events.last().unwrap().a, 19);
        assert_eq!(r.recorded(), 20);
    }

    #[test]
    fn kind_name_round_trip() {
        for kind in EVENT_KINDS {
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind), "{kind:?}");
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn json_export_parses_with_schema_marker() {
        let r = FlightRecorder::new(8);
        r.record(5, 2, EventKind::CacheHit, 7, 9);
        let doc = crate::json::parse(&r.to_json()).expect("valid json");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(EVENTS_SCHEMA)
        );
        let events = doc.get("events").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("kind").and_then(|k| k.as_str()),
            Some("cache_hit")
        );
        assert_eq!(events[0].get("a").and_then(|v| v.as_u64()), Some(7));
    }

    #[test]
    fn concurrent_writers_produce_untorn_monotonic_log() {
        let r = std::sync::Arc::new(FlightRecorder::new(64));
        let threads: Vec<_> = (0..4u16)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        r.record(i, t, EventKind::RtpRx, i, u64::from(t));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = r.snapshot();
        assert!(!events.is_empty());
        assert!(events.len() <= 64);
        for e in &events {
            // Payload invariant each writer maintained: b is the writer id
            // and matches the actor. A torn slot would almost surely break
            // either this or the checksum.
            assert_eq!(e.b, u64::from(e.actor));
        }
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
