//! Chrome-trace / Perfetto timeline export.
//!
//! Merges the two temporal sources adshare-obs collects — completed
//! [`CompletedTrace`] stage spans and [`FlightRecorder`](crate::events)
//! events — into one Chrome-trace JSON document that loads directly in
//! `ui.perfetto.dev` (or `chrome://tracing`). Layout:
//!
//! - one track per pipeline stage (`pipeline.damage`, `pipeline.transport`,
//!   …) carrying `B`/`E` span pairs for every delivered frame, args holding
//!   the marker sequence and byte counts;
//! - one track for AH-side recorder events and one per participant,
//!   carrying instant (`ph: "i"`) events named by
//!   [`EventKind::name`](crate::events::EventKind::name).
//!
//! Serialization is by hand on top of [`crate::json`] (serde is
//! unavailable offline); [`validate_chrome_trace`] re-parses a document and
//! checks the structural invariants Perfetto relies on — used by the
//! proptest suite and by `adshare-demo sim --trace` before writing the
//! file.

use crate::events::{Event, ACTOR_AH};
use crate::json::{self, Json};
use crate::trace::{CompletedTrace, STAGE_NAMES};

/// Synthetic pid for the whole session (Chrome traces require one).
const PID: u64 = 1;
/// First tid of the per-stage span tracks.
const TID_STAGES: u64 = 10;
/// Tid of the AH event track; participant `i` uses `TID_AH_EVENTS + 1 + i`.
const TID_AH_EVENTS: u64 = 100;
/// First tid of the capture packet tracks (historical export); a sample on
/// `lane` renders on `TID_CAPTURE + lane`.
const TID_CAPTURE: u64 = 200;

/// One captured datagram rendered as a timeline instant — the bridge that
/// lets a wire capture merge into the Chrome-trace export without this
/// crate depending on `adshare-capture` (the session layer converts
/// capture records into samples).
///
/// Timestamps must come from the same virtual clock the flight recorder
/// stamps; the exporter interleaves both sources on one axis, so a second
/// clock would render negative or misaligned spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSample {
    /// Track label shown in Perfetto, e.g. `capture.tx` or `capture.rx`.
    pub track: String,
    /// Track lane: the sample renders on tid `TID_CAPTURE + lane`. Use one
    /// lane per (direction, actor) so tracks don't interleave.
    pub lane: u64,
    /// Instant name, e.g. the stream kind (`rtp`, `rtcp`, `hip`).
    pub name: String,
    /// Virtual-time microseconds when the datagram crossed the tap.
    pub ts_us: u64,
    /// Payload bytes on the wire.
    pub bytes: u64,
    /// Originating actor id.
    pub actor: u16,
}

fn event_tid(actor: u16) -> u64 {
    if actor == ACTOR_AH {
        TID_AH_EVENTS
    } else {
        TID_AH_EVENTS + 1 + u64::from(actor)
    }
}

fn push_meta(out: &mut String, tid: u64, name: &str) {
    out.push_str(&format!(
        "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \"args\": {{\"name\": "
    ));
    json::write_string(out, name);
    out.push_str("}}");
}

fn push_span(out: &mut String, name: &str, tid: u64, ts: u64, dur: u64, args: &str) {
    out.push_str("{\"name\": ");
    json::write_string(out, name);
    out.push_str(&format!(
        ", \"ph\": \"B\", \"pid\": {PID}, \"tid\": {tid}, \"ts\": {ts}, \"args\": {args}}}, "
    ));
    out.push_str("{\"name\": ");
    json::write_string(out, name);
    out.push_str(&format!(
        ", \"ph\": \"E\", \"pid\": {PID}, \"tid\": {tid}, \"ts\": {}}}",
        ts + dur
    ));
}

/// Render completed frame traces plus recorder events as Chrome-trace JSON.
///
/// Spans are emitted as adjacent `B`/`E` pairs (balanced by construction in
/// document order — the property [`validate_chrome_trace`] checks); recorder
/// events become thread-scoped instants with their payload words as args.
pub fn chrome_trace_json(traces: &[CompletedTrace], events: &[Event]) -> String {
    chrome_trace_json_with_packets(traces, events, &[])
}

/// [`chrome_trace_json`] plus capture packet tracks — the **historical**
/// export: feed it a finalized capture's embedded flight events and its
/// records converted to [`PacketSample`]s, and any past session renders as
/// a timeline.
pub fn chrome_trace_json_with_packets(
    traces: &[CompletedTrace],
    events: &[Event],
    packets: &[PacketSample],
) -> String {
    let mut out =
        String::with_capacity(256 + traces.len() * 600 + events.len() * 160 + packets.len() * 140);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };

    // Track metadata. The "total" pseudo-stage gets no track of its own.
    for (i, stage) in STAGE_NAMES.iter().enumerate() {
        if *stage == "total" {
            continue;
        }
        sep(&mut out);
        push_meta(
            &mut out,
            TID_STAGES + i as u64,
            &format!("pipeline.{stage}"),
        );
    }
    sep(&mut out);
    push_meta(&mut out, TID_AH_EVENTS, "ah.events");
    let mut actors: Vec<u16> = events
        .iter()
        .map(|e| e.actor)
        .filter(|a| *a != ACTOR_AH)
        .collect();
    actors.sort_unstable();
    actors.dedup();
    for a in &actors {
        sep(&mut out);
        push_meta(&mut out, event_tid(*a), &format!("participant {a} events"));
    }
    let mut lanes: Vec<(u64, &str)> = packets.iter().map(|p| (p.lane, p.track.as_str())).collect();
    lanes.sort_unstable();
    lanes.dedup_by_key(|(lane, _)| *lane);
    for (lane, track) in lanes {
        sep(&mut out);
        push_meta(&mut out, TID_CAPTURE + lane, track);
    }

    // Stage spans. Virtual-time stages (damage, transport) sit at their
    // true positions; wall-clock stages (encode, fragment, decode) are
    // placed back-to-back after the span they belong to, so the frame reads
    // left-to-right even though the axes differ (see trace.rs module docs).
    for t in traces {
        let args = format!(
            "{{\"ssrc\": {}, \"seq\": {}, \"window\": {}, \"bytes\": {}, \"fragments\": {}}}",
            t.ssrc, t.seq, t.trace.window_id, t.trace.bytes, t.trace.fragments
        );
        let spans: [(usize, u64, u64); 5] = [
            (0, t.trace.damage_at_us, t.stages.damage_us),
            (1, t.trace.sent_at_us, t.stages.encode_us),
            (
                2,
                t.trace.sent_at_us + t.stages.encode_us,
                t.stages.fragment_us,
            ),
            (3, t.trace.sent_at_us, t.stages.transport_us),
            (4, t.delivered_at_us, t.stages.decode_us),
        ];
        for (stage_idx, ts, dur) in spans {
            sep(&mut out);
            push_span(
                &mut out,
                &format!("{} #{}", STAGE_NAMES[stage_idx], t.seq),
                TID_STAGES + stage_idx as u64,
                ts,
                dur,
                &args,
            );
        }
    }

    // Recorder events as thread-scoped instants.
    for e in events {
        sep(&mut out);
        out.push_str("{\"name\": ");
        json::write_string(&mut out, e.kind.name());
        out.push_str(&format!(
            ", \"ph\": \"i\", \"s\": \"t\", \"pid\": {PID}, \"tid\": {}, \"ts\": {}, \"args\": {{\"seq\": {}, \"a\": {}, \"b\": {}}}}}",
            event_tid(e.actor),
            e.ts_us,
            e.seq,
            e.a,
            e.b
        ));
    }

    // Capture packet samples as thread-scoped instants on their lanes.
    for p in packets {
        sep(&mut out);
        out.push_str("{\"name\": ");
        json::write_string(&mut out, &p.name);
        out.push_str(&format!(
            ", \"ph\": \"i\", \"s\": \"t\", \"pid\": {PID}, \"tid\": {}, \"ts\": {}, \"args\": {{\"bytes\": {}, \"actor\": {}}}}}",
            TID_CAPTURE + p.lane,
            p.ts_us,
            p.bytes,
            p.actor
        ));
    }

    out.push_str("]}");
    out
}

fn field<'a>(obj: &'a Json, key: &str, idx: usize) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("traceEvents[{idx}]: missing \"{key}\""))
}

/// Structural validation of a Chrome-trace JSON document.
///
/// Checks what Perfetto's legacy JSON importer needs: the document parses
/// (so all string escaping is valid), `traceEvents` is an array, every
/// entry has a string `name` and `ph`, non-metadata entries carry integer
/// `ts`, and `B`/`E` pairs are balanced per `(pid, tid)` in document order
/// with non-negative span durations.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<(String, u64)>> =
        std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = field(ev, "name", i)?
            .as_str()
            .ok_or_else(|| format!("traceEvents[{i}]: name not a string"))?
            .to_string();
        let ph = field(ev, "ph", i)?
            .as_str()
            .ok_or_else(|| format!("traceEvents[{i}]: ph not a string"))?;
        if ph == "M" {
            continue;
        }
        let ts = field(ev, "ts", i)?
            .as_u64()
            .ok_or_else(|| format!("traceEvents[{i}]: ts not a non-negative integer"))?;
        let pid = field(ev, "pid", i)?.as_u64().unwrap_or(0);
        let tid = field(ev, "tid", i)?.as_u64().unwrap_or(0);
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push((name, ts)),
            "E" => {
                let (open, begin_ts) =
                    stacks.entry((pid, tid)).or_default().pop().ok_or_else(|| {
                        format!("traceEvents[{i}]: E without open B on tid {tid}")
                    })?;
                if open != name {
                    return Err(format!(
                        "traceEvents[{i}]: E \"{name}\" closes B \"{open}\""
                    ));
                }
                if ts < begin_ts {
                    return Err(format!(
                        "traceEvents[{i}]: span \"{name}\" ends at {ts} before it begins at {begin_ts}"
                    ));
                }
            }
            "i" | "X" => {}
            other => return Err(format!("traceEvents[{i}]: unsupported ph \"{other}\"")),
        }
    }
    for ((_, tid), stack) in stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("unclosed B \"{name}\" on tid {tid}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, FlightRecorder};
    use crate::trace::{FrameTrace, StageLatencies};

    fn completed(seq: u16) -> CompletedTrace {
        CompletedTrace {
            ssrc: 0x1234,
            seq,
            delivered_at_us: 9_000,
            trace: FrameTrace {
                window_id: 1,
                damage_at_us: 1_000,
                sent_at_us: 3_000,
                encode_wall_us: 150,
                fragment_wall_us: 12,
                fragments: 4,
                bytes: 5_000,
            },
            stages: StageLatencies {
                damage_us: 2_000,
                encode_us: 150,
                fragment_us: 12,
                transport_us: 6_000,
                decode_us: 40,
                total_us: 8_202,
            },
        }
    }

    #[test]
    fn export_validates_and_carries_both_sources() {
        let r = FlightRecorder::new(16);
        r.record(3_000, ACTOR_AH, EventKind::RtpTx, 7, 5_000);
        r.record(9_000, 0, EventKind::Reassembled, 7, 5_000);
        let text = chrome_trace_json(&[completed(7)], &r.snapshot());
        validate_chrome_trace(&text).expect("valid chrome trace");
        assert!(text.contains("\"rtp_tx\""));
        assert!(text.contains("transport #7"));
        assert!(text.contains("participant 0 events"));
    }

    #[test]
    fn empty_inputs_still_validate() {
        let text = chrome_trace_json(&[], &[]);
        validate_chrome_trace(&text).expect("valid chrome trace");
    }

    #[test]
    fn packet_samples_merge_into_capture_lanes() {
        let r = FlightRecorder::new(16);
        r.record(3_000, ACTOR_AH, EventKind::RtpTx, 7, 5_000);
        let packets = vec![
            PacketSample {
                track: "capture.tx".into(),
                lane: 0,
                name: "rtp".into(),
                ts_us: 3_100,
                bytes: 1_200,
                actor: ACTOR_AH,
            },
            PacketSample {
                track: "capture.rx".into(),
                lane: 1,
                name: "rtp".into(),
                ts_us: 3_400,
                bytes: 1_200,
                actor: 0,
            },
        ];
        let text = chrome_trace_json_with_packets(&[completed(7)], &r.snapshot(), &packets);
        validate_chrome_trace(&text).expect("valid merged trace");
        assert!(text.contains("capture.tx"));
        assert!(text.contains("capture.rx"));
        assert!(text.contains("\"tid\": 200"));
        assert!(text.contains("\"tid\": 201"));
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let text = "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\", \"pid\": 1, \"tid\": 2, \"ts\": 5}]}";
        assert!(validate_chrome_trace(text).is_err());
        let text = "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"E\", \"pid\": 1, \"tid\": 2, \"ts\": 5}]}";
        assert!(validate_chrome_trace(text).is_err());
    }

    #[test]
    fn validator_rejects_mismatched_close() {
        let text = "{\"traceEvents\": [\
            {\"name\": \"a\", \"ph\": \"B\", \"pid\": 1, \"tid\": 2, \"ts\": 5},\
            {\"name\": \"b\", \"ph\": \"E\", \"pid\": 1, \"tid\": 2, \"ts\": 6}]}";
        assert!(validate_chrome_trace(text).is_err());
    }

    #[test]
    fn names_needing_escapes_survive_round_trip() {
        // write_string must keep the document parseable even for hostile
        // names; the validator parsing it back is the proof.
        let mut out = String::from("{\"traceEvents\": [{\"name\": ");
        json::write_string(&mut out, "sp\"an\\ with\nnewline");
        out.push_str(", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": 2, \"ts\": 5}]}");
        validate_chrome_trace(&out).expect("escaped name parses");
    }
}
