//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All three are cheap cloneable handles around atomics, so hot paths update
//! them without locks; the registry only takes a lock when metrics are
//! (un)registered or snapshotted.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1)
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `other` is a handle to the same underlying counter.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A signed instantaneous value (queue depths, in-flight bytes, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Whether `other` is a handle to the same underlying gauge.
    pub fn same_as(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Number of histogram buckets: bucket `i > 0` holds values whose bit length
/// is `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 0 holds zero.
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucket histogram for latencies (µs) and sizes (bytes).
///
/// Buckets are powers of two, so the full `u64` range is covered by
/// [`BUCKETS`] slots and recording is one shift plus one atomic add.
/// Percentiles are estimated as the upper bound of the bucket containing the
/// requested rank (clamped to the observed max), giving at most 2× relative
/// error — ample for latency work where the interesting differences are
/// order-of-magnitude.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = inner.max.load(Ordering::Relaxed);
        let min = inner.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max,
            buckets,
        }
    }

    /// Whether `other` is a handle to the same underlying histogram.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Frozen histogram state, with percentile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts, indexed as in [`Histogram`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th observation, clamped to the
    /// observed max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_upper(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share state");
        assert!(c.same_as(&c2));
        assert!(!c.same_as(&Counter::new()));

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(10), 1023);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // p50 of 1..=1000 is 500; bucket upper bound gives 511.
        assert_eq!(s.p50(), 511);
        assert!(s.p99() >= 990 && s.p99() <= 1000, "p99 = {}", s.p99());
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn histogram_empty_and_singleton() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50(), s.p99()), (0, 0, 0, 0, 0));
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50()), (1, 0, 0, 0));
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.max, 7);
        assert_eq!(s.quantile(1.0), 7);
    }

    #[test]
    fn nonzero_buckets_compact() {
        let h = Histogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let nz = h.snapshot().nonzero_buckets();
        assert_eq!(nz, vec![(3, 2), (127, 1)]);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..10_000u64 {
                        h.record(v & 0xff);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
    }
}
