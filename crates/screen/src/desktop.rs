//! The simulated desktop: window contents, damage, scroll hints, pointer.
//!
//! The participant-side model in the draft is *per-window*: `RegionUpdate`
//! targets a WindowID, and "the participant MUST keep the existing window
//! image after a resize and relocation" (§5.2.1) — moving a window costs
//! only a `WindowManagerInfo` message, not pixels. The AH-side capture
//! layer therefore tracks content and damage per window (in window-local
//! coordinates) and translates to the absolute coordinates the wire format
//! uses (§4.1) at packetization time.

use std::collections::HashMap;

use adshare_codec::{Image, Rect};

use crate::damage::{DamageTracker, MergeStrategy};
use crate::pointer::Pointer;
use crate::wm::{WindowId, WindowManager};

/// A scroll executed inside a window — the source of `MoveRectangle`
/// messages (§5.2.3: "efficient for some drawing operations like scrolls").
/// Coordinates are window-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrollHint {
    /// The window that scrolled.
    pub window: WindowId,
    /// Source rectangle (window-local).
    pub src: Rect,
    /// Destination upper-left corner (window-local).
    pub dst_left: u32,
    /// Destination upper-left corner (window-local).
    pub dst_top: u32,
}

/// Pending damage for one window, window-local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Damage {
    /// The damaged window.
    pub window: WindowId,
    /// The damaged region, window-local.
    pub rect: Rect,
}

/// The simulated desktop an AH shares from.
#[derive(Debug)]
pub struct Desktop {
    width: u32,
    height: u32,
    wm: WindowManager,
    contents: HashMap<WindowId, Image>,
    trackers: HashMap<WindowId, DamageTracker>,
    strategy: MergeStrategy,
    scroll_hints: Vec<ScrollHint>,
    pointer: Pointer,
    background: [u8; 4],
}

impl Desktop {
    /// A desktop of the given size with the default damage strategy.
    pub fn new(width: u32, height: u32) -> Self {
        Desktop {
            width,
            height,
            wm: WindowManager::new(),
            contents: HashMap::new(),
            trackers: HashMap::new(),
            strategy: MergeStrategy::Greedy { slack_percent: 130 },
            scroll_hints: Vec::new(),
            pointer: Pointer::new(),
            background: [0, 40, 80, 255],
        }
    }

    /// Desktop dimensions.
    pub fn size(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Set the damage merge strategy for subsequently created windows and
    /// existing trackers.
    pub fn set_damage_strategy(&mut self, strategy: MergeStrategy) {
        self.strategy = strategy;
        for t in self.trackers.values_mut() {
            t.set_strategy(strategy);
        }
    }

    /// Window-manager view (geometry, z-order, dirty flag).
    pub fn wm(&self) -> &WindowManager {
        &self.wm
    }

    /// Mutable pointer state.
    pub fn pointer_mut(&mut self) -> &mut Pointer {
        &mut self.pointer
    }

    /// Pointer state.
    pub fn pointer(&self) -> &Pointer {
        &self.pointer
    }

    /// Create a shared window; content starts filled with `fill`. The whole
    /// window is damaged (its content must reach participants).
    pub fn create_window(&mut self, group: u8, rect: Rect, fill: [u8; 4]) -> WindowId {
        self.create_window_with_sharing(group, rect, fill, true)
    }

    /// Create a window with explicit sharing status (§2: application
    /// sharing transmits "if and only if" a window belongs to the shared
    /// application — non-shared windows live on the AH desktop only).
    pub fn create_window_with_sharing(
        &mut self,
        group: u8,
        rect: Rect,
        fill: [u8; 4],
        shared: bool,
    ) -> WindowId {
        let id = self.wm.create_with_sharing(group, rect, shared);
        let content = Image::filled(rect.width.max(1), rect.height.max(1), fill)
            .expect("window dims validated by caller");
        self.contents.insert(id, content);
        let mut tracker = DamageTracker::new(self.strategy);
        tracker.add(Rect::new(0, 0, rect.width, rect.height));
        self.trackers.insert(id, tracker);
        id
    }

    /// Change a window's sharing status. Newly shared windows must have
    /// their full content transmitted; the session layer detects the WMI
    /// dirty flag plus the sharing set change.
    pub fn set_window_shared(&mut self, id: WindowId, shared: bool) {
        self.wm.set_shared(id, shared);
    }

    /// Close a window.
    pub fn close_window(&mut self, id: WindowId) {
        self.wm.close(id);
        self.contents.remove(&id);
        self.trackers.remove(&id);
        self.scroll_hints.retain(|h| h.window != id);
    }

    /// Move a window (content is kept; participants only need the new
    /// geometry via WindowManagerInfo).
    pub fn move_window(&mut self, id: WindowId, left: u32, top: u32) {
        self.wm.move_to(id, left, top);
    }

    /// Raise a window to the top.
    pub fn raise_window(&mut self, id: WindowId) {
        self.wm.raise(id);
    }

    /// Resize a window. Existing content is preserved top-left anchored
    /// (per §5.2.1); newly exposed bands are damaged.
    pub fn resize_window(&mut self, id: WindowId, width: u32, height: u32) {
        let Some((old, new)) = self.wm.resize(id, width, height) else {
            return;
        };
        let content = self
            .contents
            .get_mut(&id)
            .expect("content exists for live window");
        let mut resized = Image::filled(new.width, new.height, self.background)
            .expect("resize dims clamped nonzero");
        resized.blit(content, 0, 0);
        *content = resized;
        let tracker = self.trackers.get_mut(&id).expect("tracker exists");
        if new.width > old.width {
            tracker.add(Rect::new(old.width, 0, new.width - old.width, new.height));
        }
        if new.height > old.height {
            tracker.add(Rect::new(0, old.height, new.width, new.height - old.height));
        }
    }

    /// Blit an image into a window at window-local coordinates, recording
    /// damage.
    pub fn draw(&mut self, id: WindowId, left: u32, top: u32, image: &Image) {
        let Some(content) = self.contents.get_mut(&id) else {
            return;
        };
        content.blit(image, left, top);
        let bounds = content.bounds();
        if let Some(clipped) =
            Rect::new(left, top, image.width(), image.height()).intersect(&bounds)
        {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(clipped);
        }
    }

    /// Fill a window-local rectangle with a colour, recording damage.
    pub fn fill(&mut self, id: WindowId, rect: Rect, rgba: [u8; 4]) {
        let Some(content) = self.contents.get_mut(&id) else {
            return;
        };
        content.fill_rect(rect, rgba);
        if let Some(clipped) = rect.intersect(&content.bounds()) {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(clipped);
        }
    }

    /// Scroll a window-local rectangle by (dx, dy), recording a
    /// `ScrollHint` (→ MoveRectangle) plus damage for the exposed band.
    ///
    /// Only the destination-overlapping part moves; the band scrolled away
    /// from must be repainted by the caller (as a real app would).
    pub fn scroll(&mut self, id: WindowId, area: Rect, dx: i32, dy: i32) {
        let Some(content) = self.contents.get_mut(&id) else {
            return;
        };
        let Some(area) = area.intersect(&content.bounds()) else {
            return;
        };
        if dx == 0 && dy == 0 {
            return;
        }
        // Clamp the source so the destination stays inside `area`.
        let src = Rect::new(
            (area.left as i64 - dx.min(0) as i64) as u32,
            (area.top as i64 - dy.min(0) as i64) as u32,
            (area.width as i64 - dx.unsigned_abs() as i64).max(0) as u32,
            (area.height as i64 - dy.unsigned_abs() as i64).max(0) as u32,
        );
        if src.is_empty() {
            // Scroll distance exceeds the area: everything is new content.
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(area);
            return;
        }
        let dst_left = (src.left as i64 + dx as i64) as u32;
        let dst_top = (src.top as i64 + dy as i64) as u32;
        // Damage recorded before this scroll rides along with the content
        // (otherwise batched MoveRectangles replay over stale coordinates).
        self.trackers
            .get_mut(&id)
            .expect("tracker exists")
            .translate_for_scroll(src, dx as i64, dy as i64);
        content.move_rect(src, dst_left, dst_top);
        self.scroll_hints.push(ScrollHint {
            window: id,
            src,
            dst_left,
            dst_top,
        });
        // The strip vacated by the move is exposed and must be repainted;
        // damage it (the workload will typically draw new content there
        // right after, which coalesces).
        if dy > 0 {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(Rect::new(area.left, area.top, area.width, dy as u32));
        } else if dy < 0 {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(Rect::new(
                    area.left,
                    area.bottom() - (-dy) as u32,
                    area.width,
                    (-dy) as u32,
                ));
        }
        if dx > 0 {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(Rect::new(area.left, area.top, dx as u32, area.height));
        } else if dx < 0 {
            self.trackers
                .get_mut(&id)
                .expect("tracker exists")
                .add(Rect::new(
                    area.right() - (-dx) as u32,
                    area.top,
                    (-dx) as u32,
                    area.height,
                ));
        }
    }

    /// A window's content image.
    pub fn window_content(&self, id: WindowId) -> Option<&Image> {
        self.contents.get(&id)
    }

    /// Take all pending damage, coalesced per window.
    pub fn take_damage(&mut self) -> Vec<Damage> {
        let mut out = Vec::new();
        // Deterministic order: z-order bottom-first.
        for rec in self.wm.records() {
            if let Some(t) = self.trackers.get_mut(&rec.id) {
                for rect in t.take() {
                    out.push(Damage {
                        window: rec.id,
                        rect,
                    });
                }
            }
        }
        out
    }

    /// Whether any damage or scroll hints are pending.
    pub fn has_pending_output(&self) -> bool {
        self.trackers.values().any(|t| !t.is_empty()) || !self.scroll_hints.is_empty()
    }

    /// Take pending scroll hints (in occurrence order).
    pub fn take_scroll_hints(&mut self) -> Vec<ScrollHint> {
        std::mem::take(&mut self.scroll_hints)
    }

    /// Take the window-manager dirty flag.
    pub fn take_wm_dirty(&mut self) -> bool {
        self.wm.take_dirty()
    }

    /// Composite the full desktop: background, then windows bottom-to-top,
    /// then optionally the pointer. This is ground truth for end-to-end
    /// verification.
    pub fn composite(&self, include_pointer: bool) -> Image {
        let mut frame = Image::filled(self.width, self.height, self.background)
            .expect("desktop dims validated at construction");
        for rec in self.wm.records() {
            if let Some(content) = self.contents.get(&rec.id) {
                frame.blit(content, rec.rect.left, rec.rect.top);
            }
        }
        if include_pointer {
            self.pointer.composite_onto(&mut frame);
        }
        frame
    }

    /// The union of all shared windows (the "shared region" a full refresh
    /// must cover, §4.3).
    pub fn shared_region(&self) -> Option<Rect> {
        self.wm
            .shared_records()
            .map(|r| r.rect)
            .reduce(|a, b| a.union(&b))
    }

    /// The desktop background colour (exposed so participants can blank
    /// non-shared areas consistently in tests).
    pub fn background(&self) -> [u8; 4] {
        self.background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desk() -> Desktop {
        Desktop::new(640, 480)
    }

    #[test]
    fn create_window_damages_whole_content() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(10, 10, 100, 80), [200, 0, 0, 255]);
        let dmg = d.take_damage();
        assert_eq!(
            dmg,
            vec![Damage {
                window: w,
                rect: Rect::new(0, 0, 100, 80)
            }]
        );
        assert!(d.take_damage().is_empty());
    }

    #[test]
    fn draw_records_local_damage() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(10, 10, 100, 80), [0, 0, 0, 255]);
        d.take_damage();
        let patch = Image::filled(20, 10, [9, 9, 9, 255]).unwrap();
        d.draw(w, 30, 40, &patch);
        let dmg = d.take_damage();
        assert_eq!(
            dmg,
            vec![Damage {
                window: w,
                rect: Rect::new(30, 40, 20, 10)
            }]
        );
        // Content actually changed.
        assert_eq!(
            d.window_content(w).unwrap().pixel(30, 40),
            Some([9, 9, 9, 255])
        );
    }

    #[test]
    fn draw_clips_damage_to_window() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 50, 50), [0, 0, 0, 255]);
        d.take_damage();
        let patch = Image::filled(20, 20, [1, 1, 1, 255]).unwrap();
        d.draw(w, 40, 40, &patch);
        let dmg = d.take_damage();
        assert_eq!(
            dmg,
            vec![Damage {
                window: w,
                rect: Rect::new(40, 40, 10, 10)
            }]
        );
    }

    #[test]
    fn move_window_produces_no_damage_only_wm_dirty() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 50, 50), [7, 7, 7, 255]);
        d.take_damage();
        d.take_wm_dirty();
        d.move_window(w, 200, 100);
        assert!(
            d.take_damage().is_empty(),
            "relocation must not cost pixels (§5.2.1)"
        );
        assert!(d.take_wm_dirty());
        // Composite shows the window at its new place.
        let frame = d.composite(false);
        assert_eq!(frame.pixel(200, 100), Some([7, 7, 7, 255]));
        assert_eq!(frame.pixel(0, 0), Some(d.background()));
    }

    #[test]
    fn resize_grows_damage_only_new_bands() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 50, 50), [7, 7, 7, 255]);
        d.take_damage();
        d.resize_window(w, 70, 60);
        let dmg = d.take_damage();
        let rects: Vec<Rect> = dmg.iter().map(|dm| dm.rect).collect();
        // Right band and bottom band (merge strategy may coalesce).
        let total: u64 = rects.iter().map(|r| r.area()).sum();
        assert!(
            total >= (20 * 60 + 70 * 10 - 20 * 10) as u64,
            "covers new area, got {rects:?}"
        );
        // Old content preserved.
        assert_eq!(
            d.window_content(w).unwrap().pixel(10, 10),
            Some([7, 7, 7, 255])
        );
        // New area has background fill.
        assert_eq!(
            d.window_content(w).unwrap().pixel(65, 5),
            Some(d.background())
        );
    }

    #[test]
    fn shrink_has_no_damage() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 50, 50), [7, 7, 7, 255]);
        d.take_damage();
        d.resize_window(w, 30, 30);
        assert!(d.take_damage().is_empty());
        assert_eq!(d.window_content(w).unwrap().width(), 30);
    }

    #[test]
    fn scroll_emits_hint_and_exposed_damage() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 100, 100), [1, 1, 1, 255]);
        d.take_damage();
        // Paint distinct rows then scroll up by 10.
        let row = Image::filled(100, 10, [200, 0, 0, 255]).unwrap();
        d.draw(w, 0, 90, &row);
        d.take_damage();
        d.scroll(w, Rect::new(0, 0, 100, 100), 0, -10);
        let hints = d.take_scroll_hints();
        assert_eq!(
            hints,
            vec![ScrollHint {
                window: w,
                src: Rect::new(0, 10, 100, 90),
                dst_left: 0,
                dst_top: 0
            }]
        );
        // The red row moved up.
        assert_eq!(
            d.window_content(w).unwrap().pixel(50, 80),
            Some([200, 0, 0, 255])
        );
        // Exposed bottom band damaged.
        let dmg = d.take_damage();
        assert_eq!(
            dmg,
            vec![Damage {
                window: w,
                rect: Rect::new(0, 90, 100, 10)
            }]
        );
    }

    #[test]
    fn scroll_down_and_right() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 60, 60), [1, 1, 1, 255]);
        d.take_damage();
        d.scroll(w, Rect::new(0, 0, 60, 60), 5, 7);
        let hints = d.take_scroll_hints();
        assert_eq!(hints[0].src, Rect::new(0, 0, 55, 53));
        assert_eq!((hints[0].dst_left, hints[0].dst_top), (5, 7));
        let dmg = d.take_damage();
        let area: u64 = dmg.iter().map(|dm| dm.rect.area()).sum();
        // Exposed strips: top 60x7 plus left 5x60 overlap 5x7.
        assert!(area >= (60 * 7 + 5 * 60 - 5 * 7) as u64, "got {dmg:?}");
    }

    #[test]
    fn scroll_larger_than_area_damages_everything() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 20, 20), [1, 1, 1, 255]);
        d.take_damage();
        d.scroll(w, Rect::new(0, 0, 20, 20), 0, -30);
        assert!(d.take_scroll_hints().is_empty());
        let dmg = d.take_damage();
        assert_eq!(
            dmg,
            vec![Damage {
                window: w,
                rect: Rect::new(0, 0, 20, 20)
            }]
        );
    }

    #[test]
    fn composite_respects_z_order() {
        let mut d = desk();
        let _a = d.create_window(1, Rect::new(0, 0, 50, 50), [10, 0, 0, 255]);
        let b = d.create_window(1, Rect::new(25, 25, 50, 50), [0, 20, 0, 255]);
        let frame = d.composite(false);
        assert_eq!(
            frame.pixel(30, 30),
            Some([0, 20, 0, 255]),
            "top window wins overlap"
        );
        d.raise_window(WindowId(0));
        let frame = d.composite(false);
        assert_eq!(frame.pixel(30, 30), Some([10, 0, 0, 255]));
        let _ = b;
    }

    #[test]
    fn close_window_cleans_up() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 50, 50), [1, 1, 1, 255]);
        d.close_window(w);
        assert!(d.window_content(w).is_none());
        assert!(d.take_damage().is_empty());
        assert!(d.wm().is_empty());
    }

    #[test]
    fn shared_region_union() {
        let mut d = desk();
        assert!(d.shared_region().is_none());
        d.create_window(1, Rect::new(10, 10, 20, 20), [0; 4]);
        d.create_window(1, Rect::new(100, 50, 20, 20), [0; 4]);
        assert_eq!(d.shared_region(), Some(Rect::new(10, 10, 110, 60)));
    }

    #[test]
    fn draw_on_closed_window_is_noop() {
        let mut d = desk();
        let w = d.create_window(1, Rect::new(0, 0, 10, 10), [0; 4]);
        d.close_window(w);
        let patch = Image::filled(5, 5, [1, 1, 1, 255]).unwrap();
        d.draw(w, 0, 0, &patch);
        d.fill(w, Rect::new(0, 0, 2, 2), [2, 2, 2, 255]);
        d.scroll(w, Rect::new(0, 0, 5, 5), 1, 1);
        assert!(d.take_damage().is_empty());
    }
}
