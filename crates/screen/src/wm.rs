//! Window manager state: the information carried by `WindowManagerInfo`
//! messages (draft §5.2.1) — window IDs, geometry, z-order and groupings.

use adshare_codec::Rect;

/// A window identifier. The draft gives it 16 bits ("The windowID field is
/// unsigned and has a range of 0-65535", §5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u16);

/// One window's sharable state, as serialized into a window record
/// (draft Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRecord {
    /// The window's ID.
    pub id: WindowId,
    /// Group ID; windows of the same process MAY share one. Zero means
    /// "no grouping" (§5.2.1).
    pub group: u8,
    /// Geometry in absolute desktop coordinates (§4.1).
    pub rect: Rect,
    /// Whether this window is part of the shared application. The draft
    /// distinguishes application sharing from desktop sharing (§2): "the AH
    /// distributes screen updates if and only if they belong to the shared
    /// application's windows". Non-shared windows exist on the AH desktop
    /// but never reach participants.
    pub shared: bool,
}

/// The window manager: an ordered set of windows. Order in `stack` is
/// z-order, bottom first — exactly the order window records are emitted in a
/// `WindowManagerInfo` message ("The first record describes the window at
/// the bottom of the stacking order, the last record the one on top").
#[derive(Debug, Clone, Default)]
pub struct WindowManager {
    stack: Vec<WindowRecord>,
    next_id: u16,
    /// Set when anything changed that requires a WindowManagerInfo
    /// broadcast (create/close/move/resize/restack/regroup).
    dirty: bool,
}

impl WindowManager {
    /// An empty window manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a shared window on top of the stack; returns its ID.
    pub fn create(&mut self, group: u8, rect: Rect) -> WindowId {
        self.create_with_sharing(group, rect, true)
    }

    /// Create a window with explicit sharing status.
    pub fn create_with_sharing(&mut self, group: u8, rect: Rect, shared: bool) -> WindowId {
        let id = WindowId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        self.stack.push(WindowRecord {
            id,
            group,
            rect,
            shared,
        });
        self.dirty = true;
        id
    }

    /// Change a window's sharing status (e.g. the user picked a different
    /// application to share, or the shared app opened a child window).
    pub fn set_shared(&mut self, id: WindowId, shared: bool) -> bool {
        let Some(w) = self.stack.iter_mut().find(|w| w.id == id) else {
            return false;
        };
        if w.shared != shared {
            w.shared = shared;
            self.dirty = true;
        }
        true
    }

    /// Shared windows only, bottom-first — what WindowManagerInfo carries.
    pub fn shared_records(&self) -> impl Iterator<Item = &WindowRecord> {
        self.stack.iter().filter(|w| w.shared)
    }

    /// Close a window. Returns its last geometry if it existed.
    pub fn close(&mut self, id: WindowId) -> Option<Rect> {
        let pos = self.stack.iter().position(|w| w.id == id)?;
        let rec = self.stack.remove(pos);
        self.dirty = true;
        Some(rec.rect)
    }

    /// Look up a window.
    pub fn get(&self, id: WindowId) -> Option<&WindowRecord> {
        self.stack.iter().find(|w| w.id == id)
    }

    /// Move a window to a new position (size unchanged). Returns
    /// (old, new) geometry.
    pub fn move_to(&mut self, id: WindowId, left: u32, top: u32) -> Option<(Rect, Rect)> {
        let w = self.stack.iter_mut().find(|w| w.id == id)?;
        let old = w.rect;
        w.rect.left = left;
        w.rect.top = top;
        self.dirty = true;
        Some((old, w.rect))
    }

    /// Resize a window in place. Returns (old, new) geometry.
    pub fn resize(&mut self, id: WindowId, width: u32, height: u32) -> Option<(Rect, Rect)> {
        let w = self.stack.iter_mut().find(|w| w.id == id)?;
        let old = w.rect;
        w.rect.width = width.max(1);
        w.rect.height = height.max(1);
        self.dirty = true;
        Some((old, w.rect))
    }

    /// Raise a window to the top of the z-order.
    pub fn raise(&mut self, id: WindowId) -> bool {
        let Some(pos) = self.stack.iter().position(|w| w.id == id) else {
            return false;
        };
        if pos + 1 == self.stack.len() {
            return true; // already on top; no state change, no dirty flag
        }
        let rec = self.stack.remove(pos);
        self.stack.push(rec);
        self.dirty = true;
        true
    }

    /// Lower a window to the bottom of the z-order.
    pub fn lower(&mut self, id: WindowId) -> bool {
        let Some(pos) = self.stack.iter().position(|w| w.id == id) else {
            return false;
        };
        if pos == 0 {
            return true;
        }
        let rec = self.stack.remove(pos);
        self.stack.insert(0, rec);
        self.dirty = true;
        true
    }

    /// Change a window's group.
    pub fn set_group(&mut self, id: WindowId, group: u8) -> bool {
        let Some(w) = self.stack.iter_mut().find(|w| w.id == id) else {
            return false;
        };
        if w.group != group {
            w.group = group;
            self.dirty = true;
        }
        true
    }

    /// All windows, bottom-of-stack first (WindowManagerInfo record order).
    pub fn records(&self) -> &[WindowRecord] {
        &self.stack
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether there are no windows.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// The topmost window containing the point, if any — used by the AH to
    /// route HIP events and validate their coordinates (§4.1: "The AH MUST
    /// only accept legitimate HIP events by checking whether the requested
    /// coordinates are inside the shared windows").
    pub fn window_at(&self, x: u32, y: u32) -> Option<&WindowRecord> {
        self.stack.iter().rev().find(|w| w.rect.contains(x, y))
    }

    /// Take and clear the dirty flag.
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    /// Peek the dirty flag.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_unique_ids_in_z_order() {
        let mut wm = WindowManager::new();
        let a = wm.create(1, Rect::new(0, 0, 10, 10));
        let b = wm.create(1, Rect::new(5, 5, 10, 10));
        let c = wm.create(2, Rect::new(20, 0, 10, 10));
        assert_ne!(a, b);
        assert_ne!(b, c);
        let ids: Vec<WindowId> = wm.records().iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![a, b, c]); // bottom-first
        assert!(wm.take_dirty());
        assert!(!wm.take_dirty());
    }

    #[test]
    fn raise_and_lower() {
        let mut wm = WindowManager::new();
        let a = wm.create(0, Rect::new(0, 0, 10, 10));
        let b = wm.create(0, Rect::new(0, 0, 10, 10));
        let c = wm.create(0, Rect::new(0, 0, 10, 10));
        wm.take_dirty();
        assert!(wm.raise(a));
        let ids: Vec<WindowId> = wm.records().iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![b, c, a]);
        assert!(wm.take_dirty());
        assert!(wm.lower(a));
        let ids: Vec<WindowId> = wm.records().iter().map(|w| w.id).collect();
        assert_eq!(ids, vec![a, b, c]);
        // Raising the already-top window does not set dirty.
        wm.take_dirty();
        assert!(wm.raise(c));
        assert!(!wm.is_dirty());
    }

    #[test]
    fn close_removes() {
        let mut wm = WindowManager::new();
        let a = wm.create(0, Rect::new(1, 2, 3, 4));
        assert_eq!(wm.close(a), Some(Rect::new(1, 2, 3, 4)));
        assert_eq!(wm.close(a), None);
        assert!(wm.is_empty());
    }

    #[test]
    fn window_at_respects_z_order() {
        let mut wm = WindowManager::new();
        let a = wm.create(0, Rect::new(0, 0, 20, 20));
        let b = wm.create(0, Rect::new(10, 10, 20, 20));
        // Overlap region belongs to the topmost (b).
        assert_eq!(wm.window_at(15, 15).unwrap().id, b);
        assert_eq!(wm.window_at(5, 5).unwrap().id, a);
        assert!(wm.window_at(100, 100).is_none());
        wm.raise(a);
        assert_eq!(wm.window_at(15, 15).unwrap().id, a);
    }

    #[test]
    fn move_and_resize_report_old_and_new() {
        let mut wm = WindowManager::new();
        let a = wm.create(0, Rect::new(0, 0, 10, 10));
        let (old, new) = wm.move_to(a, 50, 60).unwrap();
        assert_eq!(old, Rect::new(0, 0, 10, 10));
        assert_eq!(new, Rect::new(50, 60, 10, 10));
        let (old, new) = wm.resize(a, 30, 40).unwrap();
        assert_eq!(old, Rect::new(50, 60, 10, 10));
        assert_eq!(new, Rect::new(50, 60, 30, 40));
        assert!(wm.move_to(WindowId(999), 0, 0).is_none());
    }

    #[test]
    fn resize_clamps_to_nonzero() {
        let mut wm = WindowManager::new();
        let a = wm.create(0, Rect::new(0, 0, 10, 10));
        let (_, new) = wm.resize(a, 0, 0).unwrap();
        assert_eq!((new.width, new.height), (1, 1));
    }

    #[test]
    fn sharing_status_tracked() {
        let mut wm = WindowManager::new();
        let a = wm.create(1, Rect::new(0, 0, 10, 10));
        let b = wm.create_with_sharing(1, Rect::new(20, 0, 10, 10), false);
        assert!(wm.get(a).unwrap().shared);
        assert!(!wm.get(b).unwrap().shared);
        let shared: Vec<WindowId> = wm.shared_records().map(|w| w.id).collect();
        assert_eq!(shared, vec![a]);
        wm.take_dirty();
        assert!(wm.set_shared(b, true));
        assert!(wm.take_dirty());
        assert_eq!(wm.shared_records().count(), 2);
        // No-op change does not dirty.
        wm.set_shared(b, true);
        assert!(!wm.is_dirty());
    }

    #[test]
    fn group_changes_mark_dirty() {
        let mut wm = WindowManager::new();
        let a = wm.create(1, Rect::new(0, 0, 10, 10));
        wm.take_dirty();
        assert!(wm.set_group(a, 2));
        assert!(wm.is_dirty());
        wm.take_dirty();
        // Setting the same group is a no-op.
        assert!(wm.set_group(a, 2));
        assert!(!wm.is_dirty());
    }
}
