//! A simulated window system: the substrate the draft assumes but never
//! specifies.
//!
//! The remoting protocol consumes three things from the platform's window
//! system: *window geometry* (positions, sizes, z-order, groupings — §5.2.1),
//! *pixel content* of the shared windows (§5.2.2), and *damage* (which
//! regions changed, §4.2). On a real AH these come from X damage events or
//! the Win32 mirror driver; here they come from a deterministic in-memory
//! window manager driven by synthetic workload generators, which is what
//! makes every experiment in `EXPERIMENTS.md` reproducible.
//!
//! * [`wm`] — windows, z-order, groups ([`wm::WindowManager`]).
//! * [`damage`] — dirty-region tracking with selectable merge strategies.
//! * [`desktop`] — the composed [`desktop::Desktop`]: window contents,
//!   compositing, scroll hints, pointer.
//! * `pointer` — mouse pointer state and stock cursor images.
//! * [`workload`] — synthetic GUI activity generators (typing, scrolling,
//!   photos, video, window drags) with controlled statistical regimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod damage;
pub mod desktop;
pub mod pointer;
pub mod wm;
pub mod workload;

pub use adshare_codec::{Image, Rect};
pub use damage::{DamageTracker, MergeStrategy};
pub use desktop::Desktop;
pub use wm::{WindowId, WindowManager, WindowRecord};
