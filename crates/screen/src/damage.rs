//! Damage (dirty-region) tracking.
//!
//! The AH turns screen changes into `RegionUpdate` messages (§4.2). How
//! damage rectangles are merged before encoding is a real design trade-off:
//! too fine and per-update overhead dominates; too coarse and unchanged
//! pixels get re-encoded. Experiment E9 in `EXPERIMENTS.md` quantifies the
//! strategies implemented here.

use adshare_codec::Rect;

/// How accumulated damage rectangles are coalesced when taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Keep every reported rectangle (deduplicated, contained rects
    /// dropped). Minimum re-encoded area, maximum per-update overhead.
    PerRect,
    /// Collapse all damage into one bounding box. One update per frame,
    /// maximum re-encoded area.
    BoundingBox,
    /// Greedy pairwise merge: union two rectangles whenever the union's
    /// area is no more than `slack` × the sum of their areas. A good
    /// middle ground; `slack` ≥ 1.0.
    Greedy {
        /// Allowed growth factor before two rects are merged.
        slack_percent: u32,
    },
}

/// Accumulates damage rectangles between capture ticks.
#[derive(Debug, Clone)]
pub struct DamageTracker {
    rects: Vec<Rect>,
    strategy: MergeStrategy,
    /// Total area ever reported (before merging), for accounting.
    reported_area: u64,
    /// Virtual time the oldest still-pending damage was observed (set by
    /// [`DamageTracker::add_at`], cleared by [`DamageTracker::take`]).
    oldest_pending_us: Option<u64>,
}

impl DamageTracker {
    /// New tracker with the given merge strategy.
    pub fn new(strategy: MergeStrategy) -> Self {
        DamageTracker {
            rects: Vec::new(),
            strategy,
            reported_area: 0,
            oldest_pending_us: None,
        }
    }

    /// Report damage.
    pub fn add(&mut self, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        self.reported_area += rect.area();
        // Drop rects already contained in an existing one (and vice versa).
        for existing in &mut self.rects {
            if existing.contains_rect(&rect) {
                return;
            }
        }
        self.rects.retain(|r| !rect.contains_rect(r));
        self.rects.push(rect);
    }

    /// Report damage observed at virtual time `now_us`. Identical to
    /// [`DamageTracker::add`] but keeps the oldest pending observation time,
    /// which downstream frame tracing uses as the start of the damage→send
    /// stage.
    pub fn add_at(&mut self, rect: Rect, now_us: u64) {
        if rect.is_empty() {
            return;
        }
        self.oldest_pending_us = Some(self.oldest_pending_us.map_or(now_us, |o| o.min(now_us)));
        self.add(rect);
    }

    /// Virtual time the oldest still-pending damage was observed, if any
    /// damage was reported through [`DamageTracker::add_at`].
    pub fn oldest_pending_us(&self) -> Option<u64> {
        self.oldest_pending_us
    }

    /// Whether any damage is pending.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Pending rectangle count (pre-merge).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Total area reported since creation (pre-merge, may double-count
    /// overlap).
    pub fn reported_area(&self) -> u64 {
        self.reported_area
    }

    /// Take the pending damage, coalesced per the strategy.
    pub fn take(&mut self) -> Vec<Rect> {
        self.oldest_pending_us = None;
        let rects = std::mem::take(&mut self.rects);
        match self.strategy {
            MergeStrategy::PerRect => rects,
            MergeStrategy::BoundingBox => {
                if rects.is_empty() {
                    vec![]
                } else {
                    vec![rects
                        .iter()
                        .fold(Rect::new(0, 0, 0, 0), |acc, r| acc.union(r))]
                }
            }
            MergeStrategy::Greedy { slack_percent } => greedy_merge(rects, slack_percent),
        }
    }

    /// Change the strategy (used by the ablation bench).
    pub fn set_strategy(&mut self, strategy: MergeStrategy) {
        self.strategy = strategy;
    }

    /// Account for a scroll of `area` by (dx, dy): pending damage inside the
    /// scrolled area describes pixels that have *moved*, so a translated
    /// copy is added at the destination (the original is kept — covering
    /// both positions is always safe, and a replayed MoveRectangle will
    /// smear stale pixels into both).
    ///
    /// Without this, a queue of scrolls followed by one batched update
    /// replays every move first and then repaints only the most recent
    /// damage coordinates, leaving the intermediate bands stale.
    pub fn translate_for_scroll(&mut self, area: Rect, dx: i64, dy: i64) {
        let translated: Vec<Rect> = self
            .rects
            .iter()
            .filter_map(|r| r.intersect(&area))
            .map(|ov| ov.translated(dx, dy))
            .collect();
        // Out-of-bounds excess is clipped against the window at encode time.
        for t in translated {
            self.add(t);
        }
    }
}

impl Default for DamageTracker {
    fn default() -> Self {
        DamageTracker::new(MergeStrategy::Greedy { slack_percent: 130 })
    }
}

/// Greedy pairwise merging until fixpoint.
fn greedy_merge(mut rects: Vec<Rect>, slack_percent: u32) -> Vec<Rect> {
    let slack = slack_percent.max(100) as u64;
    loop {
        let mut merged_any = false;
        let mut i = 0;
        'outer: while i < rects.len() {
            let mut j = i + 1;
            while j < rects.len() {
                let a = rects[i];
                let b = rects[j];
                let u = a.union(&b);
                // Merge when the union does not grow much past the parts,
                // or when they overlap/touch anyway.
                let grow_ok = u.area() * 100 <= (a.area() + b.area()) * slack;
                if grow_ok || a.intersects(&b) {
                    rects[i] = u;
                    rects.swap_remove(j);
                    // The union may now swallow others; restart the pass.
                    merged_any = true;
                    continue 'outer;
                }
                j += 1;
            }
            i += 1;
        }
        if !merged_any {
            return rects;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contained_rects_deduplicated() {
        let mut t = DamageTracker::new(MergeStrategy::PerRect);
        t.add(Rect::new(0, 0, 100, 100));
        t.add(Rect::new(10, 10, 5, 5)); // contained → dropped
        assert_eq!(t.len(), 1);
        t.add(Rect::new(0, 0, 200, 200)); // contains existing → replaces
        assert_eq!(t.len(), 1);
        assert_eq!(t.take(), vec![Rect::new(0, 0, 200, 200)]);
        assert!(t.is_empty());
    }

    #[test]
    fn empty_rect_ignored() {
        let mut t = DamageTracker::default();
        t.add(Rect::new(5, 5, 0, 10));
        assert!(t.is_empty());
        assert_eq!(t.reported_area(), 0);
    }

    #[test]
    fn bounding_box_strategy() {
        let mut t = DamageTracker::new(MergeStrategy::BoundingBox);
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(90, 90, 10, 10));
        assert_eq!(t.take(), vec![Rect::new(0, 0, 100, 100)]);
    }

    #[test]
    fn per_rect_keeps_distinct() {
        let mut t = DamageTracker::new(MergeStrategy::PerRect);
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(90, 90, 10, 10));
        let taken = t.take();
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn greedy_merges_adjacent_not_distant() {
        let mut t = DamageTracker::new(MergeStrategy::Greedy { slack_percent: 130 });
        // Two adjacent rects: union area == sum → merged.
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(10, 0, 10, 10));
        // One far away: union would balloon → kept separate.
        t.add(Rect::new(500, 500, 10, 10));
        let mut taken = t.take();
        taken.sort_by_key(|r| r.left);
        assert_eq!(
            taken,
            vec![Rect::new(0, 0, 20, 10), Rect::new(500, 500, 10, 10)]
        );
    }

    #[test]
    fn greedy_merges_overlapping_always() {
        let mut t = DamageTracker::new(MergeStrategy::Greedy { slack_percent: 100 });
        t.add(Rect::new(0, 0, 100, 100));
        t.add(Rect::new(50, 50, 100, 100));
        assert_eq!(t.take(), vec![Rect::new(0, 0, 150, 150)]);
    }

    #[test]
    fn greedy_cascades_to_fixpoint() {
        let mut t = DamageTracker::new(MergeStrategy::Greedy { slack_percent: 150 });
        // A row of touching tiles must all merge into one band.
        for i in 0..10 {
            t.add(Rect::new(i * 10, 0, 10, 10));
        }
        assert_eq!(t.take(), vec![Rect::new(0, 0, 100, 10)]);
    }

    #[test]
    fn translate_for_scroll_duplicates_moved_damage() {
        let mut t = DamageTracker::new(MergeStrategy::PerRect);
        let area = Rect::new(0, 0, 100, 100);
        // Damage at the bottom band; then the content scrolls up 14.
        t.add(Rect::new(0, 86, 100, 14));
        t.translate_for_scroll(area, 0, -14);
        let mut rects = t.take();
        rects.sort_by_key(|r| r.top);
        // Both the pre-move and post-move positions are covered.
        assert_eq!(
            rects,
            vec![Rect::new(0, 72, 100, 14), Rect::new(0, 86, 100, 14)]
        );
    }

    #[test]
    fn translate_for_scroll_ignores_damage_outside_area() {
        let mut t = DamageTracker::new(MergeStrategy::PerRect);
        t.add(Rect::new(200, 200, 10, 10)); // outside the scrolled area
        t.translate_for_scroll(Rect::new(0, 0, 100, 100), 0, -14);
        assert_eq!(t.take(), vec![Rect::new(200, 200, 10, 10)]);
    }

    #[test]
    fn oldest_pending_timestamp_tracked_and_cleared() {
        let mut t = DamageTracker::default();
        assert_eq!(t.oldest_pending_us(), None);
        t.add_at(Rect::new(0, 0, 10, 10), 5_000);
        t.add_at(Rect::new(50, 50, 10, 10), 2_000);
        t.add_at(Rect::new(90, 90, 10, 10), 9_000);
        assert_eq!(t.oldest_pending_us(), Some(2_000));
        t.add_at(Rect::new(0, 0, 0, 0), 1); // empty rect: no effect
        assert_eq!(t.oldest_pending_us(), Some(2_000));
        let _ = t.take();
        assert_eq!(t.oldest_pending_us(), None, "take clears the age");
        t.add_at(Rect::new(0, 0, 1, 1), 42);
        assert_eq!(t.oldest_pending_us(), Some(42));
    }

    #[test]
    fn reported_area_accumulates() {
        let mut t = DamageTracker::default();
        t.add(Rect::new(0, 0, 10, 10));
        t.add(Rect::new(100, 100, 20, 20));
        assert_eq!(t.reported_area(), 100 + 400);
    }
}
