//! Synthetic GUI workload generators.
//!
//! The draft characterises screen content as "large areas of the screen that
//! remain unchanged for long periods of time, while others change rapidly"
//! (§2). Each generator here reproduces one regime with controlled
//! parameters, standing in for the human-driven applications a real AH
//! shares. All randomness flows through the caller's RNG, so every
//! experiment is reproducible from a seed.

use adshare_codec::{Image, Rect};
use rand::Rng;

use crate::desktop::Desktop;
use crate::wm::WindowId;

/// A deterministic GUI activity generator.
pub trait Workload {
    /// Short name for experiment tables.
    fn name(&self) -> &'static str;
    /// Advance one tick (nominally one capture interval), mutating the
    /// desktop.
    fn tick(&mut self, desktop: &mut Desktop, rng: &mut dyn rand::RngCore);
}

/// Dark-on-light "glyph" used by the text workloads: a small block with a
/// per-character pseudo-shape so content is not trivially constant.
pub fn glyph(width: u32, height: u32, ch: u8) -> Image {
    let mut g = Image::filled(width, height, [250, 250, 250, 255]).expect("glyph dims");
    // Derive a crude shape from the character code.
    for y in 1..height.saturating_sub(1) {
        for x in 1..width.saturating_sub(1) {
            let bit = (ch as u32).wrapping_mul(31).wrapping_add(x * 7 + y * 13) % 5;
            if bit < 2 {
                g.set_pixel(x, y, [30, 30, 30, 255]);
            }
        }
    }
    g
}

/// A photographic-looking frame: smooth gradients plus sensor noise.
pub fn photo_frame(width: u32, height: u32, seed: u32) -> Image {
    let mut img = Image::new(width, height).expect("photo dims");
    let mut state = seed | 1;
    for y in 0..height {
        for x in 0..width {
            let fx = x as f32 / width.max(1) as f32;
            let fy = y as f32 / height.max(1) as f32;
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let noise = ((state >> 24) as i32 % 20) - 10;
            let phase = (seed % 7) as f32;
            let r = (130.0 + 90.0 * ((fx * 5.0) + phase).sin() + noise as f32).clamp(0.0, 255.0);
            let g = (120.0 + 90.0 * ((fy * 4.0) + phase).cos() + noise as f32).clamp(0.0, 255.0);
            let b =
                (140.0 + 70.0 * (((fx + fy) * 3.0) + phase).sin() + noise as f32).clamp(0.0, 255.0);
            img.set_pixel(x, y, [r as u8, g as u8, b as u8, 255]);
        }
    }
    img
}

/// A rendered "line of text" image.
pub fn text_line(width: u32, height: u32, rng: &mut dyn rand::RngCore) -> Image {
    let mut line = Image::filled(width, height, [250, 250, 250, 255]).expect("line dims");
    let gw = 7u32;
    let mut x = 2;
    while x + gw < width {
        let ch: u8 = rng.gen_range(b'a'..=b'z');
        if rng.gen_ratio(1, 6) {
            // space
        } else {
            line.blit(&glyph(gw, height, ch), x, 0);
        }
        x += gw;
    }
    line
}

/// Keystroke-by-keystroke typing into a window: the low-bandwidth,
/// small-damage, latency-sensitive regime.
pub struct Typing {
    window: WindowId,
    col: u32,
    row: u32,
    glyph_w: u32,
    glyph_h: u32,
    /// Keystrokes per tick.
    pub rate: u32,
}

impl Typing {
    /// Typing into `window` at `rate` keystrokes per tick.
    pub fn new(window: WindowId, rate: u32) -> Self {
        Typing {
            window,
            col: 0,
            row: 0,
            glyph_w: 7,
            glyph_h: 14,
            rate: rate.max(1),
        }
    }
}

impl Workload for Typing {
    fn name(&self) -> &'static str {
        "typing"
    }

    fn tick(&mut self, desktop: &mut Desktop, rng: &mut dyn rand::RngCore) {
        let Some(content) = desktop.window_content(self.window) else {
            return;
        };
        let (w, h) = (content.width(), content.height());
        let cols = (w / self.glyph_w).max(1);
        let rows = (h / self.glyph_h).max(1);
        for _ in 0..self.rate {
            let ch: u8 = rng.gen_range(b'a'..=b'z');
            let g = glyph(self.glyph_w, self.glyph_h, ch);
            desktop.draw(
                self.window,
                self.col * self.glyph_w,
                self.row * self.glyph_h,
                &g,
            );
            self.col += 1;
            if self.col >= cols {
                self.col = 0;
                self.row += 1;
                if self.row >= rows {
                    // Scroll up one line and continue on the last row.
                    desktop.scroll(
                        self.window,
                        Rect::new(0, 0, w, h),
                        0,
                        -(self.glyph_h as i32),
                    );
                    let blank =
                        Image::filled(w, self.glyph_h, [250, 250, 250, 255]).expect("line dims");
                    desktop.draw(self.window, 0, h - self.glyph_h, &blank);
                    self.row = rows - 1;
                }
            }
        }
    }
}

/// Continuous document scrolling: the MoveRectangle-friendly regime.
pub struct Scrolling {
    window: WindowId,
    line_height: u32,
    /// Lines scrolled per tick.
    pub lines_per_tick: u32,
}

impl Scrolling {
    /// Scrolling `window` by `lines_per_tick` lines of 14 px per tick.
    pub fn new(window: WindowId, lines_per_tick: u32) -> Self {
        Scrolling {
            window,
            line_height: 14,
            lines_per_tick: lines_per_tick.max(1),
        }
    }
}

impl Workload for Scrolling {
    fn name(&self) -> &'static str {
        "scrolling"
    }

    fn tick(&mut self, desktop: &mut Desktop, rng: &mut dyn rand::RngCore) {
        let Some(content) = desktop.window_content(self.window) else {
            return;
        };
        let (w, h) = (content.width(), content.height());
        for _ in 0..self.lines_per_tick {
            let dy = self.line_height.min(h);
            desktop.scroll(self.window, Rect::new(0, 0, w, h), 0, -(dy as i32));
            let line = text_line(w, dy, rng);
            desktop.draw(self.window, 0, h - dy, &line);
        }
    }
}

/// A photo slideshow: full-window photographic replacement every
/// `interval` ticks — the lossy-codec-friendly regime.
pub struct Slideshow {
    window: WindowId,
    interval: u32,
    counter: u32,
    seed: u32,
}

impl Slideshow {
    /// New slideshow changing every `interval` ticks.
    pub fn new(window: WindowId, interval: u32) -> Self {
        Slideshow {
            window,
            interval: interval.max(1),
            counter: 0,
            seed: 1,
        }
    }
}

impl Workload for Slideshow {
    fn name(&self) -> &'static str {
        "slideshow"
    }

    fn tick(&mut self, desktop: &mut Desktop, _rng: &mut dyn rand::RngCore) {
        self.counter += 1;
        if !self.counter.is_multiple_of(self.interval) {
            return;
        }
        self.seed = self.seed.wrapping_mul(747796405).wrapping_add(2891336453);
        let Some(content) = desktop.window_content(self.window) else {
            return;
        };
        let frame = photo_frame(content.width(), content.height(), self.seed);
        desktop.draw(self.window, 0, 0, &frame);
    }
}

/// Embedded video playback: a sub-region redrawn with photographic content
/// every tick — the sustained-bandwidth regime.
pub struct Video {
    window: WindowId,
    region: Rect,
    frame_no: u32,
}

impl Video {
    /// Video playing in `region` (window-local) of `window`.
    pub fn new(window: WindowId, region: Rect) -> Self {
        Video {
            window,
            region,
            frame_no: 0,
        }
    }
}

impl Workload for Video {
    fn name(&self) -> &'static str {
        "video"
    }

    fn tick(&mut self, desktop: &mut Desktop, _rng: &mut dyn rand::RngCore) {
        self.frame_no += 1;
        let frame = photo_frame(self.region.width, self.region.height, self.frame_no);
        desktop.draw(self.window, self.region.left, self.region.top, &frame);
    }
}

/// Dragging a window around the desktop: the WindowManagerInfo-churn
/// regime (geometry changes, no pixel changes).
pub struct WindowDrag {
    window: WindowId,
    dx: i32,
    dy: i32,
}

impl WindowDrag {
    /// Drag `window` by (dx, dy) per tick, bouncing off desktop edges.
    pub fn new(window: WindowId, dx: i32, dy: i32) -> Self {
        WindowDrag { window, dx, dy }
    }
}

impl Workload for WindowDrag {
    fn name(&self) -> &'static str {
        "window-drag"
    }

    fn tick(&mut self, desktop: &mut Desktop, _rng: &mut dyn rand::RngCore) {
        let (dw, dh) = desktop.size();
        let Some(rec) = desktop.wm().get(self.window).copied() else {
            return;
        };
        let mut nx = rec.rect.left as i64 + self.dx as i64;
        let mut ny = rec.rect.top as i64 + self.dy as i64;
        if nx < 0 || nx + rec.rect.width as i64 > dw as i64 {
            self.dx = -self.dx;
            nx = nx.clamp(0, (dw as i64 - rec.rect.width as i64).max(0));
        }
        if ny < 0 || ny + rec.rect.height as i64 > dh as i64 {
            self.dy = -self.dy;
            ny = ny.clamp(0, (dh as i64 - rec.rect.height as i64).max(0));
        }
        desktop.move_window(self.window, nx as u32, ny as u32);
    }
}

/// Bursty terminal output: idle most ticks, then a burst of scrolled lines —
/// the regime §7's backlog policy exists for.
pub struct Terminal {
    inner: Scrolling,
    /// Probability (out of 100) that a tick bursts.
    pub burst_percent: u32,
    /// Lines per burst.
    pub burst_lines: u32,
}

impl Terminal {
    /// Terminal in `window`, bursting `burst_lines` lines on
    /// `burst_percent`% of ticks.
    pub fn new(window: WindowId, burst_percent: u32, burst_lines: u32) -> Self {
        Terminal {
            inner: Scrolling::new(window, 1),
            burst_percent,
            burst_lines: burst_lines.max(1),
        }
    }
}

impl Workload for Terminal {
    fn name(&self) -> &'static str {
        "terminal"
    }

    fn tick(&mut self, desktop: &mut Desktop, rng: &mut dyn rand::RngCore) {
        if rng.gen_range(0..100) < self.burst_percent {
            self.inner.lines_per_tick = self.burst_lines;
            self.inner.tick(desktop, rng);
        }
    }
}

/// Content alternating between two fixed frames (a blinking caret, a
/// status-bar toggle, a spinner with two states): frame N+2 is
/// pixel-identical to frame N. A per-frame encoder pays full price every
/// tick; a cross-frame content-addressed cache encodes each frame once and
/// serves everything after from cache.
pub struct PingPong {
    window: WindowId,
    region: Rect,
    phase: bool,
    frames: Option<[Image; 2]>,
}

impl PingPong {
    /// Alternate `region` (window-local) of `window` between two frames.
    pub fn new(window: WindowId, region: Rect) -> Self {
        PingPong {
            window,
            region,
            phase: false,
            frames: None,
        }
    }
}

impl Workload for PingPong {
    fn name(&self) -> &'static str {
        "ping-pong"
    }

    fn tick(&mut self, desktop: &mut Desktop, _rng: &mut dyn rand::RngCore) {
        let frames = self.frames.get_or_insert_with(|| {
            [
                photo_frame(self.region.width, self.region.height, 0x0a),
                photo_frame(self.region.width, self.region.height, 0xb0),
            ]
        });
        let frame = &frames[self.phase as usize];
        desktop.draw(self.window, self.region.left, self.region.top, frame);
        self.phase = !self.phase;
    }
}

/// No activity at all.
pub struct Idle;

impl Workload for Idle {
    fn name(&self) -> &'static str {
        "idle"
    }

    fn tick(&mut self, _desktop: &mut Desktop, _rng: &mut dyn rand::RngCore) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Desktop, WindowId) {
        let mut d = Desktop::new(640, 480);
        let w = d.create_window(1, Rect::new(50, 40, 280, 210), [250, 250, 250, 255]);
        d.take_damage();
        d.take_wm_dirty();
        (d, w)
    }

    #[test]
    fn typing_produces_small_damage() {
        let (mut d, w) = setup();
        let mut wl = Typing::new(w, 3);
        let mut rng = StdRng::seed_from_u64(42);
        wl.tick(&mut d, &mut rng);
        let dmg = d.take_damage();
        assert!(!dmg.is_empty());
        let area: u64 = dmg.iter().map(|dm| dm.rect.area()).sum();
        assert!(
            area <= 3 * 7 * 14 * 2,
            "typing damage should be tiny, got {area}"
        );
    }

    #[test]
    fn typing_is_deterministic_per_seed() {
        let (mut d1, w1) = setup();
        let (mut d2, _w2) = setup();
        let mut a = Typing::new(w1, 5);
        let mut b = Typing::new(w1, 5);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            a.tick(&mut d1, &mut r1);
            b.tick(&mut d2, &mut r2);
        }
        assert_eq!(
            d1.window_content(w1).unwrap(),
            d2.window_content(w1).unwrap()
        );
    }

    #[test]
    fn typing_scrolls_at_bottom() {
        let (mut d, w) = setup();
        let mut wl = Typing::new(w, 50);
        let mut rng = StdRng::seed_from_u64(1);
        // Enough keystrokes to overflow the window: 40 cols × 15 rows = 600.
        for _ in 0..20 {
            wl.tick(&mut d, &mut rng);
        }
        assert!(
            !d.take_scroll_hints().is_empty(),
            "typing past the last row must scroll"
        );
    }

    #[test]
    fn scrolling_emits_hints_every_tick() {
        let (mut d, w) = setup();
        let mut wl = Scrolling::new(w, 2);
        let mut rng = StdRng::seed_from_u64(3);
        wl.tick(&mut d, &mut rng);
        assert_eq!(d.take_scroll_hints().len(), 2);
    }

    #[test]
    fn slideshow_changes_only_on_interval() {
        let (mut d, w) = setup();
        let mut wl = Slideshow::new(w, 5);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 1..=10 {
            wl.tick(&mut d, &mut rng);
            let changed = !d.take_damage().is_empty();
            assert_eq!(changed, i % 5 == 0, "tick {i}");
        }
    }

    #[test]
    fn video_damages_its_region_each_tick() {
        let (mut d, w) = setup();
        let region = Rect::new(10, 10, 160, 120);
        let mut wl = Video::new(w, region);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 {
            wl.tick(&mut d, &mut rng);
            let dmg = d.take_damage();
            assert_eq!(dmg.len(), 1);
            assert_eq!(dmg[0].rect, region);
        }
    }

    #[test]
    fn drag_bounces_within_desktop() {
        let (mut d, w) = setup();
        let mut wl = WindowDrag::new(w, 37, 23);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            wl.tick(&mut d, &mut rng);
            let r = d.wm().get(w).unwrap().rect;
            assert!(
                r.right() <= 640 && r.bottom() <= 480,
                "window escaped: {r:?}"
            );
        }
        assert!(d.take_wm_dirty());
        assert!(
            d.take_damage().is_empty(),
            "dragging must not damage pixels"
        );
    }

    #[test]
    fn terminal_bursts_probabilistically() {
        let (mut d, w) = setup();
        let mut wl = Terminal::new(w, 30, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut busy_ticks = 0;
        for _ in 0..100 {
            wl.tick(&mut d, &mut rng);
            if !d.take_damage().is_empty() {
                busy_ticks += 1;
            }
        }
        assert!(
            busy_ticks > 10 && busy_ticks < 60,
            "burst rate ~30%, got {busy_ticks}"
        );
    }

    #[test]
    fn ping_pong_repeats_with_period_two() {
        let (mut d, w) = setup();
        let region = Rect::new(0, 0, 64, 48);
        let mut wl = PingPong::new(w, region);
        let mut rng = StdRng::seed_from_u64(3);
        let mut snaps = Vec::new();
        for _ in 0..4 {
            wl.tick(&mut d, &mut rng);
            assert!(!d.take_damage().is_empty(), "every tick redraws");
            snaps.push(d.window_content(w).unwrap().crop(region).unwrap());
        }
        assert_ne!(snaps[0], snaps[1], "the two phases must differ");
        assert_eq!(snaps[0], snaps[2], "frame N+2 is pixel-identical");
        assert_eq!(snaps[1], snaps[3]);
    }

    #[test]
    fn photo_frames_differ_by_seed() {
        let a = photo_frame(64, 48, 1);
        let b = photo_frame(64, 48, 2);
        assert_ne!(a, b);
        assert_eq!(a, photo_frame(64, 48, 1));
    }
}
