//! Mouse pointer state.
//!
//! The draft supports two pointer models (§4.2): pointer pixels composited
//! into `RegionUpdate`s, or explicit `MousePointerInfo` messages carrying
//! position and (optionally) a new pointer image. The AH chooses; the
//! participant must support both. This module holds the AH-side state and
//! stock cursor images.

use adshare_codec::{Image, Rect};

/// The AH's pointer model choice (§5.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerMode {
    /// Pointer pixels are composited into the frame; participants get it
    /// "for free" in RegionUpdates.
    InStream,
    /// Pointer position/icon travel as MousePointerInfo messages.
    Explicit,
}

/// Mouse pointer state.
#[derive(Debug, Clone)]
pub struct Pointer {
    x: u32,
    y: u32,
    icon: Image,
    /// Icon changed since last taken (AH must resend image).
    icon_dirty: bool,
    /// Position changed since last taken.
    moved: bool,
}

impl Pointer {
    /// Pointer at the origin with the stock arrow cursor.
    pub fn new() -> Self {
        Pointer {
            x: 0,
            y: 0,
            icon: arrow_cursor(),
            icon_dirty: true,
            moved: true,
        }
    }

    /// Current position (hotspot).
    pub fn position(&self) -> (u32, u32) {
        (self.x, self.y)
    }

    /// Current icon.
    pub fn icon(&self) -> &Image {
        &self.icon
    }

    /// The rectangle the pointer occupies on screen.
    pub fn rect(&self) -> Rect {
        Rect::new(self.x, self.y, self.icon.width(), self.icon.height())
    }

    /// Move the pointer. Returns (old rect, new rect) when it actually moved.
    pub fn move_to(&mut self, x: u32, y: u32) -> Option<(Rect, Rect)> {
        if (x, y) == (self.x, self.y) {
            return None;
        }
        let old = self.rect();
        self.x = x;
        self.y = y;
        self.moved = true;
        Some((old, self.rect()))
    }

    /// Replace the pointer icon (e.g. arrow → I-beam). Returns the union of
    /// old and new screen rects for damage purposes.
    pub fn set_icon(&mut self, icon: Image) -> Rect {
        let old = self.rect();
        self.icon = icon;
        self.icon_dirty = true;
        old.union(&self.rect())
    }

    /// Whether the icon changed since the last `take_changes`.
    pub fn icon_dirty(&self) -> bool {
        self.icon_dirty
    }

    /// Take (moved, icon_dirty) and clear both flags.
    pub fn take_changes(&mut self) -> (bool, bool) {
        (
            std::mem::take(&mut self.moved),
            std::mem::take(&mut self.icon_dirty),
        )
    }

    /// Composite the pointer into a frame (alpha-keyed: fully transparent
    /// pixels are skipped).
    pub fn composite_onto(&self, frame: &mut Image) {
        for dy in 0..self.icon.height() {
            for dx in 0..self.icon.width() {
                let px = self.icon.pixel(dx, dy).expect("in bounds");
                if px[3] == 0 {
                    continue;
                }
                frame.set_pixel(self.x + dx, self.y + dy, px);
            }
        }
    }
}

impl Default for Pointer {
    fn default() -> Self {
        Self::new()
    }
}

/// The stock 12×19 arrow cursor (white fill, black outline, transparent
/// elsewhere), drawn procedurally.
pub fn arrow_cursor() -> Image {
    let w = 12u32;
    let h = 19u32;
    let mut img = Image::filled(w, h, [0, 0, 0, 0]).expect("static dims");
    // Classic arrow: for each row y, the outline spans x = 0..=min(y, w-1)
    // narrowing into the tail.
    for y in 0..h {
        let span = (y + 1).min(w);
        for x in 0..span {
            let edge = x == 0 || x + 1 == span || y + 1 == h;
            let colour = if edge {
                [0, 0, 0, 255]
            } else {
                [255, 255, 255, 255]
            };
            if y < 14 || (2..5).contains(&x) {
                img.set_pixel(x, y, colour);
            }
        }
    }
    img
}

/// A 9×17 I-beam (text) cursor.
pub fn ibeam_cursor() -> Image {
    let mut img = Image::filled(9, 17, [0, 0, 0, 0]).expect("static dims");
    for x in 0..9 {
        if x != 4 {
            img.set_pixel(x, 0, [0, 0, 0, 255]);
            img.set_pixel(x, 16, [0, 0, 0, 255]);
        }
    }
    for y in 0..17 {
        img.set_pixel(4, y, [0, 0, 0, 255]);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_reports_rects() {
        let mut p = Pointer::new();
        p.take_changes();
        let (old, new) = p.move_to(100, 50).unwrap();
        assert_eq!(old.left, 0);
        assert_eq!(new.left, 100);
        assert_eq!(new.top, 50);
        assert_eq!(p.take_changes(), (true, false));
        // No-op move.
        assert!(p.move_to(100, 50).is_none());
        assert_eq!(p.take_changes(), (false, false));
    }

    #[test]
    fn icon_change_flags() {
        let mut p = Pointer::new();
        p.take_changes();
        let damage = p.set_icon(ibeam_cursor());
        assert!(damage.width >= 9);
        assert_eq!(p.take_changes(), (false, true));
    }

    #[test]
    fn composite_respects_alpha() {
        let mut frame = Image::filled(64, 64, [10, 10, 10, 255]).unwrap();
        let mut p = Pointer::new();
        p.move_to(5, 5);
        p.composite_onto(&mut frame);
        // Tip pixel is the cursor outline (black, opaque).
        assert_eq!(frame.pixel(5, 5), Some([0, 0, 0, 255]));
        // A pixel right of the cursor column on row 0 is untouched.
        assert_eq!(frame.pixel(20, 5), Some([10, 10, 10, 255]));
    }

    #[test]
    fn composite_clips_at_edges() {
        let mut frame = Image::filled(8, 8, [1, 1, 1, 255]).unwrap();
        let mut p = Pointer::new();
        p.move_to(6, 6);
        p.composite_onto(&mut frame); // must not panic
        assert_eq!(frame.pixel(6, 6), Some([0, 0, 0, 255]));
    }

    #[test]
    fn cursors_have_content() {
        let a = arrow_cursor();
        assert!(a
            .data()
            .iter()
            .skip(3)
            .step_by(4)
            .any(|&alpha| alpha == 255));
        let i = ibeam_cursor();
        assert!(i
            .data()
            .iter()
            .skip(3)
            .step_by(4)
            .any(|&alpha| alpha == 255));
    }
}
