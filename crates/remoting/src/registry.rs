//! Message-type registries (draft §9, Tables 1, 3, 4 and 5).
//!
//! The draft establishes two IANA subregistries under "Application and
//! Desktop Sharing parameters", both "Specification Required". This module
//! carries their initial contents and models the extension rule that
//! "Participants MAY ignore such additional message types" (§5.1.2).

/// Remoting message type: WindowManagerInfo (Table 1).
pub const MSG_WINDOW_MANAGER_INFO: u8 = 1;
/// Remoting message type: RegionUpdate (Table 1).
pub const MSG_REGION_UPDATE: u8 = 2;
/// Remoting message type: MoveRectangle (Table 1).
pub const MSG_MOVE_RECTANGLE: u8 = 3;
/// Remoting message type: MousePointerInfo (Table 1).
pub const MSG_MOUSE_POINTER_INFO: u8 = 4;

/// HIP message type: MousePressed (Table 3).
pub const MSG_MOUSE_PRESSED: u8 = 121;
/// HIP message type: MouseReleased (Table 3).
pub const MSG_MOUSE_RELEASED: u8 = 122;
/// HIP message type: MouseMoved (Table 3).
pub const MSG_MOUSE_MOVED: u8 = 123;
/// HIP message type: MouseWheelMoved (Table 3).
pub const MSG_MOUSE_WHEEL_MOVED: u8 = 124;
/// HIP message type: KeyPressed (Table 3).
pub const MSG_KEY_PRESSED: u8 = 125;
/// HIP message type: KeyReleased (Table 3).
pub const MSG_KEY_RELEASED: u8 = 126;
/// HIP message type: KeyTyped (Table 3).
pub const MSG_KEY_TYPED: u8 = 127;

/// One registry row: (value, name).
pub type RegistryEntry = (u8, &'static str);

/// Initial contents of the Remoting Message Types subregistry (Table 4).
pub const REMOTING_REGISTRY: [RegistryEntry; 4] = [
    (MSG_WINDOW_MANAGER_INFO, "WindowManagerInfo"),
    (MSG_REGION_UPDATE, "RegionUpdate"),
    (MSG_MOVE_RECTANGLE, "MoveRectangle"),
    (MSG_MOUSE_POINTER_INFO, "MousePointerInfo"),
];

/// Initial contents of the HIP Message Types subregistry (Table 5).
pub const HIP_REGISTRY: [RegistryEntry; 7] = [
    (MSG_MOUSE_PRESSED, "MousePressed"),
    (MSG_MOUSE_RELEASED, "MouseReleased"),
    (MSG_MOUSE_MOVED, "MouseMoved"),
    (MSG_MOUSE_WHEEL_MOVED, "MouseWheelMoved"),
    (MSG_KEY_PRESSED, "KeyPressed"),
    (MSG_KEY_RELEASED, "KeyReleased"),
    (MSG_KEY_TYPED, "KeyTyped"),
];

/// Whether a message type value is a registered remoting type.
pub fn is_remoting_type(value: u8) -> bool {
    REMOTING_REGISTRY.iter().any(|(v, _)| *v == value)
}

/// Whether a message type value is a registered HIP type.
pub fn is_hip_type(value: u8) -> bool {
    HIP_REGISTRY.iter().any(|(v, _)| *v == value)
}

/// The registered name for a message type, searching both registries.
pub fn type_name(value: u8) -> Option<&'static str> {
    REMOTING_REGISTRY
        .iter()
        .chain(HIP_REGISTRY.iter())
        .find(|(v, _)| *v == value)
        .map(|(_, n)| *n)
}

/// Mouse button values carried in the parameter octet of
/// MousePressed/MouseReleased (§6.2): "The values of 1, 2 and 3 are defined
/// for left, right, and middle button".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MouseButton {
    /// Left button (value 1).
    Left,
    /// Right button (value 2).
    Right,
    /// Middle button (value 3).
    Middle,
    /// A negotiated extension value; "The AH MAY ignore unrecognized
    /// values".
    Other(u8),
}

impl MouseButton {
    /// Wire value.
    pub fn value(self) -> u8 {
        match self {
            MouseButton::Left => 1,
            MouseButton::Right => 2,
            MouseButton::Middle => 3,
            MouseButton::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_value(v: u8) -> Self {
        match v {
            1 => MouseButton::Left,
            2 => MouseButton::Right,
            3 => MouseButton::Middle,
            other => MouseButton::Other(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_values() {
        assert_eq!(REMOTING_REGISTRY[0], (1, "WindowManagerInfo"));
        assert_eq!(REMOTING_REGISTRY[1], (2, "RegionUpdate"));
        assert_eq!(REMOTING_REGISTRY[2], (3, "MoveRectangle"));
        assert_eq!(REMOTING_REGISTRY[3], (4, "MousePointerInfo"));
    }

    #[test]
    fn table_3_values() {
        let values: Vec<u8> = HIP_REGISTRY.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, vec![121, 122, 123, 124, 125, 126, 127]);
    }

    #[test]
    fn membership() {
        assert!(is_remoting_type(1));
        assert!(!is_remoting_type(121));
        assert!(is_hip_type(127));
        assert!(!is_hip_type(5));
        assert_eq!(type_name(3), Some("MoveRectangle"));
        assert_eq!(type_name(124), Some("MouseWheelMoved"));
        assert_eq!(type_name(200), None);
    }

    #[test]
    fn mouse_buttons() {
        assert_eq!(MouseButton::Left.value(), 1);
        assert_eq!(MouseButton::Right.value(), 2);
        assert_eq!(MouseButton::Middle.value(), 3);
        assert_eq!(MouseButton::from_value(2), MouseButton::Right);
        assert_eq!(MouseButton::from_value(9), MouseButton::Other(9));
        assert_eq!(MouseButton::Other(9).value(), 9);
    }
}
