//! The application/desktop sharing payload formats of
//! `draft-boyaci-avt-app-sharing-00`.
//!
//! Two RTP sub-protocols (§4.5):
//!
//! * **Remoting** (AH → participant): [`WindowManagerInfo`],
//!   [`RegionUpdate`], [`MoveRectangle`], [`MousePointerInfo`] — plus the
//!   RTCP feedback messages PLI and Generic NACK which live in
//!   `adshare-rtp`.
//! * **HIP** (participant → AH): [`hip::HipMessage`] — mouse
//!   pressed/released/moved/wheel, key pressed/released/typed.
//!
//! Every message starts with the 4-byte common remoting/HIP header
//! (Figure 7), then a message-type-specific header, then a payload
//! (Figure 6). [`fragment`] implements the marker/FirstPacket fragmentation
//! of Table 2; [`packetizer`] binds messages to actual RTP packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fragment;
pub mod header;
pub mod hip;
pub mod keycodes;
pub mod message;
pub mod packetizer;
pub mod registry;

pub use error::Error;
pub use header::{CommonHeader, WindowId};
pub use message::{
    MousePointerInfo, MoveRectangle, RegionUpdate, RemotingMessage, WindowManagerInfo, WindowRecord,
};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
