//! The four AH-to-participant remoting messages (draft §5.2).

use bytes::Bytes;

use crate::header::{read_u32, CommonHeader, WindowId, COMMON_HEADER_LEN};
use crate::registry::{
    MSG_MOUSE_POINTER_INFO, MSG_MOVE_RECTANGLE, MSG_REGION_UPDATE, MSG_WINDOW_MANAGER_INFO,
};
use crate::{Error, Result};

/// One 20-byte window record (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRecord {
    /// Window identifier.
    pub window_id: WindowId,
    /// Group identifier; 0 = no grouping (§5.2.1).
    pub group_id: u8,
    /// Upper-left x, absolute desktop pixels.
    pub left: u32,
    /// Upper-left y.
    pub top: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

/// Size of a window record on the wire.
pub const WINDOW_RECORD_LEN: usize = 20;

impl WindowRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.window_id.0.to_be_bytes());
        out.push(self.group_id);
        out.push(0); // reserved
        out.extend_from_slice(&self.left.to_be_bytes());
        out.extend_from_slice(&self.top.to_be_bytes());
        out.extend_from_slice(&self.width.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < WINDOW_RECORD_LEN {
            return Err(Error::Truncated {
                what: "window record",
                need: WINDOW_RECORD_LEN,
                have: buf.len(),
            });
        }
        Ok(WindowRecord {
            window_id: WindowId(u16::from_be_bytes([buf[0], buf[1]])),
            group_id: buf[2],
            left: read_u32(buf, 4, "window record left")?,
            top: read_u32(buf, 8, "window record top")?,
            width: read_u32(buf, 12, "window record width")?,
            height: read_u32(buf, 16, "window record height")?,
        })
    }
}

/// WindowManagerInfo (§5.2.1): "transfers the complete window manager state
/// to the participants". Record order is z-order, bottom first. A
/// participant "MUST close" any window absent from the latest message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowManagerInfo {
    /// Window records, bottom of stacking order first.
    pub windows: Vec<WindowRecord>,
}

/// RegionUpdate (§5.2.2): new content for a region of one window. Width and
/// height travel inside the encoded image, not the protocol ("The width and
/// height of the RegionUpdate is not transmitted explicitly").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionUpdate {
    /// Target window.
    pub window_id: WindowId,
    /// RTP payload type of the content (PNG, DCT, …) — the 7-bit PT of
    /// Figure 10.
    pub payload_type: u8,
    /// Absolute x of the region's upper-left corner.
    pub left: u32,
    /// Absolute y of the region's upper-left corner.
    pub top: u32,
    /// Encoded image payload.
    pub payload: Bytes,
}

/// MoveRectangle (§5.2.3): move a region of a window; "Source and
/// destination rectangles may overlap."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveRectangle {
    /// Target window.
    pub window_id: WindowId,
    /// Source upper-left x (absolute).
    pub src_left: u32,
    /// Source upper-left y (absolute).
    pub src_top: u32,
    /// Width of the moved region.
    pub width: u32,
    /// Height of the moved region.
    pub height: u32,
    /// Destination upper-left x (absolute).
    pub dst_left: u32,
    /// Destination upper-left y (absolute).
    pub dst_top: u32,
}

/// MousePointerInfo (§5.2.4): pointer position, optionally with a new
/// pointer image. "The payload of MousePointerInfo message can be only the
/// left and top coordinates" (move existing image), or coordinates plus a
/// new image the participant "MUST store and use ... until a new image
/// arrives".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MousePointerInfo {
    /// Window the pointer is over.
    pub window_id: WindowId,
    /// Payload type of `image` when present.
    pub payload_type: u8,
    /// Absolute pointer x.
    pub left: u32,
    /// Absolute pointer y.
    pub top: u32,
    /// New pointer image (encoded), if the icon changed.
    pub image: Option<Bytes>,
}

/// Any remoting message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemotingMessage {
    /// Complete window-manager state.
    WindowManagerInfo(WindowManagerInfo),
    /// Region content update.
    RegionUpdate(RegionUpdate),
    /// Rectangle move (scroll).
    MoveRectangle(MoveRectangle),
    /// Pointer position/icon.
    MousePointerInfo(MousePointerInfo),
}

impl RemotingMessage {
    /// The message type value (Table 1).
    pub fn msg_type(&self) -> u8 {
        match self {
            RemotingMessage::WindowManagerInfo(_) => MSG_WINDOW_MANAGER_INFO,
            RemotingMessage::RegionUpdate(_) => MSG_REGION_UPDATE,
            RemotingMessage::MoveRectangle(_) => MSG_MOVE_RECTANGLE,
            RemotingMessage::MousePointerInfo(_) => MSG_MOUSE_POINTER_INFO,
        }
    }

    /// Encode the complete (unfragmented) message: common header plus
    /// message-specific header and payload. For `RegionUpdate` /
    /// `MousePointerInfo` the FirstPacket bit is set (single-packet form,
    /// Table 2 row 1); multi-packet fragmentation is done by
    /// [`crate::fragment::fragment`] instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(COMMON_HEADER_LEN + 32);
        match self {
            RemotingMessage::WindowManagerInfo(m) => {
                // "Parameter and WindowID fields ... MUST be ignored."
                CommonHeader::new(MSG_WINDOW_MANAGER_INFO, 0, WindowId(0)).encode_into(&mut out);
                for w in &m.windows {
                    w.encode_into(&mut out);
                }
            }
            RemotingMessage::RegionUpdate(m) => {
                CommonHeader::with_fragment_param(
                    MSG_REGION_UPDATE,
                    true,
                    m.payload_type,
                    m.window_id,
                )
                .encode_into(&mut out);
                out.extend_from_slice(&m.left.to_be_bytes());
                out.extend_from_slice(&m.top.to_be_bytes());
                out.extend_from_slice(&m.payload);
            }
            RemotingMessage::MoveRectangle(m) => {
                CommonHeader::new(MSG_MOVE_RECTANGLE, 0, m.window_id).encode_into(&mut out);
                out.extend_from_slice(&m.src_left.to_be_bytes());
                out.extend_from_slice(&m.src_top.to_be_bytes());
                out.extend_from_slice(&m.width.to_be_bytes());
                out.extend_from_slice(&m.height.to_be_bytes());
                out.extend_from_slice(&m.dst_left.to_be_bytes());
                out.extend_from_slice(&m.dst_top.to_be_bytes());
            }
            RemotingMessage::MousePointerInfo(m) => {
                CommonHeader::with_fragment_param(
                    MSG_MOUSE_POINTER_INFO,
                    true,
                    m.payload_type,
                    m.window_id,
                )
                .encode_into(&mut out);
                out.extend_from_slice(&m.left.to_be_bytes());
                out.extend_from_slice(&m.top.to_be_bytes());
                if let Some(img) = &m.image {
                    out.extend_from_slice(img);
                }
            }
        }
        out
    }

    /// Decode a complete (reassembled) remoting message.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, rest) = CommonHeader::decode(buf)?;
        match header.msg_type {
            MSG_WINDOW_MANAGER_INFO => {
                if rest.len() % WINDOW_RECORD_LEN != 0 {
                    return Err(Error::Invalid {
                        what: "WindowManagerInfo",
                        detail: "body not a multiple of 20 bytes",
                    });
                }
                let windows = rest
                    .chunks_exact(WINDOW_RECORD_LEN)
                    .map(WindowRecord::decode)
                    .collect::<Result<Vec<_>>>()?;
                Ok(RemotingMessage::WindowManagerInfo(WindowManagerInfo {
                    windows,
                }))
            }
            MSG_REGION_UPDATE => {
                let left = read_u32(rest, 0, "RegionUpdate left")?;
                let top = read_u32(rest, 4, "RegionUpdate top")?;
                Ok(RemotingMessage::RegionUpdate(RegionUpdate {
                    window_id: header.window_id,
                    payload_type: header.payload_type(),
                    left,
                    top,
                    payload: Bytes::copy_from_slice(&rest[8..]),
                }))
            }
            MSG_MOVE_RECTANGLE => {
                let src_left = read_u32(rest, 0, "MoveRectangle src left")?;
                let src_top = read_u32(rest, 4, "MoveRectangle src top")?;
                let width = read_u32(rest, 8, "MoveRectangle width")?;
                let height = read_u32(rest, 12, "MoveRectangle height")?;
                let dst_left = read_u32(rest, 16, "MoveRectangle dst left")?;
                let dst_top = read_u32(rest, 20, "MoveRectangle dst top")?;
                Ok(RemotingMessage::MoveRectangle(MoveRectangle {
                    window_id: header.window_id,
                    src_left,
                    src_top,
                    width,
                    height,
                    dst_left,
                    dst_top,
                }))
            }
            MSG_MOUSE_POINTER_INFO => {
                let left = read_u32(rest, 0, "MousePointerInfo left")?;
                let top = read_u32(rest, 4, "MousePointerInfo top")?;
                let image = if rest.len() > 8 {
                    Some(Bytes::copy_from_slice(&rest[8..]))
                } else {
                    None
                };
                Ok(RemotingMessage::MousePointerInfo(MousePointerInfo {
                    window_id: header.window_id,
                    payload_type: header.payload_type(),
                    left,
                    top,
                    image,
                }))
            }
            other => Err(Error::UnknownMessageType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Figure 9: the three windows of Figure 2
    /// (A: 220,150 350×450 group 1; C: 850,320 160×150 group 2;
    /// B: 450,400 350×300 group 1), serialized byte-for-byte.
    #[test]
    fn figure9_golden_bytes() {
        let msg = RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: vec![
                WindowRecord {
                    window_id: WindowId(1),
                    group_id: 1,
                    left: 220,
                    top: 150,
                    width: 350,
                    height: 450,
                },
                WindowRecord {
                    window_id: WindowId(2),
                    group_id: 2,
                    left: 850,
                    top: 320,
                    width: 160,
                    height: 150,
                },
                WindowRecord {
                    window_id: WindowId(3),
                    group_id: 1,
                    left: 450,
                    top: 400,
                    width: 350,
                    height: 300,
                },
            ],
        });
        let wire = msg.encode();
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            // Common header: Msg Type = 1, Parameter = 0, WindowID = 0
            1, 0, 0, 0,
            // Record 1: WindowID=1, GroupID=1, Reserved=0
            0, 1, 1, 0,
            0, 0, 0, 220,      // Left = 220
            0, 0, 0, 150,      // Top = 150
            0, 0, 1, 94,       // Width = 350
            0, 0, 1, 194,      // Height = 450
            // Record 2: WindowID=2, GroupID=2
            0, 2, 2, 0,
            0, 0, 3, 82,       // Left = 850
            0, 0, 1, 64,       // Top = 320
            0, 0, 0, 160,      // Width = 160
            0, 0, 0, 150,      // Height = 150
            // Record 3: WindowID=3, GroupID=1
            0, 3, 1, 0,
            0, 0, 1, 194,      // Left = 450
            0, 0, 1, 144,      // Top = 400
            0, 0, 1, 94,       // Width = 350
            0, 0, 1, 44,       // Height = 300
        ];
        assert_eq!(wire, expected);
        assert_eq!(wire.len(), 4 + 3 * WINDOW_RECORD_LEN);
        // And it decodes back.
        assert_eq!(RemotingMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn wmi_empty_is_valid() {
        // An empty WindowManagerInfo means "close every window".
        let msg = RemotingMessage::WindowManagerInfo(WindowManagerInfo { windows: vec![] });
        let wire = msg.encode();
        assert_eq!(wire.len(), 4);
        assert_eq!(RemotingMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn wmi_partial_record_rejected() {
        let msg = RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: vec![WindowRecord {
                window_id: WindowId(1),
                group_id: 0,
                left: 0,
                top: 0,
                width: 1,
                height: 1,
            }],
        });
        let mut wire = msg.encode();
        wire.pop();
        assert!(RemotingMessage::decode(&wire).is_err());
    }

    #[test]
    fn region_update_round_trip_and_figure11_layout() {
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WindowId(1),
            payload_type: 101,
            left: 300,
            top: 200,
            payload: Bytes::from_static(b"imagebytes"),
        });
        let wire = msg.encode();
        // Figure 11: Msg Type = 2, F bit set, PT, WindowID = 1.
        assert_eq!(wire[0], 2);
        assert_eq!(wire[1], 0x80 | 101);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 1);
        assert_eq!(
            u32::from_be_bytes([wire[4], wire[5], wire[6], wire[7]]),
            300
        );
        assert_eq!(
            u32::from_be_bytes([wire[8], wire[9], wire[10], wire[11]]),
            200
        );
        assert_eq!(&wire[12..], b"imagebytes");
        assert_eq!(RemotingMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn region_update_empty_payload_ok() {
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WindowId(9),
            payload_type: 101,
            left: 0,
            top: 0,
            payload: Bytes::new(),
        });
        assert_eq!(RemotingMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn move_rectangle_figure12_layout() {
        let msg = RemotingMessage::MoveRectangle(MoveRectangle {
            window_id: WindowId(5),
            src_left: 10,
            src_top: 20,
            width: 30,
            height: 40,
            dst_left: 50,
            dst_top: 60,
        });
        let wire = msg.encode();
        assert_eq!(wire.len(), 4 + 24);
        assert_eq!(wire[0], 3);
        let fields: Vec<u32> = wire[4..]
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(fields, vec![10, 20, 30, 40, 50, 60]);
        assert_eq!(RemotingMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn pointer_info_coords_only() {
        let msg = RemotingMessage::MousePointerInfo(MousePointerInfo {
            window_id: WindowId(2),
            payload_type: 101,
            left: 111,
            top: 222,
            image: None,
        });
        let wire = msg.encode();
        assert_eq!(wire.len(), 12, "coords-only form is exactly header + 8");
        assert_eq!(RemotingMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn pointer_info_with_image() {
        let msg = RemotingMessage::MousePointerInfo(MousePointerInfo {
            window_id: WindowId(2),
            payload_type: 101,
            left: 1,
            top: 2,
            image: Some(Bytes::from_static(b"cursor-png")),
        });
        assert_eq!(RemotingMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn unknown_type_rejected() {
        let buf = [42u8, 0, 0, 0, 1, 2, 3, 4];
        assert_eq!(
            RemotingMessage::decode(&buf),
            Err(Error::UnknownMessageType(42))
        );
    }

    #[test]
    fn truncated_specific_headers_rejected() {
        for msg_type in [2u8, 3, 4] {
            let buf = [msg_type, 0, 0, 0, 1, 2]; // specific header cut short
            assert!(RemotingMessage::decode(&buf).is_err(), "type {msg_type}");
        }
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0xfeedbeefu32;
        for len in 0..96 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = RemotingMessage::decode(&buf);
            if len >= 4 {
                for t in 1..=4u8 {
                    buf[0] = t;
                    let _ = RemotingMessage::decode(&buf);
                }
            }
        }
    }
}
