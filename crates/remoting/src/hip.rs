//! The Human Interface Protocol (draft §6): seven participant-to-AH
//! messages carrying mouse and keyboard events.

use crate::header::{read_u32, CommonHeader, WindowId, COMMON_HEADER_LEN};
use crate::registry::{
    MouseButton, MSG_KEY_PRESSED, MSG_KEY_RELEASED, MSG_KEY_TYPED, MSG_MOUSE_MOVED,
    MSG_MOUSE_PRESSED, MSG_MOUSE_RELEASED, MSG_MOUSE_WHEEL_MOVED,
};
use crate::{Error, Result};

/// Any HIP message. All coordinates are absolute desktop pixels (§4.1);
/// `window_id` names "the window that had keyboard or mouse focus"
/// (§6.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HipMessage {
    /// Mouse button pressed at (left, top) — §6.2.
    MousePressed {
        /// Focus window.
        window_id: WindowId,
        /// Button (1 = left, 2 = right, 3 = middle).
        button: MouseButton,
        /// Absolute x.
        left: u32,
        /// Absolute y.
        top: u32,
    },
    /// Mouse button released — §6.3.
    MouseReleased {
        /// Focus window.
        window_id: WindowId,
        /// Button.
        button: MouseButton,
        /// Absolute x.
        left: u32,
        /// Absolute y.
        top: u32,
    },
    /// Pointer moved — §6.4.
    MouseMoved {
        /// Focus window.
        window_id: WindowId,
        /// Absolute x.
        left: u32,
        /// Absolute y.
        top: u32,
    },
    /// Wheel rotated — §6.5. `distance` is "120 * (number of notches)";
    /// positive = away from the user; negative values use 2's complement.
    MouseWheelMoved {
        /// Focus window.
        window_id: WindowId,
        /// Absolute x.
        left: u32,
        /// Absolute y.
        top: u32,
        /// Signed rotation amount.
        distance: i32,
    },
    /// Key pressed — §6.6. Java virtual keycodes.
    KeyPressed {
        /// Focus window.
        window_id: WindowId,
        /// Java VK code.
        key_code: u32,
    },
    /// Key released — §6.7. "A KeyReleased event for a key without a prior
    /// KeyPressed event for this key is acceptable."
    KeyReleased {
        /// Focus window.
        window_id: WindowId,
        /// Java VK code.
        key_code: u32,
    },
    /// Text injected — §6.8. UTF-8, unpadded; senders split long strings
    /// across multiple messages.
    KeyTyped {
        /// Focus window.
        window_id: WindowId,
        /// The typed text.
        text: String,
    },
}

impl HipMessage {
    /// The message type value (Table 3).
    pub fn msg_type(&self) -> u8 {
        match self {
            HipMessage::MousePressed { .. } => MSG_MOUSE_PRESSED,
            HipMessage::MouseReleased { .. } => MSG_MOUSE_RELEASED,
            HipMessage::MouseMoved { .. } => MSG_MOUSE_MOVED,
            HipMessage::MouseWheelMoved { .. } => MSG_MOUSE_WHEEL_MOVED,
            HipMessage::KeyPressed { .. } => MSG_KEY_PRESSED,
            HipMessage::KeyReleased { .. } => MSG_KEY_RELEASED,
            HipMessage::KeyTyped { .. } => MSG_KEY_TYPED,
        }
    }

    /// The focus window this event targets.
    pub fn window_id(&self) -> WindowId {
        match self {
            HipMessage::MousePressed { window_id, .. }
            | HipMessage::MouseReleased { window_id, .. }
            | HipMessage::MouseMoved { window_id, .. }
            | HipMessage::MouseWheelMoved { window_id, .. }
            | HipMessage::KeyPressed { window_id, .. }
            | HipMessage::KeyReleased { window_id, .. }
            | HipMessage::KeyTyped { window_id, .. } => *window_id,
        }
    }

    /// The event's screen coordinates, if it has any (mouse events).
    pub fn coordinates(&self) -> Option<(u32, u32)> {
        match self {
            HipMessage::MousePressed { left, top, .. }
            | HipMessage::MouseReleased { left, top, .. }
            | HipMessage::MouseMoved { left, top, .. }
            | HipMessage::MouseWheelMoved { left, top, .. } => Some((*left, *top)),
            _ => None,
        }
    }

    /// Encode to the RTP payload (common header + specific payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(COMMON_HEADER_LEN + 12);
        match self {
            HipMessage::MousePressed {
                window_id,
                button,
                left,
                top,
            } => {
                CommonHeader::new(MSG_MOUSE_PRESSED, button.value(), *window_id)
                    .encode_into(&mut out);
                out.extend_from_slice(&left.to_be_bytes());
                out.extend_from_slice(&top.to_be_bytes());
            }
            HipMessage::MouseReleased {
                window_id,
                button,
                left,
                top,
            } => {
                CommonHeader::new(MSG_MOUSE_RELEASED, button.value(), *window_id)
                    .encode_into(&mut out);
                out.extend_from_slice(&left.to_be_bytes());
                out.extend_from_slice(&top.to_be_bytes());
            }
            HipMessage::MouseMoved {
                window_id,
                left,
                top,
            } => {
                CommonHeader::new(MSG_MOUSE_MOVED, 0, *window_id).encode_into(&mut out);
                out.extend_from_slice(&left.to_be_bytes());
                out.extend_from_slice(&top.to_be_bytes());
            }
            HipMessage::MouseWheelMoved {
                window_id,
                left,
                top,
                distance,
            } => {
                CommonHeader::new(MSG_MOUSE_WHEEL_MOVED, 0, *window_id).encode_into(&mut out);
                out.extend_from_slice(&left.to_be_bytes());
                out.extend_from_slice(&top.to_be_bytes());
                out.extend_from_slice(&distance.to_be_bytes());
            }
            HipMessage::KeyPressed {
                window_id,
                key_code,
            } => {
                CommonHeader::new(MSG_KEY_PRESSED, 0, *window_id).encode_into(&mut out);
                out.extend_from_slice(&key_code.to_be_bytes());
            }
            HipMessage::KeyReleased {
                window_id,
                key_code,
            } => {
                CommonHeader::new(MSG_KEY_RELEASED, 0, *window_id).encode_into(&mut out);
                out.extend_from_slice(&key_code.to_be_bytes());
            }
            HipMessage::KeyTyped { window_id, text } => {
                CommonHeader::new(MSG_KEY_TYPED, 0, *window_id).encode_into(&mut out);
                out.extend_from_slice(text.as_bytes());
            }
        }
        out
    }

    /// Decode from an RTP payload.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, rest) = CommonHeader::decode(buf)?;
        let window_id = header.window_id;
        match header.msg_type {
            MSG_MOUSE_PRESSED => Ok(HipMessage::MousePressed {
                window_id,
                button: MouseButton::from_value(header.parameter),
                left: read_u32(rest, 0, "MousePressed left")?,
                top: read_u32(rest, 4, "MousePressed top")?,
            }),
            MSG_MOUSE_RELEASED => Ok(HipMessage::MouseReleased {
                window_id,
                button: MouseButton::from_value(header.parameter),
                left: read_u32(rest, 0, "MouseReleased left")?,
                top: read_u32(rest, 4, "MouseReleased top")?,
            }),
            MSG_MOUSE_MOVED => Ok(HipMessage::MouseMoved {
                window_id,
                left: read_u32(rest, 0, "MouseMoved left")?,
                top: read_u32(rest, 4, "MouseMoved top")?,
            }),
            MSG_MOUSE_WHEEL_MOVED => Ok(HipMessage::MouseWheelMoved {
                window_id,
                left: read_u32(rest, 0, "MouseWheelMoved left")?,
                top: read_u32(rest, 4, "MouseWheelMoved top")?,
                distance: read_u32(rest, 8, "MouseWheelMoved distance")? as i32,
            }),
            MSG_KEY_PRESSED => Ok(HipMessage::KeyPressed {
                window_id,
                key_code: read_u32(rest, 0, "KeyPressed code")?,
            }),
            MSG_KEY_RELEASED => Ok(HipMessage::KeyReleased {
                window_id,
                key_code: read_u32(rest, 0, "KeyReleased code")?,
            }),
            MSG_KEY_TYPED => {
                let text = std::str::from_utf8(rest)
                    .map_err(|_| Error::BadUtf8)?
                    .to_owned();
                Ok(HipMessage::KeyTyped { window_id, text })
            }
            other => Err(Error::UnknownMessageType(other)),
        }
    }

    /// Split a long string into as many `KeyTyped` messages as needed so
    /// each payload fits `max_payload` bytes, never splitting inside a
    /// UTF-8 sequence ("The participant MUST send more than one KeyTyped
    /// message if the string does not fit into a single KeyTyped packet",
    /// §6.8).
    pub fn key_typed_chunks(
        window_id: WindowId,
        text: &str,
        max_payload: usize,
    ) -> Vec<HipMessage> {
        let budget = max_payload.saturating_sub(COMMON_HEADER_LEN).max(4);
        let mut out = Vec::new();
        let mut rest = text;
        while !rest.is_empty() {
            let mut cut = budget.min(rest.len());
            while !rest.is_char_boundary(cut) {
                cut -= 1;
            }
            if cut == 0 {
                // budget >= 4 guarantees progress for any UTF-8 scalar.
                cut = rest
                    .chars()
                    .next()
                    .map(|c| c.len_utf8())
                    .unwrap_or(rest.len());
            }
            out.push(HipMessage::KeyTyped {
                window_id,
                text: rest[..cut].to_owned(),
            });
            rest = &rest[cut..];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: HipMessage) {
        let wire = msg.encode();
        assert_eq!(HipMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn all_seven_round_trip() {
        let w = WindowId(7);
        round_trip(HipMessage::MousePressed {
            window_id: w,
            button: MouseButton::Left,
            left: 10,
            top: 20,
        });
        round_trip(HipMessage::MouseReleased {
            window_id: w,
            button: MouseButton::Middle,
            left: 1,
            top: 2,
        });
        round_trip(HipMessage::MouseMoved {
            window_id: w,
            left: 500,
            top: 400,
        });
        round_trip(HipMessage::MouseWheelMoved {
            window_id: w,
            left: 5,
            top: 6,
            distance: -240,
        });
        round_trip(HipMessage::KeyPressed {
            window_id: w,
            key_code: 0x70,
        });
        round_trip(HipMessage::KeyReleased {
            window_id: w,
            key_code: 0x70,
        });
        round_trip(HipMessage::KeyTyped {
            window_id: w,
            text: "héllo wörld ☃".into(),
        });
    }

    #[test]
    fn wire_layout_mouse_pressed() {
        let msg = HipMessage::MousePressed {
            window_id: WindowId(3),
            button: MouseButton::Right,
            left: 0x01020304,
            top: 0x05060708,
        };
        let wire = msg.encode();
        assert_eq!(wire, vec![121, 2, 0, 3, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn wheel_negative_distance_twos_complement() {
        let msg = HipMessage::MouseWheelMoved {
            window_id: WindowId(0),
            left: 0,
            top: 0,
            distance: -120,
        };
        let wire = msg.encode();
        // Last 4 bytes are the 2's complement of 120.
        assert_eq!(&wire[wire.len() - 4..], &(-120i32).to_be_bytes());
        round_trip(msg);
    }

    #[test]
    fn wheel_smooth_scroll_values() {
        // "a smooth-scrolling mouse MAY send any values".
        for d in [-1, 1, 37, 120, 240, -360, 12345] {
            round_trip(HipMessage::MouseWheelMoved {
                window_id: WindowId(1),
                left: 9,
                top: 9,
                distance: d,
            });
        }
    }

    #[test]
    fn key_typed_empty_string() {
        round_trip(HipMessage::KeyTyped {
            window_id: WindowId(0),
            text: String::new(),
        });
    }

    #[test]
    fn key_typed_invalid_utf8_rejected() {
        let mut wire = HipMessage::KeyTyped {
            window_id: WindowId(0),
            text: "ab".into(),
        }
        .encode();
        wire.push(0xff);
        assert_eq!(HipMessage::decode(&wire), Err(Error::BadUtf8));
    }

    #[test]
    fn key_typed_chunking_respects_char_boundaries() {
        let text = "snow☃man".repeat(20); // multi-byte chars sprinkled in
        let chunks = HipMessage::key_typed_chunks(WindowId(1), &text, 16);
        let rebuilt: String = chunks
            .iter()
            .map(|m| match m {
                HipMessage::KeyTyped { text, .. } => text.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rebuilt, text);
        for c in &chunks {
            assert!(c.encode().len() <= 16);
        }
        assert!(chunks.len() > 1);
    }

    #[test]
    fn key_typed_chunking_single_fit() {
        let chunks = HipMessage::key_typed_chunks(WindowId(1), "hi", 1500);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn coordinates_accessor() {
        let m = HipMessage::MouseMoved {
            window_id: WindowId(1),
            left: 3,
            top: 4,
        };
        assert_eq!(m.coordinates(), Some((3, 4)));
        let k = HipMessage::KeyPressed {
            window_id: WindowId(1),
            key_code: 65,
        };
        assert_eq!(k.coordinates(), None);
    }

    #[test]
    fn truncated_rejected() {
        for t in [121u8, 122, 123, 124, 125, 126] {
            let buf = [t, 0, 0, 0, 1, 2, 3]; // short specific payload
            assert!(HipMessage::decode(&buf).is_err(), "type {t}");
        }
    }

    #[test]
    fn remoting_types_rejected_as_hip() {
        let buf = [2u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(HipMessage::decode(&buf), Err(Error::UnknownMessageType(2)));
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0xabad1deau32;
        for len in 0..64 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = HipMessage::decode(&buf);
            if len >= 4 {
                for t in 121..=127u8 {
                    buf[0] = t;
                    let _ = HipMessage::decode(&buf);
                }
            }
        }
    }
}
