//! Error type for remoting/HIP message parsing.

use std::fmt;

/// Errors from parsing or building remoting/HIP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Buffer ended before the structure was complete.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Minimum bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A message type value outside both registries.
    UnknownMessageType(u8),
    /// A field value violates the draft.
    Invalid {
        /// What was being parsed.
        what: &'static str,
        /// Diagnostic detail.
        detail: &'static str,
    },
    /// Fragmentation state machine violation (e.g. continuation without a
    /// start).
    FragmentState(&'static str),
    /// KeyTyped payload was not valid UTF-8 (§6.8 mandates UTF-8).
    BadUtf8,
    /// Payload too large for the requested MTU.
    MtuTooSmall {
        /// Requested MTU.
        mtu: usize,
        /// Minimum usable MTU.
        min: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            Error::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            Error::Invalid { what, detail } => write!(f, "invalid {what}: {detail}"),
            Error::FragmentState(detail) => write!(f, "fragmentation error: {detail}"),
            Error::BadUtf8 => write!(f, "KeyTyped payload is not valid UTF-8"),
            Error::MtuTooSmall { mtu, min } => write!(f, "MTU {mtu} below minimum {min}"),
        }
    }
}

impl std::error::Error for Error {}
