//! Binding remoting/HIP messages to RTP packets (draft §5.1.1, §6.1.1).
//!
//! * Remoting stream: the marker bit flags the last packet of a
//!   (possibly multi-packet) RegionUpdate; all fragments of one update share
//!   one RTP timestamp ("If a RegionUpdate message occupies more than one
//!   packet, the timestamp SHALL be the same for all of those packets").
//! * HIP stream: marker always zero; the timestamp is the event time at the
//!   participant.

use adshare_rtp::packet::RtpPacket;
use adshare_rtp::session::RtpSender;

use crate::fragment::{fragment, Reassembler};
use crate::hip::HipMessage;
use crate::message::RemotingMessage;
use crate::{Error, Result};

/// Packetizes remoting messages onto an RTP stream.
#[derive(Debug)]
pub struct RemotingPacketizer {
    sender: RtpSender,
    /// Maximum RTP payload bytes per packet (transport MTU minus RTP/UDP/IP
    /// overhead, or a large value for TCP).
    max_payload: usize,
}

impl RemotingPacketizer {
    /// Wrap an RTP sender with a payload budget.
    pub fn new(sender: RtpSender, max_payload: usize) -> Self {
        RemotingPacketizer {
            sender,
            max_payload,
        }
    }

    /// The underlying sender's SSRC.
    pub fn ssrc(&self) -> u32 {
        self.sender.ssrc()
    }

    /// Current payload budget.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// (packets, payload octets) sent.
    pub fn sent_counts(&self) -> (u64, u64) {
        self.sender.sent_counts()
    }

    /// Packetize one message captured at `media_ticks` (90 kHz).
    pub fn packetize(&mut self, msg: &RemotingMessage, media_ticks: u32) -> Result<Vec<RtpPacket>> {
        let fragments = fragment(msg, self.max_payload)?;
        Ok(fragments
            .into_iter()
            .map(|f| self.sender.next_packet(media_ticks, f.marker, f.payload))
            .collect())
    }
}

/// Packetizes HIP messages onto an RTP stream (one packet per event).
#[derive(Debug)]
pub struct HipPacketizer {
    sender: RtpSender,
    max_payload: usize,
}

impl HipPacketizer {
    /// Wrap an RTP sender with a payload budget.
    pub fn new(sender: RtpSender, max_payload: usize) -> Self {
        HipPacketizer {
            sender,
            max_payload,
        }
    }

    /// The underlying sender's SSRC.
    pub fn ssrc(&self) -> u32 {
        self.sender.ssrc()
    }

    /// Packetize one event that occurred at `media_ticks`. Long `KeyTyped`
    /// strings are split per §6.8, yielding several packets.
    pub fn packetize(&mut self, msg: &HipMessage, media_ticks: u32) -> Result<Vec<RtpPacket>> {
        let encoded = msg.encode();
        if encoded.len() <= self.max_payload {
            // Marker MUST be zero on HIP packets (§6.1.1).
            return Ok(vec![self.sender.next_packet(media_ticks, false, encoded)]);
        }
        match msg {
            HipMessage::KeyTyped { window_id, text } => {
                let chunks = HipMessage::key_typed_chunks(*window_id, text, self.max_payload);
                Ok(chunks
                    .iter()
                    .map(|c| self.sender.next_packet(media_ticks, false, c.encode()))
                    .collect())
            }
            _ => Err(Error::MtuTooSmall {
                mtu: self.max_payload,
                min: encoded.len(),
            }),
        }
    }
}

/// Depacketizes a remoting RTP stream back into messages. Feed packets in
/// sequence order.
#[derive(Debug, Default)]
pub struct RemotingDepacketizer {
    reassembler: Reassembler,
}

impl RemotingDepacketizer {
    /// Fresh depacketizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one RTP packet; returns a complete message when available. The
    /// reassembler borrows the packet's payload (`Bytes` clone is O(1)), so
    /// the common single-fragment path is fully zero-copy.
    pub fn feed(&mut self, pkt: &RtpPacket) -> Result<Option<RemotingMessage>> {
        self.reassembler
            .feed_bytes(pkt.header.marker, pkt.payload.clone())
    }

    /// Abandon any partial reassembly (after unrecoverable loss).
    pub fn reset(&mut self) {
        self.reassembler.reset()
    }

    /// Whether a multi-packet message is in flight.
    pub fn in_progress(&self) -> bool {
        self.reassembler.in_progress()
    }

    /// Partial messages abandoned so far.
    pub fn dropped_partials(&self) -> u64 {
        self.reassembler.dropped_partials()
    }

    /// Reassembly copy accounting: `(heap allocations, bytes copied)`.
    /// Zero on the borrowed single-fragment path; one join per completed
    /// multi-fragment message otherwise.
    pub fn copy_stats(&self) -> (u64, u64) {
        (
            self.reassembler.allocations(),
            self.reassembler.bytes_copied(),
        )
    }
}

/// Depacketize one HIP RTP packet.
pub fn depacketize_hip(pkt: &RtpPacket) -> Result<HipMessage> {
    HipMessage::decode(&pkt.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::WindowId;
    use crate::message::RegionUpdate;
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn remoting_pair(max_payload: usize) -> (RemotingPacketizer, RemotingDepacketizer) {
        let mut rng = StdRng::seed_from_u64(11);
        let sender = RtpSender::new(0x5353, 99, &mut rng);
        (
            RemotingPacketizer::new(sender, max_payload),
            RemotingDepacketizer::new(),
        )
    }

    #[test]
    fn region_update_timestamps_shared_seq_increments() {
        let (mut p, mut d) = remoting_pair(200);
        let msg = RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WindowId(1),
            payload_type: 101,
            left: 0,
            top: 0,
            payload: Bytes::from(vec![9u8; 1000]),
        });
        let packets = p.packetize(&msg, 12345).unwrap();
        assert!(packets.len() > 1);
        let ts0 = packets[0].header.timestamp;
        for (i, pkt) in packets.iter().enumerate() {
            assert_eq!(
                pkt.header.timestamp, ts0,
                "same timestamp for all fragments"
            );
            if i > 0 {
                assert_eq!(
                    pkt.header.sequence,
                    packets[i - 1].header.sequence.wrapping_add(1),
                    "sequence increments"
                );
            }
            assert_eq!(pkt.header.marker, i + 1 == packets.len());
        }
        // Round trip.
        let mut got = None;
        for pkt in &packets {
            if let Some(m) = d.feed(pkt).unwrap() {
                got = Some(m);
            }
        }
        assert_eq!(got, Some(msg));
    }

    #[test]
    fn hip_marker_always_zero() {
        let mut rng = StdRng::seed_from_u64(12);
        let sender = RtpSender::new(0x4444, 100, &mut rng);
        let mut p = HipPacketizer::new(sender, 1400);
        let pkts = p
            .packetize(
                &HipMessage::MouseMoved {
                    window_id: WindowId(1),
                    left: 2,
                    top: 3,
                },
                77,
            )
            .unwrap();
        assert_eq!(pkts.len(), 1);
        assert!(!pkts[0].header.marker);
        assert_eq!(depacketize_hip(&pkts[0]).unwrap().window_id(), WindowId(1));
    }

    #[test]
    fn long_key_typed_splits() {
        let mut rng = StdRng::seed_from_u64(13);
        let sender = RtpSender::new(0x4444, 100, &mut rng);
        let mut p = HipPacketizer::new(sender, 64);
        let text = "x".repeat(500);
        let pkts = p
            .packetize(
                &HipMessage::KeyTyped {
                    window_id: WindowId(2),
                    text: text.clone(),
                },
                0,
            )
            .unwrap();
        assert!(pkts.len() > 1);
        let rebuilt: String = pkts
            .iter()
            .map(|pkt| match depacketize_hip(pkt).unwrap() {
                HipMessage::KeyTyped { text, .. } => text,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rebuilt, text);
    }

    #[test]
    fn oversize_non_keytyped_is_error() {
        let mut rng = StdRng::seed_from_u64(14);
        let sender = RtpSender::new(0x4444, 100, &mut rng);
        let mut p = HipPacketizer::new(sender, 8); // smaller than any mouse event
        let res = p.packetize(
            &HipMessage::MouseMoved {
                window_id: WindowId(1),
                left: 2,
                top: 3,
            },
            0,
        );
        assert!(matches!(res, Err(Error::MtuTooSmall { .. })));
    }

    #[test]
    fn interleaved_updates_and_moves_round_trip() {
        use crate::message::MoveRectangle;
        let (mut p, mut d) = remoting_pair(1400);
        let msgs = vec![
            RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(1),
                payload_type: 101,
                left: 10,
                top: 10,
                payload: Bytes::from(vec![1u8; 5000]),
            }),
            RemotingMessage::MoveRectangle(MoveRectangle {
                window_id: WindowId(1),
                src_left: 0,
                src_top: 14,
                width: 100,
                height: 86,
                dst_left: 0,
                dst_top: 0,
            }),
            RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: WindowId(2),
                payload_type: 101,
                left: 0,
                top: 0,
                payload: Bytes::from(vec![2u8; 100]),
            }),
        ];
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend(p.packetize(m, i as u32 * 3000).unwrap());
        }
        let mut got = Vec::new();
        for pkt in &wire {
            if let Some(m) = d.feed(pkt).unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
    }
}
