//! Java virtual keycodes (draft §4.2/§6.6: "For keyboard events publicly
//! available Java virtual key codes are used"; the canonical values live in
//! OpenJDK's `KeyEvent.java`).
//!
//! This table carries the codes a desktop-sharing session actually needs:
//! printable keys, modifiers, navigation, editing and function keys, all
//! matching OpenJDK's `VK_*` constants.

/// VK_ENTER.
pub const VK_ENTER: u32 = 0x0A;
/// VK_BACK_SPACE.
pub const VK_BACK_SPACE: u32 = 0x08;
/// VK_TAB.
pub const VK_TAB: u32 = 0x09;
/// VK_SHIFT.
pub const VK_SHIFT: u32 = 0x10;
/// VK_CONTROL.
pub const VK_CONTROL: u32 = 0x11;
/// VK_ALT.
pub const VK_ALT: u32 = 0x12;
/// VK_PAUSE.
pub const VK_PAUSE: u32 = 0x13;
/// VK_CAPS_LOCK.
pub const VK_CAPS_LOCK: u32 = 0x14;
/// VK_ESCAPE.
pub const VK_ESCAPE: u32 = 0x1B;
/// VK_SPACE.
pub const VK_SPACE: u32 = 0x20;
/// VK_PAGE_UP.
pub const VK_PAGE_UP: u32 = 0x21;
/// VK_PAGE_DOWN.
pub const VK_PAGE_DOWN: u32 = 0x22;
/// VK_END.
pub const VK_END: u32 = 0x23;
/// VK_HOME.
pub const VK_HOME: u32 = 0x24;
/// VK_LEFT.
pub const VK_LEFT: u32 = 0x25;
/// VK_UP.
pub const VK_UP: u32 = 0x26;
/// VK_RIGHT.
pub const VK_RIGHT: u32 = 0x27;
/// VK_DOWN.
pub const VK_DOWN: u32 = 0x28;
/// VK_COMMA.
pub const VK_COMMA: u32 = 0x2C;
/// VK_MINUS.
pub const VK_MINUS: u32 = 0x2D;
/// VK_PERIOD.
pub const VK_PERIOD: u32 = 0x2E;
/// VK_SLASH.
pub const VK_SLASH: u32 = 0x2F;
/// VK_0 (digits are their ASCII codes).
pub const VK_0: u32 = 0x30;
/// VK_9.
pub const VK_9: u32 = 0x39;
/// VK_SEMICOLON.
pub const VK_SEMICOLON: u32 = 0x3B;
/// VK_EQUALS.
pub const VK_EQUALS: u32 = 0x3D;
/// VK_A (letters are their uppercase ASCII codes).
pub const VK_A: u32 = 0x41;
/// VK_Z.
pub const VK_Z: u32 = 0x5A;
/// VK_OPEN_BRACKET.
pub const VK_OPEN_BRACKET: u32 = 0x5B;
/// VK_BACK_SLASH.
pub const VK_BACK_SLASH: u32 = 0x5C;
/// VK_CLOSE_BRACKET.
pub const VK_CLOSE_BRACKET: u32 = 0x5D;
/// VK_DELETE.
pub const VK_DELETE: u32 = 0x7F;
/// VK_INSERT.
pub const VK_INSERT: u32 = 0x9B;
/// VK_F1 — "For example, F1 key is defined as `int VK_F1 = 0x70;`" (§6.6).
pub const VK_F1: u32 = 0x70;
/// VK_F2.
pub const VK_F2: u32 = 0x71;
/// VK_F3.
pub const VK_F3: u32 = 0x72;
/// VK_F4.
pub const VK_F4: u32 = 0x73;
/// VK_F5.
pub const VK_F5: u32 = 0x74;
/// VK_F6.
pub const VK_F6: u32 = 0x75;
/// VK_F7.
pub const VK_F7: u32 = 0x76;
/// VK_F8.
pub const VK_F8: u32 = 0x77;
/// VK_F9.
pub const VK_F9: u32 = 0x78;
/// VK_F10.
pub const VK_F10: u32 = 0x79;
/// VK_F11.
pub const VK_F11: u32 = 0x7A;
/// VK_F12.
pub const VK_F12: u32 = 0x7B;
/// VK_META.
pub const VK_META: u32 = 0x9D;
/// VK_QUOTE.
pub const VK_QUOTE: u32 = 0xDE;
/// VK_BACK_QUOTE.
pub const VK_BACK_QUOTE: u32 = 0xC0;
/// VK_NUM_LOCK.
pub const VK_NUM_LOCK: u32 = 0x90;
/// VK_SCROLL_LOCK.
pub const VK_SCROLL_LOCK: u32 = 0x91;
/// VK_PRINTSCREEN.
pub const VK_PRINTSCREEN: u32 = 0x9A;
/// VK_WINDOWS.
pub const VK_WINDOWS: u32 = 0x020C;
/// VK_CONTEXT_MENU.
pub const VK_CONTEXT_MENU: u32 = 0x020D;
/// VK_UNDEFINED.
pub const VK_UNDEFINED: u32 = 0x0;

/// Map a Unicode character to the Java VK code of the key that produces it
/// on a US layout (best effort; `None` for characters with no single key).
pub fn vk_for_char(c: char) -> Option<u32> {
    match c {
        'a'..='z' => Some(c.to_ascii_uppercase() as u32),
        'A'..='Z' => Some(c as u32),
        '0'..='9' => Some(c as u32),
        ' ' => Some(VK_SPACE),
        '\n' | '\r' => Some(VK_ENTER),
        '\t' => Some(VK_TAB),
        ',' => Some(VK_COMMA),
        '-' | '_' => Some(VK_MINUS),
        '.' | '>' => Some(VK_PERIOD),
        '/' | '?' => Some(VK_SLASH),
        ';' | ':' => Some(VK_SEMICOLON),
        '=' | '+' => Some(VK_EQUALS),
        '[' | '{' => Some(VK_OPEN_BRACKET),
        ']' | '}' => Some(VK_CLOSE_BRACKET),
        '\\' | '|' => Some(VK_BACK_SLASH),
        '\'' | '"' => Some(VK_QUOTE),
        '`' | '~' => Some(VK_BACK_QUOTE),
        '<' => Some(VK_COMMA),
        _ => None,
    }
}

/// A human-readable name for a VK code (diagnostics, logs).
pub fn vk_name(code: u32) -> Option<&'static str> {
    Some(match code {
        VK_ENTER => "VK_ENTER",
        VK_BACK_SPACE => "VK_BACK_SPACE",
        VK_TAB => "VK_TAB",
        VK_SHIFT => "VK_SHIFT",
        VK_CONTROL => "VK_CONTROL",
        VK_ALT => "VK_ALT",
        VK_PAUSE => "VK_PAUSE",
        VK_CAPS_LOCK => "VK_CAPS_LOCK",
        VK_ESCAPE => "VK_ESCAPE",
        VK_SPACE => "VK_SPACE",
        VK_PAGE_UP => "VK_PAGE_UP",
        VK_PAGE_DOWN => "VK_PAGE_DOWN",
        VK_END => "VK_END",
        VK_HOME => "VK_HOME",
        VK_LEFT => "VK_LEFT",
        VK_UP => "VK_UP",
        VK_RIGHT => "VK_RIGHT",
        VK_DOWN => "VK_DOWN",
        VK_DELETE => "VK_DELETE",
        VK_INSERT => "VK_INSERT",
        VK_F1 => "VK_F1",
        VK_F2 => "VK_F2",
        VK_F3 => "VK_F3",
        VK_F4 => "VK_F4",
        VK_F5 => "VK_F5",
        VK_F6 => "VK_F6",
        VK_F7 => "VK_F7",
        VK_F8 => "VK_F8",
        VK_F9 => "VK_F9",
        VK_F10 => "VK_F10",
        VK_F11 => "VK_F11",
        VK_F12 => "VK_F12",
        VK_META => "VK_META",
        VK_NUM_LOCK => "VK_NUM_LOCK",
        VK_SCROLL_LOCK => "VK_SCROLL_LOCK",
        VK_PRINTSCREEN => "VK_PRINTSCREEN",
        VK_WINDOWS => "VK_WINDOWS",
        VK_CONTEXT_MENU => "VK_CONTEXT_MENU",
        0x30..=0x39 => return digit_name(code),
        0x41..=0x5A => return letter_name(code),
        _ => return None,
    })
}

fn digit_name(code: u32) -> Option<&'static str> {
    const NAMES: [&str; 10] = [
        "VK_0", "VK_1", "VK_2", "VK_3", "VK_4", "VK_5", "VK_6", "VK_7", "VK_8", "VK_9",
    ];
    NAMES.get((code - 0x30) as usize).copied()
}

fn letter_name(code: u32) -> Option<&'static str> {
    const NAMES: [&str; 26] = [
        "VK_A", "VK_B", "VK_C", "VK_D", "VK_E", "VK_F", "VK_G", "VK_H", "VK_I", "VK_J", "VK_K",
        "VK_L", "VK_M", "VK_N", "VK_O", "VK_P", "VK_Q", "VK_R", "VK_S", "VK_T", "VK_U", "VK_V",
        "VK_W", "VK_X", "VK_Y", "VK_Z",
    ];
    NAMES.get((code - 0x41) as usize).copied()
}

/// Whether a VK code is a modifier key (matters for press/release pairing).
pub fn is_modifier(code: u32) -> bool {
    matches!(code, VK_SHIFT | VK_CONTROL | VK_ALT | VK_META)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_matches_the_drafts_example() {
        // §6.6: "F1 key is defined as 'int VK_F1 = 0x70;'".
        assert_eq!(VK_F1, 0x70);
        assert_eq!(vk_name(0x70), Some("VK_F1"));
    }

    #[test]
    fn letters_and_digits_are_ascii() {
        assert_eq!(vk_for_char('a'), Some(0x41));
        assert_eq!(vk_for_char('Z'), Some(0x5A));
        assert_eq!(vk_for_char('0'), Some(0x30));
        assert_eq!(vk_for_char('9'), Some(0x39));
    }

    #[test]
    fn shifted_chars_map_to_base_key() {
        assert_eq!(vk_for_char('?'), vk_for_char('/'));
        assert_eq!(vk_for_char('{'), vk_for_char('['));
        assert_eq!(vk_for_char('+'), vk_for_char('='));
    }

    #[test]
    fn unicode_without_key_is_none() {
        assert_eq!(vk_for_char('☃'), None);
        assert_eq!(vk_for_char('é'), None);
    }

    #[test]
    fn names_resolve() {
        assert_eq!(vk_name(VK_ESCAPE), Some("VK_ESCAPE"));
        assert_eq!(vk_name(0x44), Some("VK_D"));
        assert_eq!(vk_name(0x37), Some("VK_7"));
        assert_eq!(vk_name(0xFFFF), None);
    }

    #[test]
    fn modifiers() {
        assert!(is_modifier(VK_SHIFT));
        assert!(is_modifier(VK_META));
        assert!(!is_modifier(VK_A));
        assert!(!is_modifier(VK_F1));
    }
}
