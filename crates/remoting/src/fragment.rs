//! RegionUpdate fragmentation (draft §5.2.2, Table 2).
//!
//! A `RegionUpdate` (or `MousePointerInfo`) larger than one RTP packet is
//! split across packets. Every packet carries the 4-byte common header; the
//! `left`/`top` fields ride only in the first packet. Two bits signal
//! fragment position:
//!
//! | Marker bit | FirstPacket bit | Fragment type          |
//! |------------|-----------------|------------------------|
//! | 1          | 1               | Not fragmented         |
//! | 0          | 1               | Start fragment         |
//! | 0          | 0               | Continuation fragment  |
//! | 1          | 0               | End fragment           |
//!
//! The marker bit lives in the RTP header (§5.1.1); the FirstPacket bit in
//! the common header's parameter octet (Figure 10).

use bytes::Bytes;

use crate::header::{CommonHeader, WindowId, COMMON_HEADER_LEN};
use crate::message::{MousePointerInfo, RegionUpdate, RemotingMessage};
use crate::registry::{MSG_MOUSE_POINTER_INFO, MSG_REGION_UPDATE};
use crate::{Error, Result};

/// One RTP-packet-sized piece of a remoting message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentPacket {
    /// Goes into the RTP header's marker bit.
    pub marker: bool,
    /// The RTP payload (common header + optional specific header + chunk).
    pub payload: Vec<u8>,
}

/// Minimum per-packet payload budget the fragmenter accepts: common header,
/// the 8-byte specific header, and at least one content byte.
pub const MIN_FRAGMENT_BUDGET: usize = COMMON_HEADER_LEN + 8 + 1;

/// Split a remoting message into RTP payloads of at most `max_payload`
/// bytes each.
///
/// `WindowManagerInfo` and `MoveRectangle` are never fragmented (the draft
/// defines fragmentation only for content-carrying messages); they must fit
/// `max_payload` or an error is returned.
pub fn fragment(msg: &RemotingMessage, max_payload: usize) -> Result<Vec<FragmentPacket>> {
    match msg {
        RemotingMessage::RegionUpdate(ru) => Ok(fragment_content(
            MSG_REGION_UPDATE,
            ru.window_id,
            ru.payload_type,
            ru.left,
            ru.top,
            &ru.payload,
            max_payload,
        )?),
        RemotingMessage::MousePointerInfo(mp) => {
            let mut body = Vec::with_capacity(mp.image.as_ref().map_or(0, |i| i.len()));
            if let Some(img) = &mp.image {
                body.extend_from_slice(img);
            }
            Ok(fragment_content(
                MSG_MOUSE_POINTER_INFO,
                mp.window_id,
                mp.payload_type,
                mp.left,
                mp.top,
                &body,
                max_payload,
            )?)
        }
        other => {
            let encoded = other.encode();
            if encoded.len() > max_payload {
                return Err(Error::MtuTooSmall {
                    mtu: max_payload,
                    min: encoded.len(),
                });
            }
            // "Unless defined otherwise, all other message types MUST set
            // this bit to zero" (§5.1.1).
            Ok(vec![FragmentPacket {
                marker: false,
                payload: encoded,
            }])
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fragment_content(
    msg_type: u8,
    window: WindowId,
    pt: u8,
    left: u32,
    top: u32,
    body: &[u8],
    max_payload: usize,
) -> Result<Vec<FragmentPacket>> {
    if max_payload < MIN_FRAGMENT_BUDGET {
        return Err(Error::MtuTooSmall {
            mtu: max_payload,
            min: MIN_FRAGMENT_BUDGET,
        });
    }
    let first_capacity = max_payload - COMMON_HEADER_LEN - 8;
    let cont_capacity = max_payload - COMMON_HEADER_LEN;

    let mut packets = Vec::new();
    let first_chunk_len = body.len().min(first_capacity);
    let single = first_chunk_len == body.len();

    let mut payload = Vec::with_capacity(COMMON_HEADER_LEN + 8 + first_chunk_len);
    CommonHeader::with_fragment_param(msg_type, true, pt, window).encode_into(&mut payload);
    payload.extend_from_slice(&left.to_be_bytes());
    payload.extend_from_slice(&top.to_be_bytes());
    payload.extend_from_slice(&body[..first_chunk_len]);
    packets.push(FragmentPacket {
        marker: single,
        payload,
    });

    let mut off = first_chunk_len;
    while off < body.len() {
        let take = (body.len() - off).min(cont_capacity);
        let last = off + take == body.len();
        let mut payload = Vec::with_capacity(COMMON_HEADER_LEN + take);
        CommonHeader::with_fragment_param(msg_type, false, pt, window).encode_into(&mut payload);
        payload.extend_from_slice(&body[off..off + take]);
        packets.push(FragmentPacket {
            marker: last,
            payload,
        });
        off += take;
    }
    Ok(packets)
}

/// In-progress reassembly state. Fragment payload slices are *borrowed*
/// (`Bytes` sub-slices sharing the packet allocation) and joined exactly
/// once at completion — the old per-fragment `extend_from_slice` copy is
/// gone (ROADMAP "zero-copy fragmentation").
#[derive(Debug)]
struct Partial {
    msg_type: u8,
    window: WindowId,
    pt: u8,
    left: u32,
    top: u32,
    parts: Vec<Bytes>,
    len: usize,
}

/// Reassembles remoting messages from in-order RTP payloads.
///
/// Feed packets *in sequence order* (run them through
/// `adshare_rtp::reorder::ReorderBuffer` first on UDP). When a gap is
/// unrecoverable, call [`Reassembler::reset`] and request a PLI.
///
/// Copy accounting: [`Reassembler::allocations`] / [`Reassembler::bytes_copied`]
/// count every heap allocation and byte copy reassembly performs. The
/// single-fragment path is zero-copy (the message borrows the packet's
/// `Bytes`); a multi-fragment message costs exactly one allocation and one
/// copy of its body at completion.
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: Option<Partial>,
    dropped_partials: u64,
    unknown_skipped: u64,
    allocations: u64,
    bytes_copied: u64,
}

impl Reassembler {
    /// Fresh reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one RTP payload with its marker bit, borrowing `payload`'s
    /// allocation (`Bytes::slice` is O(1)). Returns a complete message when
    /// one finishes.
    ///
    /// Message types outside the Table 1 registry are skipped without
    /// disturbing any in-progress reassembly — §5.1.2: "Participants MAY
    /// ignore such additional message types", and a forward-compatible
    /// viewer must not let them poison the stream.
    pub fn feed_bytes(&mut self, marker: bool, payload: Bytes) -> Result<Option<RemotingMessage>> {
        let (header, rest) = CommonHeader::decode(&payload)?;
        if !crate::registry::is_remoting_type(header.msg_type) {
            self.unknown_skipped += 1;
            return Ok(None);
        }
        let fragmentable =
            header.msg_type == MSG_REGION_UPDATE || header.msg_type == MSG_MOUSE_POINTER_INFO;
        if !fragmentable {
            // Complete in one packet by definition.
            return RemotingMessage::decode(&payload).map(Some);
        }
        let rest_off = payload.len() - rest.len();

        if header.first_packet() {
            if self.partial.take().is_some() {
                // A new update started while one was incomplete: the old one
                // is unrecoverable (its end fragment was lost).
                self.dropped_partials += 1;
            }
            if rest.len() < 8 {
                return Err(Error::Truncated {
                    what: "RegionUpdate specific header",
                    need: 8,
                    have: rest.len(),
                });
            }
            let left = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
            let top = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
            let body = payload.slice(rest_off + 8..);
            if marker {
                // Not fragmented: complete immediately, borrowing the slice.
                return Ok(Some(self.build(
                    header.msg_type,
                    header.window_id,
                    header.payload_type(),
                    left,
                    top,
                    vec![body],
                )));
            }
            self.partial = Some(Partial {
                msg_type: header.msg_type,
                window: header.window_id,
                pt: header.payload_type(),
                left,
                top,
                len: body.len(),
                parts: vec![body],
            });
            Ok(None)
        } else {
            let Some(mut partial) = self.partial.take() else {
                return Err(Error::FragmentState("continuation without start"));
            };
            if partial.msg_type != header.msg_type
                || partial.window != header.window_id
                || partial.pt != header.payload_type()
            {
                self.dropped_partials += 1;
                return Err(Error::FragmentState("continuation does not match start"));
            }
            let chunk = payload.slice(rest_off..);
            partial.len += chunk.len();
            partial.parts.push(chunk);
            if marker {
                let Partial {
                    msg_type,
                    window,
                    pt,
                    left,
                    top,
                    parts,
                    ..
                } = partial;
                return Ok(Some(self.build(msg_type, window, pt, left, top, parts)));
            }
            self.partial = Some(partial);
            Ok(None)
        }
    }

    /// Slice-based entry point for callers without a `Bytes` in hand
    /// (tests, fuzzers). Copies `payload` into a fresh allocation first —
    /// the copy is charged to the counters — then delegates to
    /// [`Reassembler::feed_bytes`].
    pub fn feed(&mut self, marker: bool, payload: &[u8]) -> Result<Option<RemotingMessage>> {
        self.allocations += 1;
        self.bytes_copied += payload.len() as u64;
        self.feed_bytes(marker, Bytes::copy_from_slice(payload))
    }

    fn build(
        &mut self,
        msg_type: u8,
        window: WindowId,
        pt: u8,
        left: u32,
        top: u32,
        parts: Vec<Bytes>,
    ) -> RemotingMessage {
        let body = self.join(parts);
        if msg_type == MSG_REGION_UPDATE {
            RemotingMessage::RegionUpdate(RegionUpdate {
                window_id: window,
                payload_type: pt,
                left,
                top,
                payload: body,
            })
        } else {
            RemotingMessage::MousePointerInfo(MousePointerInfo {
                window_id: window,
                payload_type: pt,
                left,
                top,
                image: if body.is_empty() { None } else { Some(body) },
            })
        }
    }

    /// One part passes through untouched (zero-copy); several parts are
    /// joined with exactly one allocation + copy, which the counters record.
    fn join(&mut self, mut parts: Vec<Bytes>) -> Bytes {
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        self.allocations += 1;
        self.bytes_copied += total as u64;
        let mut body = Vec::with_capacity(total);
        for p in &parts {
            body.extend_from_slice(p);
        }
        Bytes::from(body)
    }

    /// Abandon any in-progress reassembly (e.g. after an unfillable gap).
    pub fn reset(&mut self) {
        if self.partial.take().is_some() {
            self.dropped_partials += 1;
        }
    }

    /// Whether a message is mid-reassembly.
    pub fn in_progress(&self) -> bool {
        self.partial.is_some()
    }

    /// How many partial messages were abandoned.
    pub fn dropped_partials(&self) -> u64 {
        self.dropped_partials
    }

    /// Unknown message types skipped per §5.1.2 forward compatibility.
    pub fn unknown_skipped(&self) -> u64 {
        self.unknown_skipped
    }

    /// Heap allocations reassembly has performed (joins + slice-entry
    /// copies); the `Bytes`-borrowing fast path performs none.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Bytes copied by reassembly (same accounting as
    /// [`Reassembler::allocations`]).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_update(payload_len: usize) -> RemotingMessage {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        RemotingMessage::RegionUpdate(RegionUpdate {
            window_id: WindowId(3),
            payload_type: 101,
            left: 640,
            top: 360,
            payload: Bytes::from(payload),
        })
    }

    fn reassemble_all(packets: &[FragmentPacket]) -> Vec<RemotingMessage> {
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        for p in packets {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                out.push(m);
            }
        }
        out
    }

    #[test]
    fn single_packet_marker_and_first_bit() {
        let msg = region_update(100);
        let packets = fragment(&msg, 1400).unwrap();
        assert_eq!(packets.len(), 1);
        assert!(packets[0].marker, "Table 2: not fragmented → marker 1");
        let (h, _) = CommonHeader::decode(&packets[0].payload).unwrap();
        assert!(h.first_packet(), "Table 2: not fragmented → FirstPacket 1");
        assert_eq!(reassemble_all(&packets), vec![msg]);
    }

    #[test]
    fn multi_packet_bits_follow_table_2() {
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        assert!(packets.len() >= 4);
        for (i, p) in packets.iter().enumerate() {
            let (h, _) = CommonHeader::decode(&p.payload).unwrap();
            let first = i == 0;
            let last = i + 1 == packets.len();
            assert_eq!(h.first_packet(), first, "packet {i} FirstPacket");
            assert_eq!(p.marker, last, "packet {i} marker");
            assert!(p.payload.len() <= 1400);
        }
        assert_eq!(reassemble_all(&packets), vec![msg]);
    }

    #[test]
    fn left_top_only_in_first_packet() {
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        // First payload: header + 8 + chunk; continuations: header + chunk.
        assert_eq!(&packets[0].payload[4..8], &640u32.to_be_bytes());
        assert_eq!(&packets[0].payload[8..12], &360u32.to_be_bytes());
        // Continuation content starts right after the common header with the
        // next body byte, not coordinates.
        let first_chunk = 1400 - 12;
        assert_eq!(packets[1].payload[4] as usize, first_chunk % 251);
    }

    #[test]
    fn exact_boundary_sizes() {
        // Payload exactly filling 1, 2 packets, and off-by-one around it.
        let mtu = 100;
        let first_cap = mtu - 12;
        let cont_cap = mtu - 4;
        for extra in [0usize, 1, cont_cap - 1, cont_cap, cont_cap + 1] {
            let msg = region_update(first_cap + extra);
            let packets = fragment(&msg, mtu).unwrap();
            let expected = 1 + extra.div_ceil(cont_cap).max(if extra == 0 { 0 } else { 1 });
            assert_eq!(packets.len(), expected, "extra = {extra}");
            assert_eq!(reassemble_all(&packets), vec![msg], "extra = {extra}");
        }
    }

    #[test]
    fn empty_payload_single_packet() {
        let msg = region_update(0);
        let packets = fragment(&msg, 100).unwrap();
        assert_eq!(packets.len(), 1);
        assert!(packets[0].marker);
        assert_eq!(reassemble_all(&packets), vec![msg]);
    }

    #[test]
    fn mtu_too_small_rejected() {
        let msg = region_update(10);
        assert!(matches!(fragment(&msg, 12), Err(Error::MtuTooSmall { .. })));
        assert!(fragment(&msg, MIN_FRAGMENT_BUDGET).is_ok());
    }

    #[test]
    fn pointer_info_fragments_too() {
        let msg = RemotingMessage::MousePointerInfo(MousePointerInfo {
            window_id: WindowId(1),
            payload_type: 101,
            left: 5,
            top: 6,
            image: Some(Bytes::from(vec![7u8; 3000])),
        });
        let packets = fragment(&msg, 1200).unwrap();
        assert!(packets.len() > 1);
        assert_eq!(reassemble_all(&packets), vec![msg]);
    }

    #[test]
    fn pointer_info_coords_only_stays_coords_only() {
        let msg = RemotingMessage::MousePointerInfo(MousePointerInfo {
            window_id: WindowId(1),
            payload_type: 101,
            left: 5,
            top: 6,
            image: None,
        });
        let packets = fragment(&msg, 1200).unwrap();
        assert_eq!(reassemble_all(&packets), vec![msg]);
    }

    #[test]
    fn wmi_never_fragmented() {
        use crate::message::{WindowManagerInfo, WindowRecord};
        let msg = RemotingMessage::WindowManagerInfo(WindowManagerInfo {
            windows: (0..10)
                .map(|i| WindowRecord {
                    window_id: WindowId(i),
                    group_id: 0,
                    left: 0,
                    top: 0,
                    width: 1,
                    height: 1,
                })
                .collect(),
        });
        // 10 records = 204 bytes: fits 1400, not 100.
        let packets = fragment(&msg, 1400).unwrap();
        assert_eq!(packets.len(), 1);
        assert!(
            !packets[0].marker,
            "non-RegionUpdate messages keep marker 0"
        );
        assert!(matches!(
            fragment(&msg, 100),
            Err(Error::MtuTooSmall { .. })
        ));
    }

    #[test]
    fn lost_end_fragment_drops_partial_on_next_start() {
        let big = region_update(5000);
        let small = region_update(50);
        let mut packets = fragment(&big, 1400).unwrap();
        packets.pop(); // lose the end fragment
        let mut r = Reassembler::new();
        for p in &packets {
            assert_eq!(r.feed(p.marker, &p.payload).unwrap(), None);
        }
        assert!(r.in_progress());
        // Next update arrives; old partial is abandoned, new one completes.
        let next = fragment(&small, 1400).unwrap();
        let got = r.feed(next[0].marker, &next[0].payload).unwrap();
        assert_eq!(got, Some(small));
        assert_eq!(r.dropped_partials(), 1);
    }

    #[test]
    fn continuation_without_start_errors() {
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        let mut r = Reassembler::new();
        assert_eq!(
            r.feed(packets[1].marker, &packets[1].payload),
            Err(Error::FragmentState("continuation without start"))
        );
    }

    #[test]
    fn mismatched_continuation_errors() {
        let a = region_update(5000);
        let mut b = fragment(&region_update(5000), 1400).unwrap();
        // Tamper with b's continuation window id.
        b[1].payload[2] = 0xff;
        let a_packets = fragment(&a, 1400).unwrap();
        let mut r = Reassembler::new();
        r.feed(a_packets[0].marker, &a_packets[0].payload).unwrap();
        assert!(r.feed(b[1].marker, &b[1].payload).is_err());
        assert_eq!(r.dropped_partials(), 1);
        assert!(!r.in_progress());
    }

    #[test]
    fn reset_clears_state() {
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        let mut r = Reassembler::new();
        r.feed(packets[0].marker, &packets[0].payload).unwrap();
        assert!(r.in_progress());
        r.reset();
        assert!(!r.in_progress());
        assert_eq!(r.dropped_partials(), 1);
        // Reset when idle does not count.
        r.reset();
        assert_eq!(r.dropped_partials(), 1);
    }

    #[test]
    fn interleaved_unfragmented_messages_pass_through() {
        use crate::message::MoveRectangle;
        let mv = RemotingMessage::MoveRectangle(MoveRectangle {
            window_id: WindowId(1),
            src_left: 0,
            src_top: 14,
            width: 100,
            height: 86,
            dst_left: 0,
            dst_top: 0,
        });
        let mut r = Reassembler::new();
        let pkts = fragment(&mv, 1400).unwrap();
        assert_eq!(r.feed(pkts[0].marker, &pkts[0].payload).unwrap(), Some(mv));
    }

    #[test]
    fn unknown_message_types_skipped_without_disturbing_reassembly() {
        // §5.1.2 forward compatibility: a registered-in-the-future message
        // type (say 9) arriving between fragments of a RegionUpdate must be
        // ignored, and the in-flight reassembly must complete untouched.
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        let mut r = Reassembler::new();
        assert_eq!(
            r.feed(packets[0].marker, &packets[0].payload).unwrap(),
            None
        );
        // Interloper: unknown type 9 with some payload.
        let mut alien = vec![9u8, 0, 0, 7];
        alien.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(r.feed(false, &alien).unwrap(), None);
        assert_eq!(r.unknown_skipped(), 1);
        assert!(r.in_progress(), "partial must survive the interloper");
        let mut got = None;
        for p in &packets[1..] {
            if let Some(m) = r.feed(p.marker, &p.payload).unwrap() {
                got = Some(m);
            }
        }
        assert_eq!(got, Some(msg));
        assert_eq!(r.dropped_partials(), 0);
    }

    #[test]
    fn single_fragment_feed_bytes_is_zero_copy() {
        let msg = region_update(100);
        let packets = fragment(&msg, 1400).unwrap();
        assert_eq!(packets.len(), 1);
        let mut r = Reassembler::new();
        let got = r
            .feed_bytes(
                packets[0].marker,
                Bytes::copy_from_slice(&packets[0].payload),
            )
            .unwrap();
        assert_eq!(got, Some(msg));
        assert_eq!(r.allocations(), 0, "borrowed slice, no copy");
        assert_eq!(r.bytes_copied(), 0);
    }

    #[test]
    fn multi_fragment_feed_bytes_joins_exactly_once() {
        let msg = region_update(5000);
        let packets = fragment(&msg, 1400).unwrap();
        assert!(packets.len() > 1);
        let mut r = Reassembler::new();
        let mut got = None;
        for p in &packets {
            if let Some(m) = r
                .feed_bytes(p.marker, Bytes::copy_from_slice(&p.payload))
                .unwrap()
            {
                got = Some(m);
            }
        }
        assert_eq!(got, Some(msg));
        assert_eq!(r.allocations(), 1, "one join at completion");
        assert_eq!(r.bytes_copied(), 5000, "only the body bytes, once");
    }

    #[test]
    fn slice_entry_point_charges_its_copies() {
        let msg = region_update(100);
        let packets = fragment(&msg, 1400).unwrap();
        let mut r = Reassembler::new();
        r.feed(packets[0].marker, &packets[0].payload).unwrap();
        assert_eq!(r.allocations(), 1);
        assert_eq!(r.bytes_copied(), packets[0].payload.len() as u64);
    }

    #[test]
    fn reassembler_never_panics_on_noise() {
        let mut r = Reassembler::new();
        let mut state = 0xdddddddd_u32;
        for len in 0..64 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = r.feed(len % 2 == 0, &buf);
        }
    }
}
