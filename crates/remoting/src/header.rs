//! The common remoting/HIP header (draft §5.1.2, Figure 7).
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |  Msg Type     |    Parameter  |          WindowID             |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! For `RegionUpdate` and `MousePointerInfo` the parameter octet splits into
//! the FirstPacket bit and a 7-bit payload type (Figure 10).

use crate::{Error, Result};

/// A window identifier on the wire: unsigned, range 0–65535 (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u16);

/// Size of the common header in bytes.
pub const COMMON_HEADER_LEN: usize = 4;

/// The decoded common remoting/HIP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonHeader {
    /// Message type (Tables 1 and 3).
    pub msg_type: u8,
    /// Parameter octet; meaning depends on the message type:
    /// F-bit + payload type for RegionUpdate/MousePointerInfo, mouse button
    /// for MousePressed/Released, ignored otherwise.
    pub parameter: u8,
    /// Target window. "All remoting messages carry the windowID to identify
    /// the target of message" (§4.5.1); for HIP it is "the window that had
    /// keyboard or mouse focus" (§6.1.2).
    pub window_id: WindowId,
}

impl CommonHeader {
    /// Build a header.
    pub fn new(msg_type: u8, parameter: u8, window_id: WindowId) -> Self {
        CommonHeader {
            msg_type,
            parameter,
            window_id,
        }
    }

    /// Build a RegionUpdate-style header with FirstPacket bit and payload
    /// type packed into the parameter octet (Figure 10).
    pub fn with_fragment_param(
        msg_type: u8,
        first_packet: bool,
        pt: u8,
        window_id: WindowId,
    ) -> Self {
        CommonHeader {
            msg_type,
            parameter: (u8::from(first_packet) << 7) | (pt & 0x7f),
            window_id,
        }
    }

    /// The FirstPacket bit (only meaningful for RegionUpdate /
    /// MousePointerInfo).
    pub fn first_packet(&self) -> bool {
        self.parameter & 0x80 != 0
    }

    /// The 7-bit payload type (only meaningful for RegionUpdate /
    /// MousePointerInfo).
    pub fn payload_type(&self) -> u8 {
        self.parameter & 0x7f
    }

    /// Append to a buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.msg_type);
        out.push(self.parameter);
        out.extend_from_slice(&self.window_id.0.to_be_bytes());
    }

    /// Parse from the front of `buf`; returns the header and remaining bytes.
    pub fn decode(buf: &[u8]) -> Result<(Self, &[u8])> {
        if buf.len() < COMMON_HEADER_LEN {
            return Err(Error::Truncated {
                what: "common remoting/HIP header",
                need: COMMON_HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok((
            CommonHeader {
                msg_type: buf[0],
                parameter: buf[1],
                window_id: WindowId(u16::from_be_bytes([buf[2], buf[3]])),
            },
            &buf[COMMON_HEADER_LEN..],
        ))
    }
}

/// Read a big-endian u32 field.
pub(crate) fn read_u32(buf: &[u8], off: usize, what: &'static str) -> Result<u32> {
    if buf.len() < off + 4 {
        return Err(Error::Truncated {
            what,
            need: off + 4,
            have: buf.len(),
        });
    }
    Ok(u32::from_be_bytes([
        buf[off],
        buf[off + 1],
        buf[off + 2],
        buf[off + 3],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = CommonHeader::new(2, 0x85, WindowId(0x1234));
        let mut buf = Vec::new();
        h.encode_into(&mut buf);
        assert_eq!(buf, vec![2, 0x85, 0x12, 0x34]);
        let (back, rest) = CommonHeader::decode(&buf).unwrap();
        assert_eq!(back, h);
        assert!(rest.is_empty());
    }

    #[test]
    fn fragment_param_packing() {
        let h = CommonHeader::with_fragment_param(2, true, 101, WindowId(1));
        assert!(h.first_packet());
        assert_eq!(h.payload_type(), 101);
        assert_eq!(h.parameter, 0x80 | 101);
        let h2 = CommonHeader::with_fragment_param(2, false, 101, WindowId(1));
        assert!(!h2.first_packet());
        assert_eq!(h2.payload_type(), 101);
    }

    #[test]
    fn pt_masked_to_7_bits() {
        let h = CommonHeader::with_fragment_param(2, false, 0xff, WindowId(0));
        assert_eq!(h.payload_type(), 0x7f);
        assert!(!h.first_packet(), "PT must not leak into the F bit");
    }

    #[test]
    fn truncated() {
        assert!(CommonHeader::decode(&[1, 2, 3]).is_err());
        assert!(CommonHeader::decode(&[]).is_err());
    }
}
