//! The cross-frame, content-addressed encode cache.
//!
//! Keys are `(namespace, content_hash, width, height, tier)` — *what the
//! pixels are* (and whose they are, when tenants share one cache),
//! not where they came from. The per-step cache this replaces was keyed by
//! `(window, rect, tier)` and could not live past one `step()` because a
//! window's pixels change under a stable rect; a content hash is immune to
//! that, so entries persist across frames, windows, participants and
//! transports. The quality tier is part of the key so a lossy-tier encode
//! never substitutes for a lossless-tier request.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

/// Content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Tenant/app namespace. `0` for a single-session private cache. In a
    /// shared (multi-tenant) cache, sessions that may share tiles carry the
    /// same namespace and sessions with private/consent-gated content carry
    /// a unique one, so identical pixels can never leak across tenants that
    /// did not opt into sharing.
    pub namespace: u64,
    /// [`adshare_codec::checksum::fast_hash64`] over the tile's RGBA bytes
    /// (after pointer compositing, so the cached encode matches the wire).
    pub content_hash: u64,
    /// Tile width — dims disambiguate hash collisions between a tile and
    /// its transpose, and keep equal-content different-shape tiles apart.
    pub width: u32,
    /// Tile height.
    pub height: u32,
    /// Quality tier id (0 = lossless; see `QualityTier::as_gauge`). Lossy
    /// tiers encode different bytes from the same pixels, and a lossy
    /// entry must never poison a lossless lookup.
    pub tier: u8,
}

#[derive(Debug)]
struct Entry {
    payload_type: u8,
    payload: Bytes,
    /// Stamp of this entry's newest position in `order` (lazy LRU).
    stamp: u64,
}

/// A byte-budgeted LRU of encoded tile payloads.
///
/// Recency is tracked with a lazy queue: every touch pushes a fresh
/// `(key, stamp)` pair and bumps the entry's stamp; eviction pops until it
/// finds a pair whose stamp is still current. This keeps both lookup and
/// eviction O(1) amortised with no linked-list bookkeeping.
#[derive(Debug, Default)]
pub struct EncodeCache {
    map: HashMap<CacheKey, Entry>,
    order: VecDeque<(CacheKey, u64)>,
    clock: u64,
    budget_bytes: usize,
    bytes: usize,
    evictions: u64,
}

impl EncodeCache {
    /// A cache that will hold at most `budget_bytes` of encoded payload.
    pub fn new(budget_bytes: usize) -> Self {
        EncodeCache {
            budget_bytes,
            ..Default::default()
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<(u8, Bytes)> {
        let entry = self.map.get_mut(key)?;
        self.clock += 1;
        entry.stamp = self.clock;
        let hit = (entry.payload_type, entry.payload.clone());
        self.order.push_back((*key, self.clock));
        // Bound the lazy queue: compact when stale pairs dominate.
        if self.order.len() > 4 * self.map.len().max(16) {
            let map = &self.map;
            self.order
                .retain(|(k, stamp)| map.get(k).is_some_and(|e| e.stamp == *stamp));
        }
        Some(hit)
    }

    /// Insert an encoded payload, evicting least-recently-used entries
    /// until the byte budget holds. Returns how many entries were evicted.
    /// A payload larger than the whole budget is not cached at all.
    pub fn insert(&mut self, key: CacheKey, payload_type: u8, payload: Bytes) -> u64 {
        if payload.len() > self.budget_bytes {
            return 0;
        }
        self.clock += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                payload_type,
                payload: payload.clone(),
                stamp: self.clock,
            },
        ) {
            self.bytes -= old.payload.len();
        }
        self.bytes += payload.len();
        self.order.push_back((key, self.clock));
        let mut evicted = 0;
        while self.bytes > self.budget_bytes {
            let Some((victim, stamp)) = self.order.pop_front() else {
                break; // unreachable: bytes > 0 implies queued entries
            };
            match self.map.get(&victim) {
                Some(e) if e.stamp == stamp => {
                    self.bytes -= e.payload.len();
                    self.map.remove(&victim);
                    self.evictions += 1;
                    evicted += 1;
                }
                _ => {} // stale pair; the entry was touched or replaced
            }
        }
        evicted
    }

    /// Drop every entry (per-step compatibility mode).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Encoded payload bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Total entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The `max` most-recently-used entries as `(key, payload_type,
    /// payload)` triples, hottest first — what cache persistence serializes
    /// so a re-share of the same surface starts warm.
    pub fn hot_entries(&self, max: usize) -> Vec<(CacheKey, u8, Bytes)> {
        let mut all: Vec<(&CacheKey, &Entry)> = self.map.iter().collect();
        all.sort_by_key(|(_, e)| std::cmp::Reverse(e.stamp));
        all.truncate(max);
        all.into_iter()
            .map(|(k, e)| (*k, e.payload_type, e.payload.clone()))
            .collect()
    }

    /// Insert persisted entries (oldest-first recency, so later live
    /// traffic outranks pre-warmed content under eviction pressure).
    /// Returns how many entries were accepted.
    pub fn preload(&mut self, entries: &[(CacheKey, u8, Bytes)]) -> usize {
        let mut loaded = 0;
        for (key, payload_type, payload) in entries.iter().rev() {
            if payload.len() <= self.budget_bytes {
                self.insert(*key, *payload_type, payload.clone());
                loaded += 1;
            }
        }
        loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u64) -> CacheKey {
        CacheKey {
            namespace: 0,
            content_hash: h,
            width: 8,
            height: 8,
            tier: 0,
        }
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn hit_returns_inserted_payload() {
        let mut c = EncodeCache::new(1024);
        c.insert(key(1), 101, payload(10));
        assert_eq!(c.get(&key(1)), Some((101, payload(10))));
        assert_eq!(c.get(&key(2)), None);
    }

    #[test]
    fn tier_partitions_the_keyspace() {
        let mut c = EncodeCache::new(1024);
        let lossy = CacheKey { tier: 2, ..key(7) };
        c.insert(lossy, 102, payload(10));
        assert_eq!(c.get(&key(7)), None, "lossy entry must not serve tier 0");
        assert!(c.get(&lossy).is_some());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let mut c = EncodeCache::new(100);
        c.insert(key(1), 101, payload(40));
        c.insert(key(2), 101, payload(40));
        // Touch 1 so 2 is the LRU.
        assert!(c.get(&key(1)).is_some());
        let evicted = c.insert(key(3), 101, payload(40));
        assert_eq!(evicted, 1);
        assert!(c.bytes() <= 100);
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn namespace_partitions_the_keyspace() {
        let mut c = EncodeCache::new(1024);
        let tenant_b = CacheKey {
            namespace: 2,
            ..key(7)
        };
        c.insert(tenant_b, 102, payload(10));
        assert_eq!(c.get(&key(7)), None, "tenant B entry must not serve A");
        assert!(c.get(&tenant_b).is_some());
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let mut c = EncodeCache::new(16);
        assert_eq!(c.insert(key(1), 101, payload(64)), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_same_key_keeps_byte_accounting() {
        let mut c = EncodeCache::new(1000);
        c.insert(key(1), 101, payload(100));
        c.insert(key(1), 101, payload(60));
        assert_eq!(c.bytes(), 60);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lazy_queue_stays_bounded_under_hot_hits() {
        let mut c = EncodeCache::new(1024);
        c.insert(key(1), 101, payload(4));
        c.insert(key(2), 101, payload(4));
        for _ in 0..10_000 {
            c.get(&key(1));
        }
        assert!(c.order.len() <= 4 * 16 + 2, "queue grew: {}", c.order.len());
    }
}
