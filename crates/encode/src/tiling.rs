//! Splitting damaged regions into fixed-size, grid-aligned tiles.
//!
//! Alignment matters more than size: tile boundaries sit on a fixed grid
//! in window-local coordinates, so the *same* screen content damaged on
//! two different frames produces the *same* tile rectangles — and
//! therefore the same content hashes — even when the surrounding damage
//! differs. Unaligned tiling would slice repeated content at shifting
//! offsets and defeat the cache.

use adshare_codec::Rect;

/// Tile grid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Grid cell width in pixels.
    pub width: u32,
    /// Grid cell height in pixels.
    pub height: u32,
}

impl Default for TileConfig {
    fn default() -> Self {
        // 128×128 balances parallel grain (a full 640×480 refresh yields
        // 20 tiles), cache-unit stability, and PNG filter efficiency
        // (tiny tiles compress poorly).
        TileConfig {
            width: 128,
            height: 128,
        }
    }
}

impl TileConfig {
    /// A grid of `side`×`side` tiles.
    pub fn square(side: u32) -> Self {
        TileConfig {
            width: side.max(1),
            height: side.max(1),
        }
    }
}

/// Split `rect` (window-local) into tiles clipped against the fixed grid.
///
/// Tiles are emitted row-major (top-to-bottom, left-to-right) — the
/// deterministic order the pipeline's output contract relies on. A rect
/// smaller than one grid cell comes back unchanged as a single tile.
pub fn tiles(rect: Rect, cfg: TileConfig) -> Vec<Rect> {
    if rect.is_empty() {
        return Vec::new();
    }
    let (tw, th) = (cfg.width.max(1), cfg.height.max(1));
    let mut out = Vec::new();
    let mut top = rect.top - rect.top % th;
    while top < rect.bottom() {
        let mut left = rect.left - rect.left % tw;
        while left < rect.right() {
            if let Some(tile) = rect.intersect(&Rect::new(left, top, tw, th)) {
                out.push(tile);
            }
            left += tw;
        }
        top += th;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rect_is_one_tile() {
        let cfg = TileConfig::default();
        let r = Rect::new(10, 20, 30, 40);
        assert_eq!(tiles(r, cfg), vec![r]);
    }

    #[test]
    fn tiles_cover_exactly_without_overlap() {
        let cfg = TileConfig::square(64);
        let r = Rect::new(13, 250, 300, 200);
        let ts = tiles(r, cfg);
        let area: u64 = ts.iter().map(|t| t.area()).sum();
        assert_eq!(area, r.area(), "tiles must partition the rect");
        for (i, a) in ts.iter().enumerate() {
            assert!(r.contains_rect(a));
            for b in &ts[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn interior_tiles_are_grid_aligned() {
        // The same content position damaged via two different enclosing
        // rects must produce identical interior tiles.
        let cfg = TileConfig::square(32);
        let a = tiles(Rect::new(0, 0, 128, 128), cfg);
        let b = tiles(Rect::new(16, 16, 112, 112), cfg);
        let interior = Rect::new(32, 32, 32, 32);
        assert!(a.contains(&interior));
        assert!(b.contains(&interior));
    }

    #[test]
    fn row_major_order() {
        let cfg = TileConfig::square(50);
        let ts = tiles(Rect::new(0, 0, 100, 100), cfg);
        assert_eq!(
            ts,
            vec![
                Rect::new(0, 0, 50, 50),
                Rect::new(50, 0, 50, 50),
                Rect::new(0, 50, 50, 50),
                Rect::new(50, 50, 50, 50),
            ]
        );
    }

    #[test]
    fn empty_rect_yields_nothing() {
        assert!(tiles(Rect::new(5, 5, 0, 10), TileConfig::default()).is_empty());
    }
}
