//! The tile-encode pipeline: hash → cache → parallel encode → ordered
//! assembly, with observability for every stage.

use std::sync::Arc;

use adshare_codec::checksum::fast_hash64;
use adshare_codec::{Image, Rect};
use adshare_obs::{Counter, Gauge, Histogram, Registry};
use bytes::Bytes;

use crate::cache::{CacheKey, EncodeCache};
use crate::pool::{scoped_map, WorkerPool};
use crate::shared::SharedEncodeCache;
use crate::tiling::{tiles, TileConfig};

/// Pipeline parameters (carried in the AH config).
#[derive(Debug, Clone, Copy)]
pub struct EncodeConfig {
    /// Tile grid for damage splitting.
    pub tile: TileConfig,
    /// Worker threads for cache-miss encoding; 0 = one per available core
    /// (capped at 8), 1 = serial.
    pub workers: usize,
    /// Encoded-payload byte budget for the cross-frame cache.
    pub cache_budget_bytes: usize,
    /// Keep cache entries across frames (the point of this crate). `false`
    /// reproduces the legacy per-`step()` cache for ablations: entries
    /// only live until [`EncodePipeline::begin_step`] runs.
    pub cross_frame_cache: bool,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig {
            tile: TileConfig::default(),
            workers: 0,
            cache_budget_bytes: 32 << 20,
            cross_frame_cache: true,
        }
    }
}

/// One tile awaiting encode: the cropped (and pointer-composited) pixels
/// plus the window-local rect they came from.
#[derive(Debug, Clone)]
pub struct TileJob {
    /// Window-local tile rectangle.
    pub rect: Rect,
    /// The tile's pixels, exactly as they should appear on the wire.
    pub image: Image,
}

/// One encoded tile, in the same order the jobs were submitted.
#[derive(Debug, Clone)]
pub struct EncodedTile {
    /// Window-local tile rectangle (copied from the job).
    pub rect: Rect,
    /// RTP payload type the encoder chose.
    pub payload_type: u8,
    /// Encoded payload.
    pub payload: Bytes,
    /// Wall-clock µs spent encoding this tile (0 on a cache hit).
    pub encode_us: u64,
    /// Whether the payload came from the cache (cross-frame or intra-batch
    /// dedup) rather than a fresh encode.
    pub cache_hit: bool,
}

/// Observability handles for the pipeline (adopt into a registry via
/// [`EncodePipeline::register_metrics`]).
#[derive(Debug, Clone, Default)]
struct Metrics {
    /// Tiles submitted for encoding.
    tiles: Counter,
    /// Cross-frame cache hits.
    cache_hits: Counter,
    /// Cache misses (fresh encodes).
    cache_misses: Counter,
    /// Intra-batch dedup hits (same content twice in one batch).
    dedup_hits: Counter,
    /// Entries evicted to hold the byte budget.
    evictions: Counter,
    /// Encoded bytes served from cache instead of re-encoded.
    bytes_saved: Counter,
    /// Current cached payload bytes.
    cache_bytes: Gauge,
    /// Current cache entry count.
    cache_entries: Gauge,
    /// Per-miss encode wall µs.
    tile_encode_us: Histogram,
    /// Per-batch wall µs (misses only; hit-only batches are free).
    batch_wall_us: Histogram,
    /// Parallel speedup ×100 per batch (cpu/wall; 100 = serial).
    speedup_x100: Histogram,
    /// Worker busy time in percent of `workers × wall`, per batch.
    pool_utilization_pct: Histogram,
    /// Workers used by the last parallel batch.
    pool_workers: Gauge,
    /// Σ batch wall µs (counter, so runs can be compared by subtraction).
    wall_us_total: Counter,
    /// Σ per-tile encode µs (the serial-equivalent cost).
    cpu_us_total: Counter,
}

impl Metrics {
    fn register(&self, registry: &Registry, prefix: &str) {
        registry.adopt_counter(&format!("{prefix}.tiles"), &self.tiles);
        registry.adopt_counter(&format!("{prefix}.cache.hits"), &self.cache_hits);
        registry.adopt_counter(&format!("{prefix}.cache.misses"), &self.cache_misses);
        registry.adopt_counter(&format!("{prefix}.cache.dedup_hits"), &self.dedup_hits);
        registry.adopt_counter(&format!("{prefix}.cache.evictions"), &self.evictions);
        registry.adopt_counter(&format!("{prefix}.cache.bytes_saved"), &self.bytes_saved);
        registry.adopt_gauge(&format!("{prefix}.cache.bytes"), &self.cache_bytes);
        registry.adopt_gauge(&format!("{prefix}.cache.entries"), &self.cache_entries);
        registry.adopt_histogram(&format!("{prefix}.tile_encode_us"), &self.tile_encode_us);
        registry.adopt_histogram(&format!("{prefix}.batch_wall_us"), &self.batch_wall_us);
        registry.adopt_histogram(&format!("{prefix}.speedup_x100"), &self.speedup_x100);
        registry.adopt_histogram(
            &format!("{prefix}.pool_utilization_pct"),
            &self.pool_utilization_pct,
        );
        registry.adopt_gauge(&format!("{prefix}.pool_workers"), &self.pool_workers);
        registry.adopt_counter(&format!("{prefix}.wall_us_total"), &self.wall_us_total);
        registry.adopt_counter(&format!("{prefix}.cpu_us_total"), &self.cpu_us_total);
    }
}

/// Where a pipeline's cache lookups and insertions go.
#[derive(Debug)]
enum CacheBackend {
    /// A pipeline-owned cache (the single-session default). Keys use
    /// namespace 0.
    Private(EncodeCache),
    /// A slice of a process-wide [`SharedEncodeCache`], addressed under
    /// this pipeline's tenant namespace.
    Shared {
        cache: Arc<SharedEncodeCache>,
        namespace: u64,
    },
}

impl CacheBackend {
    fn namespace(&self) -> u64 {
        match self {
            CacheBackend::Private(_) => 0,
            CacheBackend::Shared { namespace, .. } => *namespace,
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<(u8, Bytes)> {
        match self {
            CacheBackend::Private(cache) => cache.get(key),
            CacheBackend::Shared { cache, .. } => cache.get(key),
        }
    }

    fn insert(&mut self, key: CacheKey, payload_type: u8, payload: Bytes) -> u64 {
        match self {
            CacheBackend::Private(cache) => cache.insert(key, payload_type, payload),
            CacheBackend::Shared { cache, .. } => cache.insert(key, payload_type, payload),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            CacheBackend::Private(cache) => cache.bytes(),
            CacheBackend::Shared { cache, .. } => cache.bytes(),
        }
    }

    fn len(&self) -> usize {
        match self {
            CacheBackend::Private(cache) => cache.len(),
            CacheBackend::Shared { cache, .. } => cache.len(),
        }
    }

    fn evictions(&self) -> u64 {
        match self {
            CacheBackend::Private(cache) => cache.evictions(),
            CacheBackend::Shared { cache, .. } => cache.evictions(),
        }
    }
}

/// The pipeline: tile grid + persistent cache + worker pool + metrics.
#[derive(Debug)]
pub struct EncodePipeline {
    cfg: EncodeConfig,
    workers: usize,
    backend: CacheBackend,
    /// Bounded process-wide spawn budget; `None` means each batch may use
    /// the full per-pipeline `workers` count (single-session behaviour).
    pool: Option<WorkerPool>,
    metrics: Metrics,
}

/// Resolve `workers == 0` to the machine's parallelism, capped at 8.
fn resolve_workers(cfg_workers: usize) -> usize {
    if cfg_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        cfg_workers
    }
}

impl EncodePipeline {
    /// Build a single-session pipeline from config: a private cache and an
    /// unshared worker budget. Thin wrapper kept fully backward-compatible
    /// with the pre-host behaviour.
    pub fn new(cfg: EncodeConfig) -> Self {
        EncodePipeline {
            workers: resolve_workers(cfg.workers),
            backend: CacheBackend::Private(EncodeCache::new(cfg.cache_budget_bytes)),
            pool: None,
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// Build a multi-tenant pipeline: lookups and insertions go to the
    /// process-wide `cache` under `namespace`, and cache-miss encoding
    /// draws spawn permits from the shared `pool` (falling back to inline
    /// encoding when the budget is exhausted, never blocking).
    ///
    /// `cfg.cache_budget_bytes` is ignored (the shared cache carries its
    /// own budget), and per-step cache mode (`cross_frame_cache = false`)
    /// is not supported here: a shared cache outlives any one session's
    /// step, so [`EncodePipeline::begin_step`] becomes a no-op.
    pub fn with_shared(
        cfg: EncodeConfig,
        namespace: u64,
        cache: Arc<SharedEncodeCache>,
        pool: WorkerPool,
    ) -> Self {
        EncodePipeline {
            workers: resolve_workers(cfg.workers),
            backend: CacheBackend::Shared { cache, namespace },
            pool: Some(pool),
            metrics: Metrics::default(),
            cfg,
        }
    }

    /// The configuration this pipeline was built from.
    pub fn config(&self) -> &EncodeConfig {
        &self.cfg
    }

    /// Resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tenant namespace cache keys carry (0 for a private pipeline).
    pub fn namespace(&self) -> u64 {
        self.backend.namespace()
    }

    /// The process-wide cache this pipeline shares, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedEncodeCache>> {
        match &self.backend {
            CacheBackend::Private(_) => None,
            CacheBackend::Shared { cache, .. } => Some(cache),
        }
    }

    /// Frame boundary: clears the cache in per-step compatibility mode,
    /// no-op when the cross-frame cache is on. A shared cache is never
    /// cleared (it outlives any one session's step), so per-step mode only
    /// applies to private pipelines.
    pub fn begin_step(&mut self) {
        if !self.cfg.cross_frame_cache {
            if let CacheBackend::Private(cache) = &mut self.backend {
                cache.clear();
            }
        }
    }

    /// Split a damaged rect along the configured tile grid.
    pub fn tile(&self, rect: Rect) -> Vec<Rect> {
        tiles(rect, self.cfg.tile)
    }

    /// Adopt the pipeline's metrics under `prefix.*`.
    pub fn register_metrics(&self, registry: &Registry, prefix: &str) {
        self.metrics.register(registry, prefix);
        self.metrics.pool_workers.set(self.workers as i64);
    }

    /// Live cache payload bytes (tests; metrics carry the same value).
    /// Process-wide for a shared backend.
    pub fn cache_bytes(&self) -> usize {
        self.backend.bytes()
    }

    /// Live cache entry count (process-wide for a shared backend).
    pub fn cache_entries(&self) -> usize {
        self.backend.len()
    }

    /// Lifetime evictions (process-wide for a shared backend).
    pub fn cache_evictions(&self) -> u64 {
        self.backend.evictions()
    }

    /// The hottest cache entries this pipeline could persist (hottest
    /// first, at most `max`). For a shared backend only this pipeline's
    /// namespace is exported — persistence never crosses tenants.
    pub fn export_hot_entries(&self, max: usize) -> Vec<(CacheKey, u8, Bytes)> {
        match &self.backend {
            CacheBackend::Private(cache) => cache.hot_entries(max),
            CacheBackend::Shared { cache, namespace } => cache.export_namespace(*namespace, max),
        }
    }

    /// Pre-warm the cache from persisted entries (a re-share of the same
    /// surface then hits on its first paints). Entries from a foreign
    /// namespace are rejected. Returns how many entries were accepted.
    pub fn prewarm(&mut self, entries: &[(CacheKey, u8, Bytes)]) -> usize {
        match &mut self.backend {
            CacheBackend::Private(cache) => {
                let own: Vec<(CacheKey, u8, Bytes)> = entries
                    .iter()
                    .filter(|(k, _, _)| k.namespace == 0)
                    .cloned()
                    .collect();
                cache.preload(&own)
            }
            CacheBackend::Shared { cache, namespace } => cache.preload(*namespace, entries),
        }
    }

    /// Encode a batch of tiles at quality tier `tier`.
    ///
    /// `encode` maps pixels to `(payload_type, payload)` and must be a
    /// pure function of the image (it runs concurrently on the pool for
    /// cache misses). Results come back in job order, and cache insertion
    /// happens in that same order on this thread — so for a given cache
    /// state the output bytes are identical whether `workers` is 1 or 16.
    pub fn encode_batch<F>(&mut self, tier: u8, jobs: Vec<TileJob>, encode: F) -> Vec<EncodedTile>
    where
        F: Fn(&Image) -> (u8, Vec<u8>) + Sync,
    {
        self.metrics.tiles.add(jobs.len() as u64);

        /// Where each submitted job's payload will come from.
        enum Plan {
            /// Served from the cross-frame cache.
            Hit { pt: u8, payload: Bytes },
            /// Fresh encode: index into the miss list.
            Miss(usize),
            /// Same content as an earlier miss in this batch: reuse its
            /// encode (index into the miss list).
            Alias(usize),
        }

        // Pass 1 (caller thread, deterministic): classify every job as a
        // cache hit, an intra-batch alias of an earlier miss, or a fresh
        // miss. Cache recency updates happen here, in submission order.
        let mut plans: Vec<(Rect, Plan)> = Vec::with_capacity(jobs.len());
        let mut misses: Vec<TileJob> = Vec::new();
        let mut miss_keys: Vec<CacheKey> = Vec::new();
        let mut pending: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        let namespace = self.backend.namespace();
        for job in jobs {
            let rect = job.rect;
            let key = CacheKey {
                namespace,
                content_hash: fast_hash64(job.image.data()),
                width: job.image.width(),
                height: job.image.height(),
                tier,
            };
            let plan = if let Some((pt, payload)) = self.backend.get(&key) {
                self.metrics.cache_hits.inc();
                self.metrics.bytes_saved.add(payload.len() as u64);
                Plan::Hit { pt, payload }
            } else if let Some(&idx) = pending.get(&key) {
                self.metrics.dedup_hits.inc();
                Plan::Alias(idx)
            } else {
                pending.insert(key, misses.len());
                misses.push(job);
                miss_keys.push(key);
                Plan::Miss(misses.len() - 1)
            };
            plans.push((rect, plan));
        }

        // Pass 2 (worker pool): encode the misses. Only this pass runs
        // concurrently, and results come back in miss order either way.
        let encode_one = |job: &TileJob| {
            let t0 = std::time::Instant::now();
            let (pt, payload) = encode(&job.image);
            (pt, Bytes::from(payload), t0.elapsed().as_micros() as u64)
        };
        let (encoded, stats) = match &self.pool {
            Some(pool) => pool.map(self.workers, &misses, encode_one),
            None => scoped_map(self.workers, &misses, encode_one),
        };

        if !misses.is_empty() {
            self.metrics.cache_misses.add(misses.len() as u64);
            self.metrics.batch_wall_us.record(stats.wall_us);
            self.metrics.speedup_x100.record(stats.speedup_x100());
            self.metrics
                .pool_utilization_pct
                .record(stats.utilization_pct());
            self.metrics.pool_workers.set(stats.workers as i64);
            self.metrics.wall_us_total.add(stats.wall_us);
            self.metrics.cpu_us_total.add(stats.cpu_us);
        }

        // Pass 3 (caller thread, deterministic): insert fresh encodes in
        // miss order, then assemble the output in submission order.
        for (key, (pt, payload, encode_us)) in miss_keys.iter().zip(&encoded) {
            self.metrics.tile_encode_us.record(*encode_us);
            let evicted = self.backend.insert(*key, *pt, payload.clone());
            self.metrics.evictions.add(evicted);
        }
        self.metrics.cache_bytes.set(self.backend.bytes() as i64);
        self.metrics.cache_entries.set(self.backend.len() as i64);

        plans
            .into_iter()
            .map(|(rect, plan)| match plan {
                Plan::Hit { pt, payload } => EncodedTile {
                    rect,
                    payload_type: pt,
                    payload,
                    encode_us: 0,
                    cache_hit: true,
                },
                Plan::Miss(i) => {
                    let (pt, ref payload, encode_us) = encoded[i];
                    EncodedTile {
                        rect,
                        payload_type: pt,
                        payload: payload.clone(),
                        encode_us,
                        cache_hit: false,
                    }
                }
                Plan::Alias(i) => {
                    let (pt, ref payload, _) = encoded[i];
                    self.metrics.bytes_saved.add(payload.len() as u64);
                    EncodedTile {
                        rect,
                        payload_type: pt,
                        payload: payload.clone(),
                        encode_us: 0,
                        cache_hit: true,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(w: u32, h: u32, fill: u8) -> Image {
        Image::filled(w, h, [fill, fill, fill, 255]).expect("image")
    }

    /// A deterministic stand-in encoder that counts invocations, so cache
    /// hits (which must skip it) are detectable.
    fn counting_encoder(
        calls: &std::sync::atomic::AtomicUsize,
    ) -> impl Fn(&Image) -> (u8, Vec<u8>) + Sync + '_ {
        move |img: &Image| {
            calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            (101, vec![img.data()[0]; 16])
        }
    }

    #[test]
    fn cross_frame_hits_skip_the_encoder() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut p = EncodePipeline::new(EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        });
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 7),
        };
        let first = p.encode_batch(0, vec![job()], counting_encoder(&calls));
        p.begin_step();
        let second = p.encode_batch(0, vec![job()], counting_encoder(&calls));
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(!first[0].cache_hit);
        assert!(second[0].cache_hit);
        assert_eq!(first[0].payload, second[0].payload);
    }

    #[test]
    fn per_step_mode_clears_on_begin_step() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut p = EncodePipeline::new(EncodeConfig {
            workers: 1,
            cross_frame_cache: false,
            ..EncodeConfig::default()
        });
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 7),
        };
        p.encode_batch(0, vec![job()], counting_encoder(&calls));
        p.begin_step();
        p.encode_batch(0, vec![job()], counting_encoder(&calls));
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn intra_batch_dedup_encodes_once() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut p = EncodePipeline::new(EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        });
        let jobs = vec![
            TileJob {
                rect: Rect::new(0, 0, 8, 8),
                image: flat(8, 8, 3),
            },
            TileJob {
                rect: Rect::new(8, 0, 8, 8),
                image: flat(8, 8, 3),
            },
        ];
        let out = p.encode_batch(0, jobs, counting_encoder(&calls));
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(!out[0].cache_hit);
        assert!(out[1].cache_hit, "second identical tile aliases the first");
        assert_eq!(out[0].payload, out[1].payload);
        assert_eq!(out[0].rect, Rect::new(0, 0, 8, 8));
        assert_eq!(out[1].rect, Rect::new(8, 0, 8, 8));
    }

    #[test]
    fn tiers_do_not_share_entries() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut p = EncodePipeline::new(EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        });
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 9),
        };
        p.encode_batch(0, vec![job()], counting_encoder(&calls));
        let lossy = p.encode_batch(2, vec![job()], counting_encoder(&calls));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "tier 2 must re-encode despite identical pixels"
        );
        assert!(!lossy[0].cache_hit);
    }

    #[test]
    fn shared_backend_hits_across_pipelines() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let cache = Arc::new(SharedEncodeCache::new(1 << 20, 4));
        let pool = WorkerPool::new(2);
        let cfg = EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        };
        let mut a = EncodePipeline::with_shared(cfg, 7, cache.clone(), pool.clone());
        let mut b = EncodePipeline::with_shared(cfg, 7, cache.clone(), pool);
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 5),
        };
        let first = a.encode_batch(0, vec![job()], counting_encoder(&calls));
        let second = b.encode_batch(0, vec![job()], counting_encoder(&calls));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "second session must hit the first session's encode"
        );
        assert!(second[0].cache_hit);
        assert_eq!(first[0].payload, second[0].payload);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn shared_backend_namespaces_are_isolated() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let cache = Arc::new(SharedEncodeCache::new(1 << 20, 4));
        let pool = WorkerPool::new(2);
        let cfg = EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        };
        let mut tenant_a = EncodePipeline::with_shared(cfg, 1, cache.clone(), pool.clone());
        let mut tenant_b = EncodePipeline::with_shared(cfg, 2, cache.clone(), pool);
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 5),
        };
        tenant_a.encode_batch(0, vec![job()], counting_encoder(&calls));
        let out = tenant_b.encode_batch(0, vec![job()], counting_encoder(&calls));
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "identical pixels in another namespace must re-encode"
        );
        assert!(!out[0].cache_hit);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn shared_begin_step_never_clears() {
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let cache = Arc::new(SharedEncodeCache::new(1 << 20, 2));
        let mut p = EncodePipeline::with_shared(
            EncodeConfig {
                workers: 1,
                cross_frame_cache: false,
                ..EncodeConfig::default()
            },
            0,
            cache,
            WorkerPool::new(1),
        );
        let job = || TileJob {
            rect: Rect::new(0, 0, 8, 8),
            image: flat(8, 8, 7),
        };
        p.encode_batch(0, vec![job()], counting_encoder(&calls));
        p.begin_step();
        let out = p.encode_batch(0, vec![job()], counting_encoder(&calls));
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(out[0].cache_hit, "shared cache survives begin_step");
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        let mk_jobs = || {
            (0..32u8)
                .map(|i| TileJob {
                    rect: Rect::new(i as u32 * 8, 0, 8, 8),
                    image: flat(8, 8, i % 5),
                })
                .collect::<Vec<_>>()
        };
        let enc = |img: &Image| (101u8, img.data().to_vec());
        let mut serial = EncodePipeline::new(EncodeConfig {
            workers: 1,
            ..EncodeConfig::default()
        });
        let mut parallel = EncodePipeline::new(EncodeConfig {
            workers: 8,
            ..EncodeConfig::default()
        });
        let a = serial.encode_batch(0, mk_jobs(), enc);
        let b = parallel.encode_batch(0, mk_jobs(), enc);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rect, y.rect);
            assert_eq!(x.payload_type, y.payload_type);
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.cache_hit, y.cache_hit);
        }
    }
}
