//! A process-wide, sharded encode cache shared across sessions.
//!
//! One multi-tenant host runs thousands of sessions, and sessions of the
//! same application produce identical tiles — the whole point of content
//! addressing is that those tiles should encode **once per process**, not
//! once per session. [`SharedEncodeCache`] wraps N independent
//! [`EncodeCache`] shards, each behind its own mutex, selected by a
//! multiplicative hash of the key. Lock scope is one shard for one
//! lookup/insert, so sessions encoding concurrently contend only when they
//! touch the same shard, and global statistics are plain atomics read
//! without any lock.
//!
//! Tenant isolation rides on [`CacheKey::namespace`]: sessions that opted
//! into sharing use a common namespace (derived from their encode-relevant
//! config, so a hit is guaranteed byte-identical to a fresh encode), and
//! private/consent-gated sessions get a unique namespace — same shards,
//! zero key overlap.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::Bytes;

use crate::cache::{CacheKey, EncodeCache};

/// Sharded, mutex-per-shard encode cache meant to be held in an `Arc` and
/// shared by every [`crate::EncodePipeline`] in the process.
#[derive(Debug)]
pub struct SharedEncodeCache {
    shards: Vec<Mutex<EncodeCache>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

/// Pick a shard by mixing the namespace into the content hash, then
/// spreading with a multiplicative (Fibonacci) hash so low-entropy inputs
/// still distribute.
fn shard_index(key: &CacheKey, mask: usize) -> usize {
    let mixed = key
        .content_hash
        .wrapping_add(key.namespace.rotate_left(32))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize & mask
}

impl SharedEncodeCache {
    /// A shared cache holding at most `budget_bytes` of encoded payload in
    /// total, split evenly across `shards` (rounded up to a power of two,
    /// minimum 1).
    pub fn new(budget_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = (budget_bytes / shards).max(1);
        SharedEncodeCache {
            shards: (0..shards)
                .map(|_| Mutex::new(EncodeCache::new(per_shard)))
                .collect(),
            mask: shards - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Number of shards (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Look up `key`, refreshing its recency in the owning shard. Counts a
    /// process-wide hit or miss (lookup-level: an intra-batch alias in a
    /// pipeline never reaches this cache and is not counted here).
    pub fn get(&self, key: &CacheKey) -> Option<(u8, Bytes)> {
        let shard = &self.shards[shard_index(key, self.mask)];
        let out = shard.lock().expect("shard poisoned").get(key);
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Insert an encoded payload into the owning shard, evicting LRU
    /// entries from that shard until its slice of the budget holds.
    /// Returns how many entries were evicted.
    pub fn insert(&self, key: CacheKey, payload_type: u8, payload: Bytes) -> u64 {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[shard_index(&key, self.mask)];
        shard
            .lock()
            .expect("shard poisoned")
            .insert(key, payload_type, payload)
    }

    /// Process-wide lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Process-wide lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Process-wide insertions.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Hit rate in percent of all lookups (0 when nothing was looked up).
    pub fn hit_rate_pct(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * hits / total
        }
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded payload bytes currently held across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").bytes())
            .sum()
    }

    /// Total byte budget (sum of the per-shard budgets).
    pub fn budget_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").budget_bytes())
            .sum()
    }

    /// Lifetime evictions across all shards.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").evictions())
            .sum()
    }

    /// The hottest entries of `namespace` across all shards, at most `max`,
    /// hottest first — what cache persistence serializes for that tenant.
    /// Other namespaces are never exported: persistence must not become a
    /// cross-tenant leak.
    pub fn export_namespace(&self, namespace: u64, max: usize) -> Vec<(CacheKey, u8, Bytes)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            all.extend(
                shard
                    .hot_entries(usize::MAX)
                    .into_iter()
                    .filter(|(k, _, _)| k.namespace == namespace),
            );
        }
        all.truncate(max);
        all
    }

    /// Insert persisted entries into their owning shards. Entries whose
    /// namespace differs from `namespace` are rejected (a warm file is
    /// tenant-scoped). Returns how many entries were accepted.
    pub fn preload(&self, namespace: u64, entries: &[(CacheKey, u8, Bytes)]) -> usize {
        let mut loaded = 0;
        for (key, payload_type, payload) in entries.iter().rev() {
            if key.namespace != namespace {
                continue;
            }
            self.insert(*key, *payload_type, payload.clone());
            loaded += 1;
        }
        loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ns: u64, h: u64) -> CacheKey {
        CacheKey {
            namespace: ns,
            content_hash: h,
            width: 8,
            height: 8,
            tier: 0,
        }
    }

    #[test]
    fn round_trips_across_shards() {
        let c = SharedEncodeCache::new(1 << 20, 8);
        for h in 0..256u64 {
            c.insert(key(0, h), 101, Bytes::from(vec![h as u8; 16]));
        }
        for h in 0..256u64 {
            let (pt, payload) = c.get(&key(0, h)).expect("present");
            assert_eq!(pt, 101);
            assert_eq!(payload, Bytes::from(vec![h as u8; 16]));
        }
        assert_eq!(c.hits(), 256);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.len(), 256);
    }

    #[test]
    fn namespaces_do_not_leak() {
        let c = SharedEncodeCache::new(1 << 20, 4);
        c.insert(key(1, 42), 101, Bytes::from_static(b"tenant-1"));
        assert_eq!(c.get(&key(2, 42)), None, "same content hash, other tenant");
        assert_eq!(
            c.get(&key(1, 42)),
            Some((101, Bytes::from_static(b"tenant-1")))
        );
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SharedEncodeCache::new(1024, 0).shard_count(), 1);
        assert_eq!(SharedEncodeCache::new(1024, 3).shard_count(), 4);
        assert_eq!(SharedEncodeCache::new(1024, 16).shard_count(), 16);
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let c = SharedEncodeCache::new(1 << 20, 2);
        assert_eq!(c.hit_rate_pct(), 0.0);
        c.insert(key(0, 1), 101, Bytes::from_static(b"x"));
        c.get(&key(0, 1));
        c.get(&key(0, 2));
        assert!((c.hit_rate_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_sessions_share_entries() {
        let c = std::sync::Arc::new(SharedEncodeCache::new(1 << 20, 8));
        c.insert(key(0, 7), 101, Bytes::from_static(b"shared"));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        assert!(c.get(&key(0, 7)).is_some());
                    }
                });
            }
        });
        assert_eq!(c.hits(), 400);
    }
}
