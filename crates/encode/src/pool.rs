//! A scoped worker pool with deterministic result ordering.
//!
//! Workers pull job indices from a shared atomic counter (work stealing at
//! index granularity — no per-worker queues to balance) and write results
//! into per-slot cells. The output vector is assembled by index, so the
//! caller observes exactly the order it submitted, independent of worker
//! count or scheduling: the property the byte-parity tests rely on.
//!
//! `std::thread::scope` keeps lifetimes simple (jobs borrow the caller's
//! stack) and means the pool holds no threads between batches — encoding
//! bursts are short and frequent, and an idle persistent pool would be
//! pure bookkeeping.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a batch cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Wall-clock µs from first spawn to last join.
    pub wall_us: u64,
    /// Summed per-job µs (the serial-equivalent cost).
    pub cpu_us: u64,
    /// Workers actually spawned (1 = ran inline on the caller).
    pub workers: usize,
}

impl PoolStats {
    /// Parallel speedup ×100 (`cpu_us / wall_us`); 100 = no speedup.
    pub fn speedup_x100(&self) -> u64 {
        (self.cpu_us * 100).checked_div(self.wall_us).unwrap_or(100)
    }

    /// How busy the spawned workers were, in percent of `workers × wall`.
    pub fn utilization_pct(&self) -> u64 {
        let capacity = self.wall_us * self.workers.max(1) as u64;
        (self.cpu_us * 100)
            .checked_div(capacity)
            .map_or(100, |p| p.min(100))
    }
}

/// Apply `f` to every item, on up to `workers` threads, returning results
/// in item order. `workers <= 1` (or a batch of one) runs inline with no
/// thread spawns.
pub fn scoped_map<T, R, F>(workers: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let start = Instant::now();
    let timed = |item: &T| {
        let t0 = Instant::now();
        let out = f(item);
        (out, t0.elapsed().as_micros() as u64)
    };
    if workers <= 1 || items.len() <= 1 {
        let mut cpu_us = 0;
        let results = items
            .iter()
            .map(|item| {
                let (out, us) = timed(item);
                cpu_us += us;
                out
            })
            .collect();
        let stats = PoolStats {
            wall_us: start.elapsed().as_micros() as u64,
            cpu_us,
            workers: 1,
        };
        return (results, stats);
    }

    let workers = workers.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(R, u64)>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = timed(item);
                *slots[i].lock().expect("slot poisoned") = Some(out);
            });
        }
    });
    let mut cpu_us = 0;
    let results = slots
        .into_iter()
        .map(|slot| {
            let (out, us) = slot
                .into_inner()
                .expect("slot poisoned")
                .expect("every index visited");
            cpu_us += us;
            out
        })
        .collect();
    let stats = PoolStats {
        wall_us: start.elapsed().as_micros() as u64,
        cpu_us,
        workers,
    };
    (results, stats)
}

/// A cloneable handle on a process-wide worker budget.
///
/// `scoped_map` bounds one batch; a multi-tenant host needs to bound the
/// *sum* of all concurrent batches, or a thousand sessions each spawning 8
/// workers would mean 8000 threads. The pool hands out spawn permits from
/// a shared atomic budget: a batch takes as many as are free (never
/// blocking — zero free permits means the batch runs inline on its caller
/// thread, which costs no extra thread at all), and returns them when the
/// batch joins. Determinism is unaffected because `scoped_map` output is
/// worker-count independent.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    inner: Arc<PoolBudget>,
}

#[derive(Debug)]
struct PoolBudget {
    max: usize,
    available: AtomicUsize,
    /// Batches that wanted workers but found the budget empty (ran inline).
    inline_fallbacks: AtomicU64,
}

impl WorkerPool {
    /// A pool allowing at most `max_workers` spawned threads process-wide
    /// (minimum 1).
    pub fn new(max_workers: usize) -> Self {
        let max = max_workers.max(1);
        WorkerPool {
            inner: Arc::new(PoolBudget {
                max,
                available: AtomicUsize::new(max),
                inline_fallbacks: AtomicU64::new(0),
            }),
        }
    }

    /// The configured process-wide worker cap.
    pub fn max_workers(&self) -> usize {
        self.inner.max
    }

    /// Spawn permits currently free.
    pub fn available(&self) -> usize {
        self.inner.available.load(Ordering::Relaxed)
    }

    /// Batches that found no free permits and ran inline.
    pub fn inline_fallbacks(&self) -> u64 {
        self.inner.inline_fallbacks.load(Ordering::Relaxed)
    }

    /// Whether two handles share one budget.
    pub fn same_as(&self, other: &WorkerPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// [`scoped_map`] with the worker count bounded by both `want` and the
    /// free permits. Never blocks: an empty budget degrades to an inline
    /// (serial) batch on the caller thread.
    pub fn map<T, R, F>(&self, want: usize, items: &[T], f: F) -> (Vec<R>, PoolStats)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let want = want.min(items.len());
        if want <= 1 {
            return scoped_map(1, items, f);
        }
        let granted = self.claim(want);
        if granted == 0 {
            self.inner.inline_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let out = scoped_map(granted.max(1), items, f);
        self.release(granted);
        out
    }

    /// Take up to `want` permits; returns how many were granted (0..=want).
    fn claim(&self, want: usize) -> usize {
        let mut granted = 0;
        let _ = self
            .inner
            .available
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |free| {
                granted = free.min(want);
                Some(free - granted)
            });
        granted
    }

    fn release(&self, permits: usize) {
        if permits > 0 {
            self.inner.available.fetch_add(permits, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 4, 16] {
            let (out, stats) = scoped_map(workers, &items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
            assert!(stats.workers >= 1);
        }
    }

    #[test]
    fn inline_path_for_single_item() {
        let (out, stats) = scoped_map(8, &[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
        assert_eq!(stats.workers, 1, "one job must not spawn threads");
    }

    #[test]
    fn empty_batch() {
        let (out, _) = scoped_map(4, &Vec::<u8>::new(), |_| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_pool_bounds_total_permits() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.claim(8), 4, "grants are capped by the budget");
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.claim(2), 0, "empty budget grants nothing");
        pool.release(4);
        assert_eq!(pool.available(), 4);
        assert_eq!(pool.claim(2), 2);
        pool.release(2);
    }

    #[test]
    fn worker_pool_map_matches_scoped_map_output() {
        let items: Vec<u64> = (0..123).collect();
        let pool = WorkerPool::new(3);
        let (out, stats) = pool.map(8, &items, |&x| x * 2 + 1);
        assert_eq!(out, items.iter().map(|&x| x * 2 + 1).collect::<Vec<_>>());
        assert!(stats.workers <= 3);
        assert_eq!(pool.available(), 3, "permits returned after the batch");
    }

    #[test]
    fn worker_pool_exhausted_budget_runs_inline() {
        let pool = WorkerPool::new(2);
        let held = pool.claim(2);
        assert_eq!(held, 2);
        let items: Vec<u32> = (0..16).collect();
        let (out, stats) = pool.map(4, &items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1, "no free permits: inline");
        assert_eq!(pool.inline_fallbacks(), 1);
        pool.release(held);
    }

    #[test]
    fn worker_pool_clones_share_one_budget() {
        let a = WorkerPool::new(5);
        let b = a.clone();
        assert!(a.same_as(&b));
        assert_eq!(b.claim(3), 3);
        assert_eq!(a.available(), 2, "clone drained the shared budget");
        b.release(3);
        assert!(!a.same_as(&WorkerPool::new(5)));
    }

    #[test]
    fn parallel_actually_uses_multiple_workers() {
        let items: Vec<u32> = (0..64).collect();
        let (_, stats) = scoped_map(4, &items, |&x| {
            // Enough work to be measurable.
            let mut acc = x;
            for i in 0..10_000u32 {
                acc = acc.wrapping_mul(1664525).wrapping_add(i);
            }
            acc
        });
        assert_eq!(stats.workers, 4);
        assert!(stats.cpu_us > 0);
    }
}
