//! Parallel tile-encode pipeline with a cross-frame content-addressed
//! encode cache.
//!
//! Region encoding (draft §4.2) is the AH's hottest CPU path. This crate
//! makes it scale in three independent ways, all behind one
//! [`EncodePipeline`]:
//!
//! * [`tiling`] — damaged regions are split into fixed-size, grid-aligned
//!   tiles, so a large update parallelises across cores and a small
//!   repeated update (blinking cursor, menu toggle) becomes a stable,
//!   cacheable unit.
//! * [`cache`] — a byte-budgeted LRU keyed by
//!   `(content_hash, width, height, tier)` — the WebNC trick: identical
//!   pixels encode once, ever, no matter which window, frame, or
//!   participant they appear in. The hash is
//!   [`adshare_codec::checksum::fast_hash64`] over the tile's RGBA bytes,
//!   so the cache survives across frames and is shared by every
//!   participant and transport fanned out from one AH. Quality tiers are
//!   part of the key: a lossy-tier encode can never satisfy (poison) a
//!   lossless-tier request.
//! * [`shared`] — a sharded, mutex-per-shard variant of the cache meant to
//!   be `Arc`-shared by every session in a multi-tenant host process:
//!   identical app tiles across tenants encode once process-wide, with
//!   [`CacheKey::namespace`](cache::CacheKey) keeping private
//!   (consent-gated) sessions fully isolated.
//! * [`pool`] — cache misses encode on a scoped worker pool. Results are
//!   assembled in submission order and cache insertion happens on the
//!   caller thread in that same order, so the emitted packets are
//!   byte-identical to a serial run regardless of worker count — the
//!   parity the proptests in `tests/parity.rs` pin down.
//!
//! The pipeline is codec-agnostic: callers pass the encode function (codec
//! selection, quality knobs) as a closure, so this crate depends only on
//! `adshare-codec` for the image type and hash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pipeline;
pub mod pool;
pub mod shared;
pub mod tiling;

pub use cache::{CacheKey, EncodeCache};
pub use pipeline::{EncodeConfig, EncodePipeline, EncodedTile, TileJob};
pub use pool::{scoped_map, PoolStats, WorkerPool};
pub use shared::SharedEncodeCache;
pub use tiling::{tiles, TileConfig};
