//! The pipeline's two load-bearing guarantees, pinned by property tests:
//!
//! 1. **Byte parity** — for any batch of tiles and any worker count, the
//!    parallel pipeline's output (order, payload types, payload bytes,
//!    hit/miss classification) is identical to the serial reference, both
//!    from a cold cache and from a warmed one. Wire output must not depend
//!    on scheduling.
//! 2. **Pixel parity** — a payload served from the cache decodes to
//!    exactly the pixels that were submitted, and a lossless-tier request
//!    is never answered with bytes produced at a lossy tier.

use adshare_codec::codec::AnyCodec;
use adshare_codec::{Codec, CodecKind, Image, Rect};
use adshare_encode::{CacheKey, EncodeCache, EncodeConfig, EncodePipeline, TileJob};
use bytes::Bytes;
use proptest::prelude::*;

/// A deterministic pseudo-random image; `colors` bounds the palette so
/// duplicate tiles happen often enough to exercise the cache paths.
fn arb_tile(colors: u32) -> impl Strategy<Value = Image> {
    (4u32..40, 4u32..40, 0..colors).prop_map(|(w, h, c)| {
        let mut img = Image::new(w, h).expect("dims");
        let mut state = c.wrapping_mul(2654435761) | 1;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                img.set_pixel(x, y, state.to_be_bytes());
            }
        }
        img
    })
}

fn jobs_from(images: &[Image]) -> Vec<TileJob> {
    images
        .iter()
        .enumerate()
        .map(|(i, img)| TileJob {
            rect: Rect::new((i as u32) * 48, 0, img.width(), img.height()),
            image: img.clone(),
        })
        .collect()
}

fn pipeline(workers: usize) -> EncodePipeline {
    EncodePipeline::new(EncodeConfig {
        workers,
        ..EncodeConfig::default()
    })
}

fn png_encode(img: &Image) -> (u8, Vec<u8>) {
    (101, AnyCodec::new(CodecKind::Png).encode(img))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold-cache and warmed-cache output is byte-identical across worker
    /// counts, including which tiles are classified as hits.
    #[test]
    fn parallel_is_byte_identical_to_serial(
        images in proptest::collection::vec(arb_tile(6), 1..24),
        workers in 2usize..9,
    ) {
        let mut serial = pipeline(1);
        let mut par = pipeline(workers);
        for round in 0..2 {
            serial.begin_step();
            par.begin_step();
            let a = serial.encode_batch(0, jobs_from(&images), png_encode);
            let b = par.encode_batch(0, jobs_from(&images), png_encode);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.rect, y.rect, "round {}", round);
                prop_assert_eq!(x.payload_type, y.payload_type);
                prop_assert_eq!(&x.payload, &y.payload, "payload bytes diverged");
                prop_assert_eq!(x.cache_hit, y.cache_hit);
            }
            if round == 1 {
                // Second submission of the same batch: everything hits.
                prop_assert!(b.iter().all(|t| t.cache_hit));
            }
        }
    }

    /// Whatever the cache serves decodes back to the submitted pixels —
    /// a hash collision or a mis-keyed entry would surface here.
    #[test]
    fn cache_hits_decode_pixel_identical(
        images in proptest::collection::vec(arb_tile(4), 2..16),
    ) {
        let mut p = pipeline(4);
        p.encode_batch(0, jobs_from(&images), png_encode);
        let again = p.encode_batch(0, jobs_from(&images), png_encode);
        let codec = AnyCodec::new(CodecKind::Png);
        for (tile, img) in again.iter().zip(&images) {
            prop_assert!(tile.cache_hit);
            let decoded = codec.decode(&tile.payload).expect("valid png");
            prop_assert_eq!(&decoded, img, "cached payload lost pixels");
        }
    }

    /// The tier is part of the cache key: warming the cache at a lossy
    /// tier never changes what a lossless request returns.
    #[test]
    fn lossy_entries_never_serve_lossless(
        images in proptest::collection::vec(arb_tile(4), 1..12),
    ) {
        // Tag the tier into the payload so substitution is detectable.
        let tagged = |tier: u8| move |img: &Image| -> (u8, Vec<u8>) {
            let mut payload = vec![tier];
            payload.extend_from_slice(&png_encode(img).1);
            (100 + tier, payload)
        };
        let mut p = pipeline(2);
        p.encode_batch(2, jobs_from(&images), tagged(2)); // warm lossy
        let lossless = p.encode_batch(0, jobs_from(&images), tagged(0));
        for t in &lossless {
            prop_assert!(!t.cache_hit, "lossy entry served a lossless request");
            prop_assert_eq!(t.payload[0], 0);
            prop_assert_eq!(t.payload_type, 100);
        }
        // And the lossy entries are still there, partitioned by tier.
        let lossy = p.encode_batch(2, jobs_from(&images), tagged(2));
        for t in &lossy {
            prop_assert!(t.cache_hit);
            prop_assert_eq!(t.payload[0], 2);
        }
    }
}

/// The byte budget holds under sustained distinct-content load: evictions
/// happen and occupancy never exceeds the configured limit.
#[test]
fn cache_respects_byte_budget_under_pressure() {
    let budget = 64 * 1024;
    let mut p = EncodePipeline::new(EncodeConfig {
        workers: 1,
        cache_budget_bytes: budget,
        ..EncodeConfig::default()
    });
    // Raw "encoder": 4 KiB per distinct tile, 64 distinct tiles = 4× budget.
    for i in 0..64u8 {
        let img = Image::filled(32, 32, [i, i.wrapping_mul(7), 3, 255]).expect("dims");
        let jobs = vec![TileJob {
            rect: Rect::new(0, 0, 32, 32),
            image: img,
        }];
        p.encode_batch(0, jobs, |img| (100, img.data().to_vec()));
        assert!(
            p.cache_bytes() <= budget,
            "cache exceeded budget: {} > {budget}",
            p.cache_bytes()
        );
    }
    assert!(p.cache_evictions() > 0, "budget pressure must evict");
    assert!(p.cache_entries() > 0, "eviction must not empty the cache");
}

/// Direct cache-level check of the same invariant, including the
/// LRU-ordering choice of victim.
#[test]
fn cache_evicts_oldest_first() {
    let mut c = EncodeCache::new(1000);
    let key = |h: u64| CacheKey {
        namespace: 0,
        content_hash: h,
        width: 1,
        height: 1,
        tier: 0,
    };
    for h in 0..10 {
        c.insert(key(h), 100, Bytes::from(vec![0u8; 100]));
    }
    assert_eq!(c.bytes(), 1000);
    // Touch 0 so 1 becomes the LRU, then overflow by one entry.
    c.get(&key(0));
    c.insert(key(10), 100, Bytes::from(vec![0u8; 100]));
    assert!(c.get(&key(0)).is_some(), "recently used survives");
    assert!(c.get(&key(1)).is_none(), "LRU evicted");
    assert!(c.bytes() <= 1000);
}
