//! Encode-cache persistence (`adshare-cachewarm/v1`).
//!
//! A re-share of the same window starts with a cold encode cache and pays
//! full-tier encodes for content it already encoded last session. This
//! module serializes the hottest cache entries — keyed by
//! `(namespace, content_hash, dims, tier)` — so the next share of the same
//! surface pre-warms and the first paints hit the cache. Hit-rate deltas
//! from pre-warming are exported as `capture.*` obs gauges by the host.

use adshare_encode::CacheKey;
use bytes::Bytes;

use crate::format::{fnv1a_fold, CaptureError, FNV_OFFSET};

/// Magic line opening an `adshare-cachewarm/v1` file.
pub const CACHEWARM_MAGIC: &[u8] = b"adshare-cachewarm/v1\n";

/// One persisted encode-cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// Full cache key (namespace, content hash, dims, tier).
    pub key: CacheKey,
    /// Codec payload-type byte stored alongside the encoded bytes.
    pub payload_type: u8,
    /// The encoded payload itself.
    pub payload: Bytes,
}

/// Serialize entries as an `adshare-cachewarm/v1` byte stream: the magic,
/// a `u32` entry count, fixed-layout entries, and a trailing FNV-1a
/// checksum over everything after the magic.
pub fn encode_entries(entries: &[WarmEntry]) -> Vec<u8> {
    let payload_total: usize = entries.iter().map(|e| e.payload.len()).sum();
    let mut out =
        Vec::with_capacity(CACHEWARM_MAGIC.len() + 12 + entries.len() * 30 + payload_total);
    out.extend_from_slice(CACHEWARM_MAGIC);
    let body_start = out.len();
    out.extend_from_slice(
        &u32::try_from(entries.len())
            .expect("entry count fits u32")
            .to_le_bytes(),
    );
    for e in entries {
        out.extend_from_slice(&e.key.namespace.to_le_bytes());
        out.extend_from_slice(&e.key.content_hash.to_le_bytes());
        out.extend_from_slice(&e.key.width.to_le_bytes());
        out.extend_from_slice(&e.key.height.to_le_bytes());
        out.push(e.key.tier);
        out.push(e.payload_type);
        out.extend_from_slice(
            &u32::try_from(e.payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&e.payload);
    }
    let checksum = fnv1a_fold(FNV_OFFSET, &out[body_start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CaptureError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| CaptureError::Corrupt("cachewarm file truncated".into()))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, CaptureError> {
    Ok(u32::from_le_bytes(
        take(bytes, pos, 4)?.try_into().expect("len checked"),
    ))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CaptureError> {
    Ok(u64::from_le_bytes(
        take(bytes, pos, 8)?.try_into().expect("len checked"),
    ))
}

/// Parse an `adshare-cachewarm/v1` byte stream, verifying the magic and
/// the trailing checksum.
pub fn decode_entries(bytes: &[u8]) -> Result<Vec<WarmEntry>, CaptureError> {
    if bytes.len() < CACHEWARM_MAGIC.len() + 12 || !bytes.starts_with(CACHEWARM_MAGIC) {
        return Err(CaptureError::Corrupt(
            "not an adshare-cachewarm/v1 file".into(),
        ));
    }
    let body = &bytes[CACHEWARM_MAGIC.len()..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("len checked"));
    let computed = fnv1a_fold(FNV_OFFSET, body);
    if stored != computed {
        return Err(CaptureError::Corrupt(format!(
            "cachewarm checksum mismatch (stored 0x{stored:016x}, computed 0x{computed:016x})"
        )));
    }
    let mut pos = 0usize;
    let count = take_u32(body, &mut pos)? as usize;
    let mut entries = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let namespace = take_u64(body, &mut pos)?;
        let content_hash = take_u64(body, &mut pos)?;
        let width = take_u32(body, &mut pos)?;
        let height = take_u32(body, &mut pos)?;
        let tier = take(body, &mut pos, 1)?[0];
        let payload_type = take(body, &mut pos, 1)?[0];
        let payload_len = take_u32(body, &mut pos)? as usize;
        let payload = Bytes::copy_from_slice(take(body, &mut pos, payload_len)?);
        entries.push(WarmEntry {
            key: CacheKey {
                namespace,
                content_hash,
                width,
                height,
                tier,
            },
            payload_type,
            payload,
        });
    }
    if pos != body.len() {
        return Err(CaptureError::Corrupt(format!(
            "cachewarm trailing garbage after {count} entries"
        )));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WarmEntry> {
        vec![
            WarmEntry {
                key: CacheKey {
                    namespace: 7,
                    content_hash: 0xfeed_face_dead_beef,
                    width: 800,
                    height: 600,
                    tier: 2,
                },
                payload_type: 97,
                payload: Bytes::from_static(b"encoded-tile-bytes"),
            },
            WarmEntry {
                key: CacheKey {
                    namespace: 7,
                    content_hash: 1,
                    width: 16,
                    height: 16,
                    tier: 0,
                },
                payload_type: 96,
                payload: Bytes::new(),
            },
        ]
    }

    #[test]
    fn entries_round_trip() {
        let entries = sample();
        let back = decode_entries(&encode_entries(&entries)).expect("decodes");
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_set_round_trips() {
        let back = decode_entries(&encode_entries(&[])).expect("decodes");
        assert!(back.is_empty());
    }

    #[test]
    fn bit_flip_is_rejected() {
        let mut bytes = encode_entries(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_entries(&bytes).is_err());
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = encode_entries(&sample());
        bytes[0] = b'x';
        assert!(decode_entries(&bytes).is_err());
    }
}
