//! The `adshare-capture-manifest/v1` JSON sidecar.
//!
//! A capture file carries the bytes; the manifest carries the claims that
//! make it **self-verifying**: per-stream record/byte counts, the consent
//! flag, an explicit truncation marker for ring captures, and the wire /
//! decoded-surface digests a replay must reproduce. `obs_schema_check`
//! validates emitted manifests against
//! `schemas/capture_manifest.schema.json`.
//!
//! Digests are serialized as `0x`-prefixed 16-digit hex **strings**, not
//! JSON numbers — a u64 digest routinely exceeds the 2^53 integer range
//! JSON readers preserve.

use adshare_obs::json::{self, Json};

use crate::format::{Direction, StreamKind};
use crate::sink::{CaptureHandle, CaptureMode};

/// Schema marker carried in the manifest's `schema` field.
pub const CAPTURE_MANIFEST_SCHEMA: &str = "adshare-capture-manifest/v1";

/// One per-stream count line (only non-empty streams are emitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamLine {
    /// Stream kind.
    pub kind: StreamKind,
    /// Direction.
    pub dir: Direction,
    /// Records of this (kind, direction) retained.
    pub records: u64,
    /// Payload bytes of this (kind, direction) retained.
    pub bytes: u64,
}

/// Everything the manifest asserts about a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestSummary {
    /// Session/tenant id from the capture header.
    pub session_id: u64,
    /// Consent flag from the capture header.
    pub consent: bool,
    /// Whether the sink ran in ring mode.
    pub ring: bool,
    /// Ring retention window in µs (0 for full captures).
    pub window_us: u64,
    /// Records retained.
    pub records: u64,
    /// Payload bytes retained.
    pub bytes: u64,
    /// Whether the ring ever overwrote (always false for full captures).
    pub truncated: bool,
    /// Records the ring dropped.
    pub truncated_records: u64,
    /// Payload bytes the ring dropped.
    pub truncated_bytes: u64,
    /// Virtual-time span of the retained records.
    pub duration_us: u64,
    /// FNV fold over retained Tx RTP/RTCP payloads — what
    /// `SimSession::wire_digest` must equal after a replay.
    pub wire_digest: u64,
    /// Per-participant decoded-surface digests `(actor, digest)`.
    pub surface_digests: Vec<(u16, u64)>,
    /// Non-empty per-stream count lines.
    pub streams: Vec<StreamLine>,
}

impl ManifestSummary {
    /// Summarize an armed sink plus the replay targets the caller
    /// measured (`surface_digests` from the live participants).
    pub fn from_handle(handle: &CaptureHandle, surface_digests: Vec<(u16, u64)>) -> Self {
        let header = handle.header();
        let stats = handle.stats();
        let mut streams = Vec::new();
        for kind in StreamKind::ALL {
            for (d, dir) in [
                Direction::Tx,
                Direction::Rx,
                Direction::Up,
                Direction::Internal,
            ]
            .into_iter()
            .enumerate()
            {
                let slot = stats.streams[kind as usize][d];
                if slot.records > 0 {
                    streams.push(StreamLine {
                        kind,
                        dir,
                        records: slot.records,
                        bytes: slot.bytes,
                    });
                }
            }
        }
        ManifestSummary {
            session_id: header.session_id,
            consent: header.consent,
            ring: header.ring,
            window_us: match handle.mode() {
                CaptureMode::Full => 0,
                CaptureMode::Ring { window_us } => window_us,
            },
            records: stats.records,
            bytes: stats.payload_bytes,
            truncated: stats.truncated(),
            truncated_records: stats.truncated_records,
            truncated_bytes: stats.truncated_bytes,
            duration_us: stats.duration_us(),
            wire_digest: handle.wire_digest(),
            surface_digests,
            streams,
        }
    }
}

fn hex(digest: u64) -> String {
    format!("0x{digest:016x}")
}

fn parse_hex(s: &str) -> Result<u64, String> {
    let body = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("digest {s:?} missing 0x prefix"))?;
    u64::from_str_radix(body, 16).map_err(|e| format!("digest {s:?}: {e}"))
}

/// Serialize a [`ManifestSummary`] as the manifest JSON document.
pub fn manifest_json(m: &ManifestSummary) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema\":");
    json::write_string(&mut out, CAPTURE_MANIFEST_SCHEMA);
    out.push_str(&format!(",\"session_id\":{}", m.session_id));
    out.push_str(&format!(",\"consent\":{}", m.consent));
    out.push_str(",\"mode\":");
    json::write_string(&mut out, if m.ring { "ring" } else { "full" });
    out.push_str(&format!(",\"window_us\":{}", m.window_us));
    out.push_str(&format!(",\"records\":{}", m.records));
    out.push_str(&format!(",\"bytes\":{}", m.bytes));
    out.push_str(&format!(",\"truncated\":{}", m.truncated));
    out.push_str(&format!(",\"truncated_records\":{}", m.truncated_records));
    out.push_str(&format!(",\"truncated_bytes\":{}", m.truncated_bytes));
    out.push_str(&format!(",\"duration_us\":{}", m.duration_us));
    out.push_str(",\"wire_digest\":");
    json::write_string(&mut out, &hex(m.wire_digest));
    out.push_str(",\"surface_digests\":[");
    for (i, (actor, digest)) in m.surface_digests.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"actor\":{actor},\"digest\":"));
        json::write_string(&mut out, &hex(*digest));
        out.push('}');
    }
    out.push_str("],\"streams\":[");
    for (i, s) in m.streams.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        json::write_string(&mut out, s.kind.name());
        out.push_str(",\"dir\":");
        json::write_string(&mut out, s.dir.name());
        out.push_str(&format!(
            ",\"records\":{},\"bytes\":{}}}",
            s.records, s.bytes
        ));
    }
    out.push_str("]}");
    out
}

fn kind_by_name(name: &str) -> Result<StreamKind, String> {
    StreamKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown stream kind {name:?}"))
}

fn dir_by_name(name: &str) -> Result<Direction, String> {
    [
        Direction::Tx,
        Direction::Rx,
        Direction::Up,
        Direction::Internal,
    ]
    .into_iter()
    .find(|d| d.name() == name)
    .ok_or_else(|| format!("unknown direction {name:?}"))
}

fn req_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("manifest missing integer field {key:?}"))
}

fn req_bool(doc: &Json, key: &str) -> Result<bool, String> {
    match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("manifest missing boolean field {key:?}")),
    }
}

/// Parse a manifest JSON document back into a [`ManifestSummary`].
pub fn parse_manifest(text: &str) -> Result<ManifestSummary, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("manifest missing schema marker")?;
    if schema != CAPTURE_MANIFEST_SCHEMA {
        return Err(format!("unexpected schema marker {schema:?}"));
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("manifest missing mode")?;
    let ring = match mode {
        "ring" => true,
        "full" => false,
        other => return Err(format!("unknown mode {other:?}")),
    };
    let wire_digest = parse_hex(
        doc.get("wire_digest")
            .and_then(Json::as_str)
            .ok_or("manifest missing wire_digest")?,
    )?;
    let mut surface_digests = Vec::new();
    for entry in doc
        .get("surface_digests")
        .and_then(Json::as_array)
        .ok_or("manifest missing surface_digests")?
    {
        let actor = req_u64(entry, "actor")?;
        let digest = parse_hex(
            entry
                .get("digest")
                .and_then(Json::as_str)
                .ok_or("surface digest entry missing digest")?,
        )?;
        surface_digests.push((
            u16::try_from(actor).map_err(|_| format!("actor {actor} out of range"))?,
            digest,
        ));
    }
    let mut streams = Vec::new();
    for entry in doc
        .get("streams")
        .and_then(Json::as_array)
        .ok_or("manifest missing streams")?
    {
        streams.push(StreamLine {
            kind: kind_by_name(
                entry
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or("stream entry missing kind")?,
            )?,
            dir: dir_by_name(
                entry
                    .get("dir")
                    .and_then(Json::as_str)
                    .ok_or("stream entry missing dir")?,
            )?,
            records: req_u64(entry, "records")?,
            bytes: req_u64(entry, "bytes")?,
        });
    }
    Ok(ManifestSummary {
        session_id: req_u64(&doc, "session_id")?,
        consent: req_bool(&doc, "consent")?,
        ring,
        window_us: req_u64(&doc, "window_us")?,
        records: req_u64(&doc, "records")?,
        bytes: req_u64(&doc, "bytes")?,
        truncated: req_bool(&doc, "truncated")?,
        truncated_records: req_u64(&doc, "truncated_records")?,
        truncated_bytes: req_u64(&doc, "truncated_bytes")?,
        duration_us: req_u64(&doc, "duration_us")?,
        wire_digest,
        surface_digests,
        streams,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Transport;
    use crate::sink::{CaptureConfig, CaptureMode};

    fn sample() -> ManifestSummary {
        ManifestSummary {
            session_id: 42,
            consent: true,
            ring: true,
            window_us: 2_000_000,
            records: 7,
            bytes: 910,
            truncated: true,
            truncated_records: 3,
            truncated_bytes: 400,
            duration_us: 1_900_000,
            wire_digest: 0xdead_beef_cafe_f00d,
            surface_digests: vec![(0, 0x1111_2222_3333_4444), (1, u64::MAX)],
            streams: vec![StreamLine {
                kind: StreamKind::Rtp,
                dir: Direction::Tx,
                records: 7,
                bytes: 910,
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = manifest_json(&m);
        let back = parse_manifest(&text).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn digests_survive_u64_range() {
        let m = sample();
        let back = parse_manifest(&manifest_json(&m)).expect("parses");
        assert_eq!(back.surface_digests[1].1, u64::MAX);
    }

    #[test]
    fn from_handle_summarizes_sink() {
        let c = CaptureHandle::arm(CaptureConfig {
            consent: true,
            mode: CaptureMode::Full,
            session_id: 9,
            start_us: 0,
        })
        .expect("consented");
        c.record(
            Direction::Tx,
            StreamKind::Rtp,
            Transport::Udp,
            0,
            10,
            b"abc",
        );
        c.record(Direction::Rx, StreamKind::Hip, Transport::Udp, 1, 20, b"de");
        let m = ManifestSummary::from_handle(&c, vec![(0, 5)]);
        assert_eq!(m.session_id, 9);
        assert!(m.consent);
        assert!(!m.ring);
        assert_eq!(m.records, 2);
        assert_eq!(m.bytes, 5);
        assert!(!m.truncated);
        assert_eq!(m.streams.len(), 2);
        assert_eq!(m.wire_digest, c.wire_digest());
    }

    #[test]
    fn rejects_wrong_schema_marker() {
        let text = manifest_json(&sample()).replace("adshare-capture-manifest/v1", "nope/v1");
        assert!(parse_manifest(&text).is_err());
    }
}
