//! The capture sink: where every tap writes.
//!
//! A [`CaptureHandle`] is a cheap cloneable handle (an `Arc<Mutex<_>>`)
//! held by the AH, every participant delivery point, and any relay the
//! session routes through, so one arm call captures the whole session.
//! Arming **requires consent** — [`CaptureHandle::arm`] refuses without
//! the flag, and the flag is persisted in the file header so a reader can
//! tell a consented capture from a hand-assembled one.
//!
//! [`CaptureMode::Ring`] keeps only the most recent `window_us` of
//! traffic (the CRITICAL auto-arm mode: always-on, bounded cost). When
//! the ring overwrites, truncation is reported **explicitly**: counters in
//! the stats/manifest, a [`EventKind::CaptureTruncated`] flight-recorder
//! event per prune batch, and a one-shot log line — a capture that
//! silently lost its head is worse than no capture.

use adshare_obs::{Event, EventKind, Obs};

use crate::format::{
    encode_header, encode_record_parts, fnv1a_fold, CaptureError, CaptureHeader, Direction,
    StreamKind, Transport, FNV_OFFSET,
};

/// How much a capture retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Keep every record until finalize (regression captures, tests).
    Full,
    /// Keep only records within `window_us` of the newest one — the
    /// bounded black-box mode the health engine auto-arms.
    Ring {
        /// Retention window in virtual microseconds.
        window_us: u64,
    },
}

/// Arm-time configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaptureConfig {
    /// Explicit consent to record wire content. Arming fails without it.
    pub consent: bool,
    /// Retention mode.
    pub mode: CaptureMode,
    /// Session/tenant id stamped into the header and manifest.
    pub session_id: u64,
    /// Virtual time at arm (stamped into the header).
    pub start_us: u64,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            consent: false,
            mode: CaptureMode::Full,
            session_id: 0,
            start_us: 0,
        }
    }
}

/// Per-stream record/byte counts (indexed by kind × direction in
/// [`CaptureStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCount {
    /// Records currently retained.
    pub records: u64,
    /// Payload bytes currently retained.
    pub bytes: u64,
}

/// Aggregate sink counters (retained + truncated).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureStats {
    /// Records currently retained.
    pub records: u64,
    /// Payload bytes currently retained.
    pub payload_bytes: u64,
    /// Records the ring dropped to hold its window.
    pub truncated_records: u64,
    /// Payload bytes those dropped records carried.
    pub truncated_bytes: u64,
    /// Timestamp of the oldest retained record (0 when empty).
    pub first_ts_us: u64,
    /// Timestamp of the newest retained record (0 when empty).
    pub last_ts_us: u64,
    /// Retained counts by `[StreamKind as usize][Direction as usize]`
    /// (kind index 0 is unused — kinds start at 1).
    pub streams: [[StreamCount; 4]; 7],
}

impl CaptureStats {
    /// Whether the ring ever overwrote.
    pub fn truncated(&self) -> bool {
        self.truncated_records > 0
    }

    /// Retained duration (newest − oldest timestamp).
    pub fn duration_us(&self) -> u64 {
        self.last_ts_us.saturating_sub(self.first_ts_us)
    }
}

#[derive(Debug)]
struct Stored {
    kind: StreamKind,
    dir: Direction,
    ts_us: u64,
    payload_len: u64,
    /// The record's full wire form (length prefix + body + checksum), so
    /// serializing the file is a concatenation.
    encoded: Vec<u8>,
}

/// Incremental disk stream for Full-mode captures: records leave memory
/// the moment they are taped, with aggregate counters and the wire digest
/// maintained on the way out so `stats()`/`wire_digest()` stay exact.
struct StreamOut {
    writer: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    records: u64,
    payload_bytes: u64,
    first_ts_us: Option<u64>,
    last_ts_us: u64,
    streams: [[StreamCount; 4]; 7],
    digest: u64,
}

impl StreamOut {
    /// Account one record into the running aggregates (the equivalents of
    /// what `stats()`/`wire_digest()` derive from retained records).
    fn account(&mut self, kind: StreamKind, dir: Direction, ts_us: u64, payload: &[u8]) {
        self.records += 1;
        self.payload_bytes += payload.len() as u64;
        self.first_ts_us.get_or_insert(ts_us);
        self.last_ts_us = ts_us;
        let slot = &mut self.streams[kind as usize][dir as usize];
        slot.records += 1;
        slot.bytes += payload.len() as u64;
        if dir == Direction::Tx && matches!(kind, StreamKind::Rtp | StreamKind::Rtcp) {
            self.digest = fnv1a_fold(self.digest, payload);
        }
    }
}

struct SinkState {
    header: CaptureHeader,
    mode: CaptureMode,
    records: std::collections::VecDeque<Stored>,
    payload_bytes: u64,
    truncated_records: u64,
    truncated_bytes: u64,
    reported_truncation: bool,
    obs: Option<Obs>,
    finalized: bool,
    stream: Option<StreamOut>,
}

impl SinkState {
    fn prune(&mut self, now_us: u64) {
        let CaptureMode::Ring { window_us } = self.mode else {
            return;
        };
        let floor = now_us.saturating_sub(window_us);
        let mut dropped = 0u64;
        let mut dropped_bytes = 0u64;
        while self
            .records
            .front()
            .is_some_and(|r| r.ts_us < floor && r.kind != StreamKind::GapRecover)
        {
            let r = self.records.pop_front().expect("front checked");
            dropped += 1;
            dropped_bytes += r.payload_len;
            self.payload_bytes -= r.payload_len;
        }
        if dropped == 0 {
            return;
        }
        self.truncated_records += dropped;
        self.truncated_bytes += dropped_bytes;
        // Explicit truncation reporting: a flight-recorder event per prune
        // batch (running totals in the payload words) and one log line the
        // first time the ring overwrites.
        if let Some(obs) = &self.obs {
            obs.event(
                now_us,
                adshare_obs::ACTOR_AH,
                EventKind::CaptureTruncated,
                self.truncated_records,
                self.truncated_bytes,
            );
        }
        if !self.reported_truncation {
            self.reported_truncation = true;
            eprintln!(
                "adshare-capture: ring overwrote {dropped} record(s) ({dropped_bytes} bytes) \
                 older than {window_us} µs — capture is truncated",
                window_us = window_us,
            );
        }
    }

    /// Encode-and-store straight from the record's fields: the payload is
    /// copied exactly once, into its final wire form.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        dir: Direction,
        kind: StreamKind,
        transport: Transport,
        actor: u16,
        ts_us: u64,
        payload: &[u8],
    ) {
        let mut encoded = Vec::with_capacity(payload.len() + 32);
        encode_record_parts(dir, kind, transport, actor, ts_us, payload, &mut encoded);
        if let Some(st) = &mut self.stream {
            // Streaming Full mode: the record goes straight to the file
            // and never accumulates in memory. A write error is recorded
            // once via the truncation counters rather than panicking a
            // media path.
            use std::io::Write;
            if st.writer.write_all(&encoded).is_ok() {
                st.account(kind, dir, ts_us, payload);
            } else {
                self.truncated_records += 1;
                self.truncated_bytes += payload.len() as u64;
            }
            return;
        }
        self.payload_bytes += payload.len() as u64;
        self.records.push_back(Stored {
            kind,
            dir,
            ts_us,
            payload_len: payload.len() as u64,
            encoded,
        });
        self.prune(ts_us);
    }
}

/// Cloneable handle to one armed capture.
#[derive(Clone)]
pub struct CaptureHandle {
    state: std::sync::Arc<std::sync::Mutex<SinkState>>,
}

impl std::fmt::Debug for CaptureHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("capture sink poisoned");
        f.debug_struct("CaptureHandle")
            .field("records", &s.records.len())
            .field("mode", &s.mode)
            .finish()
    }
}

impl CaptureHandle {
    /// Arm a capture. Fails with [`CaptureError::ConsentRequired`] unless
    /// `cfg.consent` is set — recording wire content is consent-gated, not
    /// a debug default.
    pub fn arm(cfg: CaptureConfig) -> Result<CaptureHandle, CaptureError> {
        if !cfg.consent {
            return Err(CaptureError::ConsentRequired);
        }
        Ok(CaptureHandle {
            state: std::sync::Arc::new(std::sync::Mutex::new(SinkState {
                header: CaptureHeader {
                    consent: true,
                    ring: matches!(cfg.mode, CaptureMode::Ring { .. }),
                    session_id: cfg.session_id,
                    start_us: cfg.start_us,
                },
                mode: cfg.mode,
                records: std::collections::VecDeque::new(),
                payload_bytes: 0,
                truncated_records: 0,
                truncated_bytes: 0,
                reported_truncation: false,
                obs: None,
                finalized: false,
                stream: None,
            })),
        })
    }

    /// Stream this Full-mode capture to `path` incrementally: the header
    /// goes out immediately, anything already retained is drained to the
    /// file, and every subsequent record is appended as it is taped. A
    /// video-heavy session taping ~16 MiB/s never accumulates in memory,
    /// and the flush at finalize is a buffer drain, not a session-sized
    /// write burst. Ring mode refuses — a ring prunes its head, which an
    /// append-only file cannot.
    pub fn stream_to(&self, path: &std::path::Path) -> Result<(), CaptureError> {
        let mut s = self.state.lock().expect("capture sink poisoned");
        if !matches!(s.mode, CaptureMode::Full) {
            return Err(CaptureError::Unsupported(
                "only Full-mode captures can stream to disk (a ring prunes its head)".to_owned(),
            ));
        }
        if s.finalized {
            return Err(CaptureError::Unsupported(
                "capture already finalized".to_owned(),
            ));
        }
        if s.stream.is_some() {
            return Err(CaptureError::Unsupported(
                "capture already streaming".to_owned(),
            ));
        }
        use std::io::Write;
        let file = std::fs::File::create(path).map_err(|e| CaptureError::Io(e.to_string()))?;
        let mut writer = std::io::BufWriter::with_capacity(256 * 1024, file);
        writer
            .write_all(&encode_header(&s.header))
            .map_err(|e| CaptureError::Io(e.to_string()))?;
        let mut st = StreamOut {
            writer,
            path: path.to_path_buf(),
            records: 0,
            payload_bytes: 0,
            first_ts_us: None,
            last_ts_us: 0,
            streams: Default::default(),
            digest: FNV_OFFSET,
        };
        // Drain anything taped before streaming was enabled, in order, so
        // the file is a complete capture and memory drops to zero.
        for r in std::mem::take(&mut s.records) {
            st.writer
                .write_all(&r.encoded)
                .map_err(|e| CaptureError::Io(e.to_string()))?;
            let payload = &r.encoded[20..r.encoded.len() - 8];
            st.account(r.kind, r.dir, r.ts_us, payload);
        }
        s.payload_bytes = 0;
        s.stream = Some(st);
        Ok(())
    }

    /// Whether the sink is streaming to disk.
    pub fn streaming(&self) -> bool {
        self.state
            .lock()
            .expect("capture sink poisoned")
            .stream
            .is_some()
    }

    /// Attach an observability bundle so ring truncation surfaces as
    /// [`EventKind::CaptureTruncated`] events. The sink records with the
    /// caller-supplied virtual timestamps — the same clock the flight
    /// recorder stamps — so merged timelines never show negative spans.
    pub fn attach_obs(&self, obs: Obs) {
        self.state.lock().expect("capture sink poisoned").obs = Some(obs);
    }

    /// Record one datagram. `ts_us` must come from the caller's virtual
    /// clock (the one its flight-recorder events use).
    pub fn record(
        &self,
        dir: Direction,
        kind: StreamKind,
        transport: Transport,
        actor: u16,
        ts_us: u64,
        payload: &[u8],
    ) {
        let mut s = self.state.lock().expect("capture sink poisoned");
        if s.finalized {
            return;
        }
        s.push(dir, kind, transport, actor, ts_us, payload);
    }

    /// Record a gap-recovery control marker for `actor` (the session
    /// skipped an unrecoverable hole; replay must do the same).
    pub fn record_gap_recover(&self, actor: u16, ts_us: u64) {
        self.record(
            Direction::Internal,
            StreamKind::GapRecover,
            Transport::None,
            actor,
            ts_us,
            &[],
        );
    }

    /// Embed a flight-recorder snapshot as [`StreamKind::FlightEvent`]
    /// records and stop accepting traffic. Called once when the capture is
    /// flushed to disk; the embedded events make historical Perfetto
    /// export possible from the capture file alone.
    pub fn finalize(&self, events: &[Event]) {
        let mut s = self.state.lock().expect("capture sink poisoned");
        if s.finalized {
            return;
        }
        for e in events {
            let mut payload = Vec::with_capacity(25);
            payload.extend_from_slice(&e.seq.to_le_bytes());
            payload.push(e.kind as u8);
            payload.extend_from_slice(&e.a.to_le_bytes());
            payload.extend_from_slice(&e.b.to_le_bytes());
            s.push(
                Direction::Internal,
                StreamKind::FlightEvent,
                Transport::None,
                e.actor,
                e.ts_us,
                &payload,
            );
        }
        if let Some(st) = &mut s.stream {
            use std::io::Write;
            let _ = st.writer.flush();
        }
        s.finalized = true;
    }

    /// Whether [`CaptureHandle::finalize`] has run.
    pub fn finalized(&self) -> bool {
        self.state.lock().expect("capture sink poisoned").finalized
    }

    /// The header the file will carry.
    pub fn header(&self) -> CaptureHeader {
        self.state.lock().expect("capture sink poisoned").header
    }

    /// The retention mode the sink was armed with.
    pub fn mode(&self) -> CaptureMode {
        self.state.lock().expect("capture sink poisoned").mode
    }

    /// Aggregate counters over the retained records.
    pub fn stats(&self) -> CaptureStats {
        let s = self.state.lock().expect("capture sink poisoned");
        if let Some(st) = &s.stream {
            // Streaming: nothing is retained; the running aggregates are
            // the whole picture.
            return CaptureStats {
                records: st.records,
                payload_bytes: st.payload_bytes,
                truncated_records: s.truncated_records,
                truncated_bytes: s.truncated_bytes,
                first_ts_us: st.first_ts_us.unwrap_or(0),
                last_ts_us: st.last_ts_us,
                streams: st.streams,
            };
        }
        let mut stats = CaptureStats {
            records: s.records.len() as u64,
            payload_bytes: s.payload_bytes,
            truncated_records: s.truncated_records,
            truncated_bytes: s.truncated_bytes,
            first_ts_us: s.records.front().map_or(0, |r| r.ts_us),
            last_ts_us: s.records.back().map_or(0, |r| r.ts_us),
            ..Default::default()
        };
        for r in &s.records {
            let slot = &mut stats.streams[r.kind as usize][r.dir as usize];
            slot.records += 1;
            slot.bytes += r.payload_len;
        }
        stats
    }

    /// FNV-fold the retained egress (Tx) RTP/RTCP payloads in record
    /// order — bit-identical to the session's `wire_digest` when nothing
    /// was truncated, and the self-consistency anchor of a ring capture
    /// otherwise.
    pub fn wire_digest(&self) -> u64 {
        let s = self.state.lock().expect("capture sink poisoned");
        if let Some(st) = &s.stream {
            return st.digest;
        }
        let mut digest = FNV_OFFSET;
        for r in &s.records {
            if r.dir == Direction::Tx && matches!(r.kind, StreamKind::Rtp | StreamKind::Rtcp) {
                // Fold the payload slice out of the encoded form: it sits
                // between the 4+16-byte framing and the 8-byte checksum.
                let payload = &r.encoded[20..r.encoded.len() - 8];
                digest = fnv1a_fold(digest, payload);
            }
        }
        digest
    }

    /// Serialize header + records as an `adshare-capture/v1` byte stream.
    /// A streaming capture reads its own file back (after a flush), so the
    /// result is identical either way.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = self.state.lock().expect("capture sink poisoned");
        if let Some(st) = &mut s.stream {
            use std::io::Write;
            let _ = st.writer.flush();
            return std::fs::read(&st.path).unwrap_or_default();
        }
        let total: usize = s.records.iter().map(|r| r.encoded.len()).sum();
        let mut out = Vec::with_capacity(64 + total);
        out.extend_from_slice(&encode_header(&s.header));
        for r in &s.records {
            out.extend_from_slice(&r.encoded);
        }
        out
    }

    /// Write the capture to `path`. For a streaming capture this is a
    /// flush (plus a file copy when `path` differs from the stream path);
    /// otherwise the retained records are serialized in one write.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), CaptureError> {
        {
            let mut s = self.state.lock().expect("capture sink poisoned");
            if let Some(st) = &mut s.stream {
                use std::io::Write;
                st.writer
                    .flush()
                    .map_err(|e| CaptureError::Io(e.to_string()))?;
                if st.path != path {
                    std::fs::copy(&st.path, path).map_err(|e| CaptureError::Io(e.to_string()))?;
                }
                return Ok(());
            }
        }
        std::fs::write(path, self.to_bytes()).map_err(|e| CaptureError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(mode: CaptureMode) -> CaptureHandle {
        CaptureHandle::arm(CaptureConfig {
            consent: true,
            mode,
            session_id: 7,
            start_us: 0,
        })
        .expect("consented")
    }

    #[test]
    fn streaming_full_capture_matches_buffered_byte_for_byte() {
        let dir = std::env::temp_dir().join("adshare-capture-stream");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        let path = dir.join("stream.bin");
        let buffered = armed(CaptureMode::Full);
        let streamed = armed(CaptureMode::Full);
        // A couple of records land before streaming starts: they must be
        // drained into the file so it is a complete capture.
        for c in [&buffered, &streamed] {
            c.record(Direction::Tx, StreamKind::Rtp, Transport::Udp, 0, 1, b"pre");
        }
        streamed.stream_to(&path).expect("full mode streams");
        assert!(streamed.streaming());
        for i in 2..600u64 {
            let payload = vec![i as u8; 1024];
            for c in [&buffered, &streamed] {
                c.record(
                    Direction::Tx,
                    StreamKind::Rtp,
                    Transport::Udp,
                    0,
                    i,
                    &payload,
                );
            }
        }
        // Incremental: well past the writer's buffer, bytes are already
        // on disk before any finalize/flush.
        let on_disk = std::fs::metadata(&path).expect("file exists").len();
        assert!(on_disk > 256 * 1024, "stream should spill early: {on_disk}");

        assert_eq!(streamed.wire_digest(), buffered.wire_digest());
        let (ss, bs) = (streamed.stats(), buffered.stats());
        assert_eq!(ss.records, bs.records);
        assert_eq!(ss.payload_bytes, bs.payload_bytes);
        assert_eq!(ss.streams, bs.streams);
        assert_eq!(ss.first_ts_us, bs.first_ts_us);
        assert_eq!(ss.last_ts_us, bs.last_ts_us);

        let ev = Event {
            seq: 1,
            ts_us: 600,
            actor: 0,
            kind: EventKind::NackSent,
            a: 0,
            b: 0,
        };
        buffered.finalize(&[ev]);
        streamed.finalize(&[ev]);
        assert_eq!(
            streamed.to_bytes(),
            buffered.to_bytes(),
            "streamed file must be the exact serialization a buffered capture produces"
        );
        let parsed = crate::reader::parse_capture(&std::fs::read(&path).unwrap()).expect("parses");
        assert_eq!(parsed.records.len() as u64, streamed.stats().records);
    }

    #[test]
    fn ring_mode_refuses_streaming() {
        let c = armed(CaptureMode::Ring {
            window_us: 1_000_000,
        });
        let err = c
            .stream_to(&std::env::temp_dir().join("adshare-ring-refused.bin"))
            .expect_err("ring cannot stream");
        assert!(matches!(err, CaptureError::Unsupported(_)), "{err}");
        assert!(!c.streaming());
    }

    #[test]
    fn arming_without_consent_fails() {
        let err = CaptureHandle::arm(CaptureConfig::default()).unwrap_err();
        assert_eq!(err, CaptureError::ConsentRequired);
    }

    #[test]
    fn full_mode_retains_everything() {
        let c = armed(CaptureMode::Full);
        for i in 0..100u64 {
            c.record(
                Direction::Tx,
                StreamKind::Rtp,
                Transport::Udp,
                0,
                i * 1_000_000,
                &[i as u8; 8],
            );
        }
        let stats = c.stats();
        assert_eq!(stats.records, 100);
        assert_eq!(stats.payload_bytes, 800);
        assert!(!stats.truncated());
        assert_eq!(stats.streams[StreamKind::Rtp as usize][0].records, 100);
    }

    #[test]
    fn ring_mode_truncates_and_counts() {
        let c = armed(CaptureMode::Ring {
            window_us: 1_000_000,
        });
        for i in 0..10u64 {
            c.record(
                Direction::Tx,
                StreamKind::Rtp,
                Transport::Udp,
                0,
                i * 500_000,
                &[0u8; 16],
            );
        }
        let stats = c.stats();
        assert!(stats.truncated());
        assert!(stats.records < 10);
        assert_eq!(stats.records + stats.truncated_records, 10);
        assert_eq!(stats.payload_bytes + stats.truncated_bytes, 160);
        // Everything retained is within the window of the newest record.
        assert!(stats.last_ts_us - stats.first_ts_us <= 1_000_000);
    }

    #[test]
    fn truncation_records_obs_event() {
        let obs = Obs::new();
        let c = armed(CaptureMode::Ring { window_us: 100 });
        c.attach_obs(obs.clone());
        c.record(Direction::Tx, StreamKind::Rtp, Transport::Udp, 0, 0, &[1]);
        c.record(
            Direction::Tx,
            StreamKind::Rtp,
            Transport::Udp,
            0,
            10_000,
            &[2],
        );
        let events = obs.recorder.snapshot();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::CaptureTruncated && e.a == 1));
    }

    #[test]
    fn wire_digest_folds_tx_rtp_rtcp_only() {
        let c = armed(CaptureMode::Full);
        c.record(Direction::Tx, StreamKind::Rtp, Transport::Udp, 0, 1, b"aa");
        c.record(Direction::Rx, StreamKind::Rtp, Transport::Udp, 0, 2, b"zz");
        c.record(Direction::Up, StreamKind::Hip, Transport::Udp, 0, 3, b"qq");
        c.record(Direction::Tx, StreamKind::Rtcp, Transport::Udp, 0, 4, b"bb");
        let expected = fnv1a_fold(fnv1a_fold(FNV_OFFSET, b"aa"), b"bb");
        assert_eq!(c.wire_digest(), expected);
    }

    #[test]
    fn finalize_embeds_events_and_freezes() {
        let c = armed(CaptureMode::Full);
        c.record(Direction::Tx, StreamKind::Rtp, Transport::Udp, 0, 1, b"x");
        let ev = Event {
            seq: 9,
            ts_us: 5,
            actor: 2,
            kind: EventKind::NackSent,
            a: 3,
            b: 4,
        };
        c.finalize(&[ev]);
        assert!(c.finalized());
        c.record(Direction::Tx, StreamKind::Rtp, Transport::Udp, 0, 2, b"y");
        let stats = c.stats();
        assert_eq!(stats.records, 2, "post-finalize records dropped");
        assert_eq!(
            stats.streams[StreamKind::FlightEvent as usize][Direction::Internal as usize].records,
            1
        );
        // And the serialized form parses back.
        let parsed = crate::reader::parse_capture(&c.to_bytes()).expect("parses");
        assert_eq!(parsed.records.len(), 2);
        let events = crate::reader::flight_events(&parsed.records);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], ev);
    }
}
