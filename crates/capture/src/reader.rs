//! Parse and validate `adshare-capture/v1` byte streams.
//!
//! Every record carries its own FNV checksum, so [`parse_capture`] detects
//! any bit flip; [`wire_digest_of`] recomputes the egress digest a replay
//! must match; [`flight_events`] recovers the flight-recorder events the
//! sink embedded at finalize time (for historical Perfetto export).

use adshare_obs::{Event, EventKind};

use crate::format::{
    decode_header, decode_record, fnv1a_fold, CaptureError, CaptureHeader, CaptureRecord,
    Direction, StreamKind, FNV_OFFSET,
};

/// A fully parsed capture file.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The versioned file header.
    pub header: CaptureHeader,
    /// Every record, in capture order.
    pub records: Vec<CaptureRecord>,
}

/// Parse a complete capture byte stream, verifying the magic and every
/// per-record checksum. Trailing garbage is an error.
pub fn parse_capture(bytes: &[u8]) -> Result<Capture, CaptureError> {
    let (header, mut pos) = decode_header(bytes)?;
    let mut records = Vec::new();
    while pos < bytes.len() {
        let (record, used) = decode_record(&bytes[pos..]).map_err(|e| {
            CaptureError::Corrupt(format!("record {} at byte {pos}: {e}", records.len()))
        })?;
        pos += used;
        records.push(record);
    }
    Ok(Capture { header, records })
}

/// Fold the egress (Tx) RTP/RTCP payloads of `records` in order — the
/// digest `SimSession::wire_digest` reports for the same traffic.
pub fn wire_digest_of(records: &[CaptureRecord]) -> u64 {
    let mut digest = FNV_OFFSET;
    for r in records {
        if r.dir == Direction::Tx && matches!(r.kind, StreamKind::Rtp | StreamKind::Rtcp) {
            digest = fnv1a_fold(digest, &r.payload);
        }
    }
    digest
}

/// Recover the flight-recorder events embedded at finalize time.
/// Records with malformed payloads or unknown event kinds are skipped —
/// a capture from a newer writer should still replay on an older reader.
pub fn flight_events(records: &[CaptureRecord]) -> Vec<Event> {
    let mut events = Vec::new();
    for r in records {
        if r.kind != StreamKind::FlightEvent || r.payload.len() != 25 {
            continue;
        }
        let seq = u64::from_le_bytes(r.payload[0..8].try_into().expect("len checked"));
        let Some(kind) = EventKind::from_u8(r.payload[8]) else {
            continue;
        };
        let a = u64::from_le_bytes(r.payload[9..17].try_into().expect("len checked"));
        let b = u64::from_le_bytes(r.payload[17..25].try_into().expect("len checked"));
        events.push(Event {
            seq,
            ts_us: r.ts_us,
            actor: r.actor,
            kind,
            a,
            b,
        });
    }
    events
}

/// Read and parse a capture file from disk.
pub fn read_capture(path: &std::path::Path) -> Result<Capture, CaptureError> {
    let bytes = std::fs::read(path).map_err(|e| CaptureError::Io(e.to_string()))?;
    parse_capture(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Transport;
    use crate::sink::{CaptureConfig, CaptureHandle, CaptureMode};

    fn armed() -> CaptureHandle {
        CaptureHandle::arm(CaptureConfig {
            consent: true,
            mode: CaptureMode::Full,
            session_id: 3,
            start_us: 100,
        })
        .expect("consented")
    }

    #[test]
    fn sink_round_trips_through_reader() {
        let c = armed();
        c.record(
            Direction::Tx,
            StreamKind::Rtp,
            Transport::Udp,
            0,
            10,
            b"one",
        );
        c.record(
            Direction::Rx,
            StreamKind::Rtcp,
            Transport::Udp,
            1,
            20,
            b"two",
        );
        c.record(
            Direction::Up,
            StreamKind::Hip,
            Transport::Tcp,
            2,
            30,
            b"three",
        );
        let parsed = parse_capture(&c.to_bytes()).expect("parses");
        assert_eq!(parsed.header.session_id, 3);
        assert_eq!(parsed.header.start_us, 100);
        assert!(parsed.header.consent);
        assert_eq!(parsed.records.len(), 3);
        assert_eq!(parsed.records[2].payload, b"three");
        assert_eq!(parsed.records[2].transport, Transport::Tcp);
        assert_eq!(wire_digest_of(&parsed.records), c.wire_digest());
    }

    #[test]
    fn corrupt_record_is_rejected_with_position() {
        let c = armed();
        c.record(
            Direction::Tx,
            StreamKind::Rtp,
            Transport::Udp,
            0,
            10,
            b"data",
        );
        let mut bytes = c.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = parse_capture(&bytes).expect_err("must reject");
        assert!(matches!(err, CaptureError::Corrupt(_)));
    }

    #[test]
    fn truncated_tail_is_rejected() {
        let c = armed();
        c.record(
            Direction::Tx,
            StreamKind::Rtp,
            Transport::Udp,
            0,
            10,
            b"data",
        );
        let bytes = c.to_bytes();
        let err = parse_capture(&bytes[..bytes.len() - 3]).expect_err("must reject");
        assert!(matches!(err, CaptureError::Corrupt(_)));
    }

    #[test]
    fn flight_events_skips_foreign_payloads() {
        let c = armed();
        // A malformed (wrong length) flight-event record…
        c.record(
            Direction::Internal,
            StreamKind::FlightEvent,
            Transport::None,
            0,
            5,
            &[0u8; 10],
        );
        c.finalize(&[Event {
            seq: 1,
            ts_us: 9,
            actor: 4,
            kind: EventKind::NackSent,
            a: 7,
            b: 8,
        }]);
        let parsed = parse_capture(&c.to_bytes()).expect("parses");
        let events = flight_events(&parsed.records);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ts_us, 9);
        assert_eq!(events[0].actor, 4);
    }
}
