//! The `adshare-capture/v1` binary format.
//!
//! A capture file is the magic header followed by zero or more
//! length-prefixed records:
//!
//! ```text
//! header:  magic "adshare-capture/v1\n" (19 bytes)
//!          consent u8 | ring u8 | reserved u16 | reserved u32
//!          session_id u64 LE | start_us u64 LE
//! record:  len u32 LE            (bytes that follow, incl. checksum)
//!          dir u8 | kind u8 | transport u8 | reserved u8
//!          actor u16 LE | reserved u16
//!          ts_us u64 LE
//!          payload (len - 16 - 8 bytes)
//!          checksum u64 LE       (chunked FNV-1a over dir..payload:
//!                                 length-seeded, 8-byte LE words,
//!                                 zero-padded tail)
//! ```
//!
//! Every record carries its own checksum, so a truncated or bit-flipped
//! file fails loudly at the damaged record instead of replaying garbage.
//! The FNV constants are identical to the session crate's wire-digest
//! fold, so re-folding a capture's AH-egress records reproduces
//! `SimSession::wire_digest` bit-exactly — the property replay asserts.

/// Magic prefix of every capture file; doubles as the format version.
pub const CAPTURE_MAGIC: &[u8] = b"adshare-capture/v1\n";

/// FNV-1a offset basis (same constant as the session wire digest).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fold `bytes` into a running FNV-1a digest.
pub fn fnv1a_fold(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest ^= u64::from(b);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// The per-record checksum: FNV-1a folded over 8-byte little-endian
/// words (zero-padded tail), seeded with the input length. One multiply
/// per word instead of one per byte — recording sits on the session hot
/// path, and the byte-serial fold's multiply latency chain dominates the
/// capture overhead budget on megabyte-per-second streams.
pub fn record_checksum(bytes: &[u8]) -> u64 {
    let mut digest = (FNV_OFFSET ^ bytes.len() as u64).wrapping_mul(FNV_PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        digest ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        digest ^= u64::from_le_bytes(tail);
        digest = digest.wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Errors arming, encoding, or decoding a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// Arming was attempted without the consent flag set. Wire capture
    /// records user content; it is never switched on implicitly.
    ConsentRequired,
    /// A file or buffer failed structural validation (bad magic, bad
    /// checksum, truncated record, unknown enum value).
    Corrupt(String),
    /// An I/O error surfaced while reading or writing a capture file.
    Io(String),
    /// The requested operation does not apply to this capture's mode
    /// (e.g. streaming a ring capture to an append-only file).
    Unsupported(String),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::ConsentRequired => {
                write!(f, "capture requires consent at arm time")
            }
            CaptureError::Corrupt(detail) => write!(f, "corrupt capture: {detail}"),
            CaptureError::Io(detail) => write!(f, "capture i/o: {detail}"),
            CaptureError::Unsupported(detail) => write!(f, "capture: {detail}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Which hop of the pipeline a record was taken at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Direction {
    /// AH (or relay) egress: the datagram as it left the sender. Folding
    /// these records (RTP/RTCP kinds) in order reproduces the wire digest.
    Tx = 0,
    /// Participant ingress: the datagram as delivered (after simulated
    /// loss/reorder/delay). Replay feeds exactly these to a fresh
    /// participant.
    Rx = 1,
    /// AH ingress: upstream feedback (RTCP/HIP/BFCP) from participants.
    Up = 2,
    /// Not wire traffic: flight-recorder events and control markers
    /// embedded in the capture.
    Internal = 3,
}

impl Direction {
    /// Stable snake_case name for manifests and timelines.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Tx => "tx",
            Direction::Rx => "rx",
            Direction::Up => "up",
            Direction::Internal => "internal",
        }
    }

    /// Reverse of the `repr(u8)` discriminant.
    pub fn from_u8(v: u8) -> Option<Direction> {
        match v {
            0 => Some(Direction::Tx),
            1 => Some(Direction::Rx),
            2 => Some(Direction::Up),
            3 => Some(Direction::Internal),
            _ => None,
        }
    }
}

/// What kind of bytes a record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StreamKind {
    /// An RTP datagram (remoting media).
    Rtp = 1,
    /// An RTCP compound (sender/receiver reports, NACK, PLI).
    Rtcp = 2,
    /// A Host Interaction Protocol message (participant input).
    Hip = 3,
    /// A BFCP floor-control message.
    Bfcp = 4,
    /// One flight-recorder event, embedded at finalize time so historical
    /// Perfetto export needs only the capture file.
    FlightEvent = 5,
    /// Control marker: the session skipped an unrecoverable gap for this
    /// participant (`recover_from_gap`). Replay must do the same to stay
    /// bit-exact.
    GapRecover = 6,
}

impl StreamKind {
    /// Stable snake_case name for manifests and timelines.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Rtp => "rtp",
            StreamKind::Rtcp => "rtcp",
            StreamKind::Hip => "hip",
            StreamKind::Bfcp => "bfcp",
            StreamKind::FlightEvent => "flight_event",
            StreamKind::GapRecover => "gap_recover",
        }
    }

    /// Reverse of the `repr(u8)` discriminant.
    pub fn from_u8(v: u8) -> Option<StreamKind> {
        match v {
            1 => Some(StreamKind::Rtp),
            2 => Some(StreamKind::Rtcp),
            3 => Some(StreamKind::Hip),
            4 => Some(StreamKind::Bfcp),
            5 => Some(StreamKind::FlightEvent),
            6 => Some(StreamKind::GapRecover),
            _ => None,
        }
    }

    /// Every wire-carrying kind, in discriminant order (drives manifest
    /// stream tables).
    pub const ALL: [StreamKind; 6] = [
        StreamKind::Rtp,
        StreamKind::Rtcp,
        StreamKind::Hip,
        StreamKind::Bfcp,
        StreamKind::FlightEvent,
        StreamKind::GapRecover,
    ];
}

/// Which transport carried the datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Transport {
    /// Simulated or real UDP.
    Udp = 0,
    /// RFC 4571-framed TCP (the payload is the unframed datagram).
    Tcp = 1,
    /// Multicast UDP.
    Multicast = 2,
    /// Not a transport (flight events, control markers).
    None = 3,
}

impl Transport {
    /// Stable snake_case name for manifests and timelines.
    pub fn name(self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
            Transport::Multicast => "multicast",
            Transport::None => "none",
        }
    }

    /// Reverse of the `repr(u8)` discriminant.
    pub fn from_u8(v: u8) -> Option<Transport> {
        match v {
            0 => Some(Transport::Udp),
            1 => Some(Transport::Tcp),
            2 => Some(Transport::Multicast),
            3 => Some(Transport::None),
            _ => None,
        }
    }
}

/// The fixed header at the front of every capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureHeader {
    /// The consent flag that was presented at arm time. Always `true` in a
    /// well-formed file (arming without consent fails), but carried so a
    /// reader can reject a hand-built file that skipped the gate.
    pub consent: bool,
    /// Whether the capture was a bounded ring (older records may have been
    /// truncated) rather than a full recording.
    pub ring: bool,
    /// Session/tenant id the capture belongs to.
    pub session_id: u64,
    /// Virtual time when the capture was armed.
    pub start_us: u64,
}

/// One captured record: a verbatim datagram (or embedded event) plus its
/// capture metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Which hop the record was taken at.
    pub dir: Direction,
    /// What the payload is.
    pub kind: StreamKind,
    /// Which transport carried it.
    pub transport: Transport,
    /// Participant index, relay leg, or `0xFFFF` for the AH.
    pub actor: u16,
    /// Virtual timestamp — the same clock the flight recorder stamps, so
    /// merged timelines never show negative spans.
    pub ts_us: u64,
    /// The verbatim bytes.
    pub payload: Vec<u8>,
}

/// Bytes of record framing before the payload (after the length prefix).
const RECORD_META: usize = 16;
/// Bytes of the trailing checksum.
const RECORD_CHK: usize = 8;
/// Header length: magic + flags/reserved (8) + session_id + start_us.
const HEADER_LEN: usize = CAPTURE_MAGIC.len() + 8 + 8 + 8;

/// Serialize the file header.
pub fn encode_header(h: &CaptureHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(CAPTURE_MAGIC);
    out.push(u8::from(h.consent));
    out.push(u8::from(h.ring));
    out.extend_from_slice(&[0u8; 6]); // reserved
    out.extend_from_slice(&h.session_id.to_le_bytes());
    out.extend_from_slice(&h.start_us.to_le_bytes());
    out
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(w)
}

/// Parse the file header; returns it plus the number of bytes consumed.
pub fn decode_header(buf: &[u8]) -> Result<(CaptureHeader, usize), CaptureError> {
    if buf.len() < HEADER_LEN {
        return Err(CaptureError::Corrupt(format!(
            "header needs {HEADER_LEN} bytes, have {}",
            buf.len()
        )));
    }
    if &buf[..CAPTURE_MAGIC.len()] != CAPTURE_MAGIC {
        return Err(CaptureError::Corrupt(
            "bad magic (not an adshare-capture/v1 file)".into(),
        ));
    }
    let at = CAPTURE_MAGIC.len();
    let header = CaptureHeader {
        consent: buf[at] != 0,
        ring: buf[at + 1] != 0,
        session_id: read_u64(buf, at + 8),
        start_us: read_u64(buf, at + 16),
    };
    Ok((header, HEADER_LEN))
}

/// Append one record's wire form to `out`, straight from its fields —
/// the sink uses this to encode without an intermediate payload clone.
#[allow(clippy::too_many_arguments)]
pub fn encode_record_parts(
    dir: Direction,
    kind: StreamKind,
    transport: Transport,
    actor: u16,
    ts_us: u64,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let body_len = RECORD_META + payload.len() + RECORD_CHK;
    out.reserve(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len();
    out.push(dir as u8);
    out.push(kind as u8);
    out.push(transport as u8);
    out.push(0); // reserved
    out.extend_from_slice(&actor.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]); // reserved
    out.extend_from_slice(&ts_us.to_le_bytes());
    out.extend_from_slice(payload);
    let chk = record_checksum(&out[body_start..]);
    out.extend_from_slice(&chk.to_le_bytes());
}

/// Append one record's wire form to `out`.
pub fn encode_record(rec: &CaptureRecord, out: &mut Vec<u8>) {
    encode_record_parts(
        rec.dir,
        rec.kind,
        rec.transport,
        rec.actor,
        rec.ts_us,
        &rec.payload,
        out,
    );
}

/// Parse one record from the front of `buf`; returns it plus the number of
/// bytes consumed. Validates the length prefix and the checksum.
pub fn decode_record(buf: &[u8]) -> Result<(CaptureRecord, usize), CaptureError> {
    if buf.len() < 4 {
        return Err(CaptureError::Corrupt("truncated length prefix".into()));
    }
    let mut w = [0u8; 4];
    w.copy_from_slice(&buf[..4]);
    let body_len = u32::from_le_bytes(w) as usize;
    if body_len < RECORD_META + RECORD_CHK {
        return Err(CaptureError::Corrupt(format!(
            "record body {body_len} shorter than framing"
        )));
    }
    if buf.len() < 4 + body_len {
        return Err(CaptureError::Corrupt(format!(
            "record needs {} bytes, have {}",
            4 + body_len,
            buf.len()
        )));
    }
    let body = &buf[4..4 + body_len];
    let (data, chk_bytes) = body.split_at(body_len - RECORD_CHK);
    let stored = read_u64(chk_bytes, 0);
    let computed = record_checksum(data);
    if stored != computed {
        return Err(CaptureError::Corrupt(format!(
            "record checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let dir = Direction::from_u8(data[0])
        .ok_or_else(|| CaptureError::Corrupt(format!("unknown direction {}", data[0])))?;
    let kind = StreamKind::from_u8(data[1])
        .ok_or_else(|| CaptureError::Corrupt(format!("unknown stream kind {}", data[1])))?;
    let transport = Transport::from_u8(data[2])
        .ok_or_else(|| CaptureError::Corrupt(format!("unknown transport {}", data[2])))?;
    let actor = u16::from_le_bytes([data[4], data[5]]);
    let ts_us = read_u64(data, 8);
    let payload = data[RECORD_META..].to_vec();
    Ok((
        CaptureRecord {
            dir,
            kind,
            transport,
            actor,
            ts_us,
            payload,
        },
        4 + body_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64, payload: &[u8]) -> CaptureRecord {
        CaptureRecord {
            dir: Direction::Tx,
            kind: StreamKind::Rtp,
            transport: Transport::Udp,
            actor: 3,
            ts_us: ts,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn header_round_trips() {
        let h = CaptureHeader {
            consent: true,
            ring: false,
            session_id: 0xDEAD_BEEF,
            start_us: 123_456,
        };
        let bytes = encode_header(&h);
        let (back, used) = decode_header(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn record_round_trips() {
        let rec = record(42, b"hello wire");
        let mut out = Vec::new();
        encode_record(&rec, &mut out);
        let (back, used) = decode_record(&out).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, out.len());
    }

    #[test]
    fn empty_payload_round_trips() {
        let rec = CaptureRecord {
            dir: Direction::Internal,
            kind: StreamKind::GapRecover,
            transport: Transport::None,
            actor: 0,
            ts_us: 0,
            payload: Vec::new(),
        };
        let mut out = Vec::new();
        encode_record(&rec, &mut out);
        assert_eq!(decode_record(&out).unwrap().0, rec);
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut out = Vec::new();
        encode_record(&record(1, b"payload"), &mut out);
        let mid = out.len() / 2;
        out[mid] ^= 0x40;
        assert!(matches!(decode_record(&out), Err(CaptureError::Corrupt(_))));
    }

    #[test]
    fn truncated_record_is_rejected() {
        let mut out = Vec::new();
        encode_record(&record(1, b"payload"), &mut out);
        out.truncate(out.len() - 3);
        assert!(decode_record(&out).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_header(&CaptureHeader {
            consent: true,
            ring: false,
            session_id: 0,
            start_us: 0,
        });
        bytes[0] = b'X';
        assert!(decode_header(&bytes).is_err());
    }

    #[test]
    fn fnv_fold_matches_reference() {
        // FNV-1a of "a" from the published test vectors.
        assert_eq!(fnv1a_fold(FNV_OFFSET, b"a"), 0xaf63dc4c8601ec8c);
    }
}
