//! # adshare-capture — consent-gated wire capture + deterministic replay
//!
//! The flight recorder (adshare-obs) snapshots *derived* state; the actual
//! remoting/HIP/RTP/RTCP byte streams vanish the moment they are consumed,
//! which makes field bugs unreproducible. This crate records them:
//!
//! - [`mod@format`]: the `adshare-capture/v1` on-disk format — a versioned
//!   magic header followed by length-prefixed, per-record FNV-checksummed
//!   records carrying direction, stream kind, transport, actor, and a
//!   virtual timestamp next to the verbatim datagram bytes.
//! - [`sink`]: the capture sink the session taps feed. Arming **requires a
//!   consent flag** ([`CaptureError::ConsentRequired`] otherwise —
//!   recording is a first-class consent-gated feature, not a debug switch).
//!   Two modes: [`CaptureMode::Full`] keeps everything;
//!   [`CaptureMode::Ring`] keeps a bounded window of the most recent
//!   traffic and reports truncation explicitly (counters, flight-recorder
//!   events, and a one-shot log line).
//! - [`manifest`]: the `adshare-capture-manifest/v1` JSON sidecar — stream
//!   counts, byte totals, consent flag, truncation marker, and the wire /
//!   decoded-surface digests that make a capture self-verifying.
//! - [`reader`]: parse + validate a capture, recompute its wire digest,
//!   and recover the flight-recorder events embedded at finalize time.
//! - [`cachewarm`]: encode-cache persistence — serialize hot cache entries
//!   keyed by `(content_hash, dims, tier)` so a re-share of the same
//!   window starts warm.
//!
//! The replay engine itself lives in `adshare-session` (it drives a real
//! `Participant`); this crate stays below the session layer so the AH,
//! participants, relays, and the multi-tenant host can all hold a
//! [`CaptureHandle`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cachewarm;
pub mod format;
pub mod manifest;
pub mod reader;
pub mod sink;

pub use cachewarm::{decode_entries, encode_entries, WarmEntry, CACHEWARM_MAGIC};
pub use format::{
    fnv1a_fold, CaptureError, CaptureHeader, CaptureRecord, Direction, StreamKind, Transport,
    CAPTURE_MAGIC, FNV_OFFSET,
};
pub use manifest::{manifest_json, parse_manifest, ManifestSummary, CAPTURE_MANIFEST_SCHEMA};
pub use reader::{flight_events, parse_capture, read_capture, wire_digest_of, Capture};
pub use sink::{CaptureConfig, CaptureHandle, CaptureMode, CaptureStats, StreamCount};
