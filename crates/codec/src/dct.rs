//! A block-DCT lossy codec standing in for JPEG (draft §4.2: "JPEG is lossy,
//! but more suitable for photographic images").
//!
//! Architecture mirrors JPEG: RGB → YCbCr colour transform, 8×8 forward DCT,
//! quality-scaled quantisation with separate luma/chroma tables, zigzag
//! ordering, then a compact entropy stage (run-length of zeros + signed
//! varints, finished with DEFLATE). It reproduces JPEG's rate/distortion
//! behaviour on photographic vs synthetic content without importing a full
//! JPEG entropy coder.

use crate::deflate::{self, Level};
use crate::image::Image;
use crate::{Error, Result};

/// Magic bytes identifying this codec's container.
const MAGIC: [u8; 4] = *b"ADCT";

/// Standard JPEG luminance quantisation table (Annex K), in zigzag order
/// applied here in natural row-major order for simplicity.
const LUMA_Q: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Standard JPEG chrominance quantisation table (Annex K).
const CHROMA_Q: [i32; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99, 24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zigzag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scale a base quantisation table by quality 1..=100 (JPEG's convention).
fn scaled_table(base: &[i32; 64], quality: u8) -> [i32; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = ((base[i] * scale + 50) / 100).clamp(1, 255);
    }
    out
}

/// Forward 8×8 DCT-II on a block of centred samples (−128..127 range in,
/// coefficients out). Separable row/column floating-point implementation.
fn fdct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    // Rows.
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for x in 0..8 {
                s += block[y * 8 + x] * dct_cos(x, u);
            }
            tmp[y * 8 + u] = s * norm(u);
        }
    }
    // Columns.
    for u in 0..8 {
        for v in 0..8 {
            let mut s = 0f32;
            for y in 0..8 {
                s += tmp[y * 8 + u] * dct_cos(y, v);
            }
            block[v * 8 + u] = s * norm(v);
        }
    }
}

/// Inverse 8×8 DCT.
fn idct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    // Columns.
    for u in 0..8 {
        for y in 0..8 {
            let mut s = 0f32;
            for v in 0..8 {
                s += norm(v) * block[v * 8 + u] * dct_cos(y, v);
            }
            tmp[y * 8 + u] = s;
        }
    }
    // Rows.
    for y in 0..8 {
        for x in 0..8 {
            let mut s = 0f32;
            for u in 0..8 {
                s += norm(u) * tmp[y * 8 + u] * dct_cos(x, u);
            }
            block[y * 8 + x] = s;
        }
    }
}

fn dct_cos(x: usize, u: usize) -> f32 {
    // cos((2x+1) u pi / 16), cached in a 64-entry table.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f32; 64]> = OnceLock::new();
    let t = TABLE.get_or_init(|| {
        let mut t = [0f32; 64];
        for x in 0..8 {
            for u in 0..8 {
                t[x * 8 + u] =
                    (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    });
    t[x * 8 + u]
}

fn norm(u: usize) -> f32 {
    if u == 0 {
        0.5f32 / std::f32::consts::SQRT_2
    } else {
        0.5
    }
}

fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (f32, f32, f32) {
    let (r, g, b) = (r as f32, g as f32, b as f32);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    (y, cb, cr)
}

fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> (u8, u8, u8) {
    let r = y + 1.402 * (cr - 128.0);
    let g = y - 0.344_136 * (cb - 128.0) - 0.714_136 * (cr - 128.0);
    let b = y + 1.772 * (cb - 128.0);
    (clamp_u8(r), clamp_u8(g), clamp_u8(b))
}

fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// Signed zigzag varint (protobuf-style).
fn write_svarint(out: &mut Vec<u8>, v: i32) {
    let mut u = ((v << 1) ^ (v >> 31)) as u32;
    loop {
        if u < 0x80 {
            out.push(u as u8);
            return;
        }
        out.push((u & 0x7f) as u8 | 0x80);
        u >>= 7;
    }
}

fn read_svarint(data: &[u8], off: &mut usize) -> Result<i32> {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        if *off >= data.len() {
            return Err(Error::Truncated("DCT varint"));
        }
        let b = data[*off];
        *off += 1;
        u |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 31 {
            return Err(Error::Invalid {
                what: "DCT varint",
                detail: "too long",
            });
        }
    }
    Ok(((u >> 1) as i32) ^ -((u & 1) as i32))
}

/// Encode one quantised block: DC delta then (run, value) pairs, 0xFF = EOB
/// marker encoded as run-255.
fn encode_block(out: &mut Vec<u8>, coeffs: &[i32; 64], prev_dc: &mut i32) {
    write_svarint(out, coeffs[0] - *prev_dc);
    *prev_dc = coeffs[0];
    let mut run = 0u8;
    let mut last_nonzero = 0;
    for i in 1..64 {
        if coeffs[ZIGZAG[i]] != 0 {
            last_nonzero = i;
        }
    }
    for i in 1..=last_nonzero {
        let v = coeffs[ZIGZAG[i]];
        if v == 0 {
            run += 1;
        } else {
            out.push(run);
            write_svarint(out, v);
            run = 0;
        }
    }
    out.push(0xff); // end of block
}

fn decode_block(data: &[u8], off: &mut usize, prev_dc: &mut i32) -> Result<[i32; 64]> {
    let mut coeffs = [0i32; 64];
    let dc = read_svarint(data, off)?;
    *prev_dc += dc;
    coeffs[0] = *prev_dc;
    let mut i = 1;
    loop {
        if *off >= data.len() {
            return Err(Error::Truncated("DCT block"));
        }
        let run = data[*off];
        *off += 1;
        if run == 0xff {
            break;
        }
        i += run as usize;
        if i >= 64 {
            return Err(Error::Invalid {
                what: "DCT block",
                detail: "run past block end",
            });
        }
        coeffs[ZIGZAG[i]] = read_svarint(data, off)?;
        i += 1;
        if i > 64 {
            return Err(Error::Invalid {
                what: "DCT block",
                detail: "coefficient overflow",
            });
        }
    }
    Ok(coeffs)
}

/// Encode an image with the given quality (1..=100; higher = better).
pub fn encode(img: &Image, quality: u8) -> Vec<u8> {
    let w = img.width();
    let h = img.height();
    let luma_q = scaled_table(&LUMA_Q, quality);
    let chroma_q = scaled_table(&CHROMA_Q, quality);

    // Extract the three planes, centred at zero.
    let bw = w.div_ceil(8) as usize;
    let bh = h.div_ceil(8) as usize;
    let mut body = Vec::new();
    let mut prev_dc = [0i32; 3];

    for by in 0..bh {
        for bx in 0..bw {
            // Gather the 8x8 block (edge-clamped).
            let mut planes = [[0f32; 64]; 3];
            for dy in 0..8u32 {
                for dx in 0..8u32 {
                    let x = ((bx as u32 * 8) + dx).min(w - 1);
                    let y = ((by as u32 * 8) + dy).min(h - 1);
                    let [r, g, b, _] = img.pixel(x, y).expect("in bounds");
                    let (yy, cb, cr) = rgb_to_ycbcr(r, g, b);
                    let idx = (dy * 8 + dx) as usize;
                    planes[0][idx] = yy - 128.0;
                    planes[1][idx] = cb - 128.0;
                    planes[2][idx] = cr - 128.0;
                }
            }
            for (p, plane) in planes.iter_mut().enumerate() {
                fdct(plane);
                let q = if p == 0 { &luma_q } else { &chroma_q };
                let mut coeffs = [0i32; 64];
                for i in 0..64 {
                    coeffs[i] = (plane[i] / q[i] as f32).round() as i32;
                }
                encode_block(&mut body, &coeffs, &mut prev_dc[p]);
            }
        }
    }

    let compressed = deflate::deflate(&body, Level::Fast);
    let mut out = Vec::with_capacity(compressed.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&w.to_be_bytes());
    out.extend_from_slice(&h.to_be_bytes());
    out.push(quality.clamp(1, 100));
    out.extend_from_slice(&compressed);
    out
}

/// Decode an image produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Image> {
    if data.len() < 13 {
        return Err(Error::Truncated("DCT header"));
    }
    if data[..4] != MAGIC {
        return Err(Error::Invalid {
            what: "DCT container",
            detail: "bad magic",
        });
    }
    let w = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    let h = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
    let quality = data[12];
    if w == 0 || h == 0 || w > crate::image::MAX_DIMENSION || h > crate::image::MAX_DIMENSION {
        return Err(Error::BadDimensions {
            width: w,
            height: h,
        });
    }
    let luma_q = scaled_table(&LUMA_Q, quality);
    let chroma_q = scaled_table(&CHROMA_Q, quality);
    let bw = w.div_ceil(8) as usize;
    let bh = h.div_ceil(8) as usize;
    let body = deflate::inflate(&data[13..], bw * bh * 3 * 200 + 1024)?;

    let mut img = Image::new(w, h)?;
    let mut off = 0usize;
    let mut prev_dc = [0i32; 3];
    for by in 0..bh {
        for bx in 0..bw {
            let mut planes = [[0f32; 64]; 3];
            for (p, plane) in planes.iter_mut().enumerate() {
                let coeffs = decode_block(&body, &mut off, &mut prev_dc[p])?;
                let q = if p == 0 { &luma_q } else { &chroma_q };
                for i in 0..64 {
                    plane[i] = (coeffs[i] * q[i]) as f32;
                }
                idct(plane);
            }
            for dy in 0..8u32 {
                for dx in 0..8u32 {
                    let x = bx as u32 * 8 + dx;
                    let y = by as u32 * 8 + dy;
                    if x >= w || y >= h {
                        continue;
                    }
                    let idx = (dy * 8 + dx) as usize;
                    let (r, g, b) = ycbcr_to_rgb(
                        planes[0][idx] + 128.0,
                        planes[1][idx] + 128.0,
                        planes[2][idx] + 128.0,
                    );
                    img.set_pixel(x, y, [r, g, b, 255]);
                }
            }
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn photo_like(w: u32, h: u32) -> Image {
        // Smooth gradients + sensor-like noise: what real photographs look
        // like to a compressor (DCT quantises the noise away; lossless
        // codecs must spend bits on it).
        let mut img = Image::new(w, h).unwrap();
        let mut state = 0x9e3779b9u32;
        for y in 0..h {
            for x in 0..w {
                let fx = x as f32 / w as f32;
                let fy = y as f32 / h as f32;
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let noise = ((state >> 24) as i32 % 24) - 12;
                let r = (128.0 + 100.0 * (fx * 6.0).sin() + noise as f32).clamp(0.0, 255.0) as u8;
                let g = (128.0 + 100.0 * (fy * 5.0).cos() + noise as f32).clamp(0.0, 255.0) as u8;
                let b =
                    (128.0 + 80.0 * ((fx + fy) * 4.0).sin() + noise as f32).clamp(0.0, 255.0) as u8;
                img.set_pixel(x, y, [r, g, b, 255]);
            }
        }
        img
    }

    #[test]
    fn dct_idct_identity() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 128.0;
        }
        let original = block;
        fdct(&mut block);
        idct(&mut block);
        for i in 0..64 {
            assert!(
                (block[i] - original[i]).abs() < 0.01,
                "i={i}: {} vs {}",
                block[i],
                original[i]
            );
        }
    }

    #[test]
    fn dc_only_block() {
        // A flat block must produce a single DC coefficient.
        let mut block = [50f32; 64];
        fdct(&mut block);
        assert!(
            (block[0] - 400.0).abs() < 0.01,
            "DC = 8 * value, got {}",
            block[0]
        );
        for (i, &c) in block.iter().enumerate().skip(1) {
            assert!(c.abs() < 0.01, "AC[{i}] = {c}");
        }
    }

    #[test]
    fn svarint_round_trip() {
        let mut buf = Vec::new();
        let values = [0, 1, -1, 63, -64, 1000, -100000, i32::MAX, i32::MIN];
        for &v in &values {
            write_svarint(&mut buf, v);
        }
        let mut off = 0;
        for &v in &values {
            assert_eq!(read_svarint(&buf, &mut off).unwrap(), v);
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn high_quality_is_near_lossless_on_photo() {
        let img = photo_like(64, 64);
        let enc = encode(&img, 95);
        let back = decode(&enc).unwrap();
        let err = img.mean_abs_error(&back);
        assert!(err < 4.0, "q95 error {err}");
    }

    #[test]
    fn quality_monotonic_size_and_error() {
        let img = photo_like(96, 96);
        let hi = encode(&img, 90);
        let lo = encode(&img, 10);
        assert!(
            lo.len() < hi.len(),
            "q10 {} should be smaller than q90 {}",
            lo.len(),
            hi.len()
        );
        let err_hi = img.mean_abs_error(&decode(&hi).unwrap());
        let err_lo = img.mean_abs_error(&decode(&lo).unwrap());
        assert!(
            err_lo > err_hi,
            "q10 err {err_lo} should exceed q90 err {err_hi}"
        );
    }

    #[test]
    fn beats_lossless_on_photo_content() {
        let img = photo_like(128, 128);
        let dct = encode(&img, 50);
        let png = crate::png::encode(&img, crate::png::PngOptions::default());
        assert!(
            dct.len() < png.len(),
            "DCT ({}) should beat PNG ({}) on photographic content",
            dct.len(),
            png.len()
        );
    }

    #[test]
    fn non_multiple_of_8_dims() {
        let img = photo_like(33, 19);
        let back = decode(&encode(&img, 80)).unwrap();
        assert_eq!(back.width(), 33);
        assert_eq!(back.height(), 19);
        assert!(img.mean_abs_error(&back) < 10.0);
    }

    #[test]
    fn flat_image_tiny() {
        let img = Image::filled(64, 64, [100, 150, 200, 255]).unwrap();
        let enc = encode(&img, 75);
        assert!(
            enc.len() < 200,
            "flat image should encode tiny, got {}",
            enc.len()
        );
        let back = decode(&enc).unwrap();
        assert!(img.mean_abs_error(&back) < 2.0);
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x55aa55aau32;
        for len in 0..256 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
            if len >= 13 {
                buf[..4].copy_from_slice(&MAGIC);
                buf[4..8].copy_from_slice(&16u32.to_be_bytes());
                buf[8..12].copy_from_slice(&16u32.to_be_bytes());
                let _ = decode(&buf);
            }
        }
    }
}
