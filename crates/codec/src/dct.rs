//! A block-DCT lossy codec standing in for JPEG (draft §4.2: "JPEG is lossy,
//! but more suitable for photographic images").
//!
//! Architecture mirrors JPEG: RGB → YCbCr colour transform, 8×8 forward DCT,
//! quality-scaled quantisation with separate luma/chroma tables, zigzag
//! ordering, then a compact entropy stage (run-length of zeros + signed
//! varints, finished with DEFLATE). It reproduces JPEG's rate/distortion
//! behaviour on photographic vs synthetic content without importing a full
//! JPEG entropy coder.
//!
//! The transform itself is the integer Loeffler–Ligtenberg–Moshovitz kernel
//! (the `jfdctint`/`jidctint` factorisation): 12 multiplies per 1-D
//! transform instead of the 64 a naive separable implementation spends, in
//! 13-bit fixed point, so an 8×8 block costs 192 integer multiplies where
//! the seed's float kernel cost 1024 float multiplies plus table lookups.
//! Two implementations of the same arithmetic ship:
//!
//! * [`Kernel::Fast`] — lane-per-row/column form over `[i32; 8]` vectors
//!   (structure-of-arrays with two cheap 8×8 transposes), shaped so the
//!   autovectoriser turns each butterfly step into SIMD ops.
//! * [`Kernel::Reference`] — a plain scalar transliteration, one 1-D
//!   butterfly at a time.
//!
//! Both perform bit-identical arithmetic (proved by proptest over arbitrary
//! blocks at every quality), so the wire bytes do not depend on which is
//! selected; the reference path exists as an oracle and a perf ablation.
//! The seed's naive f32 kernel is kept under [`naive`] as the accuracy
//! oracle and the "before" side of `bench codecs`.

use crate::deflate::{self, Level};
use crate::image::Image;
use crate::{Error, Result};

/// Magic bytes identifying this codec's container.
const MAGIC: [u8; 4] = *b"ADCT";

/// Standard JPEG luminance quantisation table (Annex K), in zigzag order
/// applied here in natural row-major order for simplicity.
const LUMA_Q: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Standard JPEG chrominance quantisation table (Annex K).
const CHROMA_Q: [i32; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99, 24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zigzag scan order for an 8×8 block.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Which 8×8 transform implementation to run. Both produce bit-identical
/// coefficients; `Reference` exists as a correctness oracle and for the
/// perf ablation in the session config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub enum Kernel {
    /// Vectorised lane-per-row Loeffler kernel (the production path).
    #[default]
    Fast,
    /// Scalar one-butterfly-at-a-time form of the same arithmetic.
    Reference,
}

/// Scale a base quantisation table by quality 1..=100 (JPEG's convention).
fn scaled_table(base: &[i32; 64], quality: u8) -> [i32; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0i32; 64];
    for i in 0..64 {
        out[i] = ((base[i] * scale + 50) / 100).clamp(1, 255);
    }
    out
}

// ---------------------------------------------------------------------------
// Fixed-point Loeffler DCT (the jfdctint/jidctint factorisation).
// ---------------------------------------------------------------------------

/// Fixed-point fractional bits for the trig constants.
const CONST_BITS: u32 = 13;
/// Extra scale carried between the two 1-D passes for precision.
const PASS1_BITS: u32 = 2;

const FIX_0_298631336: i64 = 2446;
const FIX_0_390180644: i64 = 3196;
const FIX_0_541196100: i64 = 4433;
const FIX_0_765366865: i64 = 6270;
const FIX_0_899976223: i64 = 7373;
const FIX_1_175875602: i64 = 9633;
const FIX_1_501321110: i64 = 12299;
const FIX_1_847759065: i64 = 15137;
const FIX_1_961570560: i64 = 16069;
const FIX_2_053119869: i64 = 16819;
const FIX_2_562915447: i64 = 20995;
const FIX_3_072711026: i64 = 25172;

/// Round-to-nearest right shift (the `DESCALE` of libjpeg).
#[inline(always)]
fn descale(x: i64, n: u32) -> i32 {
    ((x + (1i64 << (n - 1))) >> n) as i32
}

/// One scalar forward 1-D butterfly: 8 centred samples in, 8 coefficients
/// out, scaled up by `2^PASS1_BITS` after pass 1 and descaled back down in
/// pass 2 (`pass2 = true`). Output of the full 2-D transform is the true
/// DCT-II multiplied by 8.
#[inline(always)]
fn fdct_1d_scalar(s: [i64; 8], pass2: bool) -> [i32; 8] {
    let tmp0 = s[0] + s[7];
    let tmp7 = s[0] - s[7];
    let tmp1 = s[1] + s[6];
    let tmp6 = s[1] - s[6];
    let tmp2 = s[2] + s[5];
    let tmp5 = s[2] - s[5];
    let tmp3 = s[3] + s[4];
    let tmp4 = s[3] - s[4];

    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    let (shift, o0, o4) = if pass2 {
        (
            CONST_BITS + PASS1_BITS,
            descale(tmp10 + tmp11, PASS1_BITS),
            descale(tmp10 - tmp11, PASS1_BITS),
        )
    } else {
        (
            CONST_BITS - PASS1_BITS,
            ((tmp10 + tmp11) << PASS1_BITS) as i32,
            ((tmp10 - tmp11) << PASS1_BITS) as i32,
        )
    };

    let z1 = (tmp12 + tmp13) * FIX_0_541196100;
    let o2 = descale(z1 + tmp13 * FIX_0_765366865, shift);
    let o6 = descale(z1 - tmp12 * FIX_1_847759065, shift);

    let z1 = tmp4 + tmp7;
    let z2 = tmp5 + tmp6;
    let z3 = tmp4 + tmp6;
    let z4 = tmp5 + tmp7;
    let z5 = (z3 + z4) * FIX_1_175875602;

    let t4 = tmp4 * FIX_0_298631336;
    let t5 = tmp5 * FIX_2_053119869;
    let t6 = tmp6 * FIX_3_072711026;
    let t7 = tmp7 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;

    let o7 = descale(t4 + z1 + z3, shift);
    let o5 = descale(t5 + z2 + z4, shift);
    let o3 = descale(t6 + z2 + z3, shift);
    let o1 = descale(t7 + z1 + z4, shift);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// One scalar inverse 1-D butterfly; `pass2` selects the final descale that
/// also divides out the forward transform's ×8.
#[inline(always)]
fn idct_1d_scalar(c: [i64; 8], pass2: bool) -> [i32; 8] {
    let shift = if pass2 {
        CONST_BITS + PASS1_BITS + 3
    } else {
        CONST_BITS - PASS1_BITS
    };

    let z2 = c[2];
    let z3 = c[6];
    let z1 = (z2 + z3) * FIX_0_541196100;
    let tmp2 = z1 - z3 * FIX_1_847759065;
    let tmp3 = z1 + z2 * FIX_0_765366865;

    let tmp0 = (c[0] + c[4]) << CONST_BITS;
    let tmp1 = (c[0] - c[4]) << CONST_BITS;

    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;

    let t0 = c[7];
    let t1 = c[5];
    let t2 = c[3];
    let t3 = c[1];
    let z1 = t0 + t3;
    let z2 = t1 + t2;
    let z3 = t0 + t2;
    let z4 = t1 + t3;
    let z5 = (z3 + z4) * FIX_1_175875602;

    let t0 = t0 * FIX_0_298631336;
    let t1 = t1 * FIX_2_053119869;
    let t2 = t2 * FIX_3_072711026;
    let t3 = t3 * FIX_1_501321110;
    let z1 = -z1 * FIX_0_899976223;
    let z2 = -z2 * FIX_2_562915447;
    let z3 = -z3 * FIX_1_961570560 + z5;
    let z4 = -z4 * FIX_0_390180644 + z5;

    let t0 = t0 + z1 + z3;
    let t1 = t1 + z2 + z4;
    let t2 = t2 + z2 + z3;
    let t3 = t3 + z1 + z4;

    [
        descale(tmp10 + t3, shift),
        descale(tmp11 + t2, shift),
        descale(tmp12 + t1, shift),
        descale(tmp13 + t0, shift),
        descale(tmp13 - t0, shift),
        descale(tmp12 - t1, shift),
        descale(tmp11 - t2, shift),
        descale(tmp10 - t3, shift),
    ]
}

/// Scalar reference forward DCT: rows (pass 1) then columns (pass 2).
pub fn fdct_reference(block: &mut [i32; 64]) {
    for y in 0..8 {
        let row = std::array::from_fn(|x| block[y * 8 + x] as i64);
        let out = fdct_1d_scalar(row, false);
        block[y * 8..y * 8 + 8].copy_from_slice(&out);
    }
    for x in 0..8 {
        let col = std::array::from_fn(|y| block[y * 8 + x] as i64);
        let out = fdct_1d_scalar(col, true);
        for y in 0..8 {
            block[y * 8 + x] = out[y];
        }
    }
}

/// Scalar reference inverse DCT: columns (pass 1) then rows (pass 2).
pub fn idct_reference(block: &mut [i32; 64]) {
    for x in 0..8 {
        let col = std::array::from_fn(|y| block[y * 8 + x] as i64);
        let out = idct_1d_scalar(col, false);
        for y in 0..8 {
            block[y * 8 + x] = out[y];
        }
    }
    for y in 0..8 {
        let row = std::array::from_fn(|x| block[y * 8 + x] as i64);
        let out = idct_1d_scalar(row, true);
        block[y * 8..y * 8 + 8].copy_from_slice(&out);
    }
}

// --- Vectorised form: the same butterflies, one lane per row/column. ------

/// Eight transforms in flight: lane `l` of every vector belongs to the
/// `l`-th row (or column) being transformed.
type V8 = [i32; 8];
type W8 = [i64; 8];

#[inline(always)]
fn widen(a: V8) -> W8 {
    std::array::from_fn(|i| a[i] as i64)
}

#[inline(always)]
fn wadd(a: W8, b: W8) -> W8 {
    std::array::from_fn(|i| a[i] + b[i])
}

#[inline(always)]
fn wsub(a: W8, b: W8) -> W8 {
    std::array::from_fn(|i| a[i] - b[i])
}

#[inline(always)]
fn wmul(a: W8, c: i64) -> W8 {
    std::array::from_fn(|i| a[i] * c)
}

#[inline(always)]
fn wshl(a: W8, n: u32) -> W8 {
    std::array::from_fn(|i| a[i] << n)
}

#[inline(always)]
fn wdescale(a: W8, n: u32) -> V8 {
    std::array::from_fn(|i| descale(a[i], n))
}

#[inline(always)]
fn narrow(a: W8) -> V8 {
    std::array::from_fn(|i| a[i] as i32)
}

/// Eight forward 1-D butterflies at once; `s[j]` holds sample `j` of each
/// of the 8 lanes. Arithmetic is lane-for-lane identical to
/// [`fdct_1d_scalar`].
#[inline(always)]
fn fdct_1d_vec(s: &[W8; 8], pass2: bool) -> [V8; 8] {
    let tmp0 = wadd(s[0], s[7]);
    let tmp7 = wsub(s[0], s[7]);
    let tmp1 = wadd(s[1], s[6]);
    let tmp6 = wsub(s[1], s[6]);
    let tmp2 = wadd(s[2], s[5]);
    let tmp5 = wsub(s[2], s[5]);
    let tmp3 = wadd(s[3], s[4]);
    let tmp4 = wsub(s[3], s[4]);

    let tmp10 = wadd(tmp0, tmp3);
    let tmp13 = wsub(tmp0, tmp3);
    let tmp11 = wadd(tmp1, tmp2);
    let tmp12 = wsub(tmp1, tmp2);

    let (shift, o0, o4) = if pass2 {
        (
            CONST_BITS + PASS1_BITS,
            wdescale(wadd(tmp10, tmp11), PASS1_BITS),
            wdescale(wsub(tmp10, tmp11), PASS1_BITS),
        )
    } else {
        (
            CONST_BITS - PASS1_BITS,
            narrow(wshl(wadd(tmp10, tmp11), PASS1_BITS)),
            narrow(wshl(wsub(tmp10, tmp11), PASS1_BITS)),
        )
    };

    let z1 = wmul(wadd(tmp12, tmp13), FIX_0_541196100);
    let o2 = wdescale(wadd(z1, wmul(tmp13, FIX_0_765366865)), shift);
    let o6 = wdescale(wsub(z1, wmul(tmp12, FIX_1_847759065)), shift);

    let z1 = wadd(tmp4, tmp7);
    let z2 = wadd(tmp5, tmp6);
    let z3 = wadd(tmp4, tmp6);
    let z4 = wadd(tmp5, tmp7);
    let z5 = wmul(wadd(z3, z4), FIX_1_175875602);

    let t4 = wmul(tmp4, FIX_0_298631336);
    let t5 = wmul(tmp5, FIX_2_053119869);
    let t6 = wmul(tmp6, FIX_3_072711026);
    let t7 = wmul(tmp7, FIX_1_501321110);
    let z1 = wmul(z1, -FIX_0_899976223);
    let z2 = wmul(z2, -FIX_2_562915447);
    let z3 = wadd(wmul(z3, -FIX_1_961570560), z5);
    let z4 = wadd(wmul(z4, -FIX_0_390180644), z5);

    let o7 = wdescale(wadd(wadd(t4, z1), z3), shift);
    let o5 = wdescale(wadd(wadd(t5, z2), z4), shift);
    let o3 = wdescale(wadd(wadd(t6, z2), z3), shift);
    let o1 = wdescale(wadd(wadd(t7, z1), z4), shift);
    [o0, o1, o2, o3, o4, o5, o6, o7]
}

/// Eight inverse 1-D butterflies at once, lane-identical to
/// [`idct_1d_scalar`].
#[inline(always)]
fn idct_1d_vec(c: &[W8; 8], pass2: bool) -> [V8; 8] {
    let shift = if pass2 {
        CONST_BITS + PASS1_BITS + 3
    } else {
        CONST_BITS - PASS1_BITS
    };

    let z1 = wmul(wadd(c[2], c[6]), FIX_0_541196100);
    let tmp2 = wsub(z1, wmul(c[6], FIX_1_847759065));
    let tmp3 = wadd(z1, wmul(c[2], FIX_0_765366865));

    let tmp0 = wshl(wadd(c[0], c[4]), CONST_BITS);
    let tmp1 = wshl(wsub(c[0], c[4]), CONST_BITS);

    let tmp10 = wadd(tmp0, tmp3);
    let tmp13 = wsub(tmp0, tmp3);
    let tmp11 = wadd(tmp1, tmp2);
    let tmp12 = wsub(tmp1, tmp2);

    let z1 = wadd(c[7], c[1]);
    let z2 = wadd(c[5], c[3]);
    let z3 = wadd(c[7], c[3]);
    let z4 = wadd(c[5], c[1]);
    let z5 = wmul(wadd(z3, z4), FIX_1_175875602);

    let t0 = wmul(c[7], FIX_0_298631336);
    let t1 = wmul(c[5], FIX_2_053119869);
    let t2 = wmul(c[3], FIX_3_072711026);
    let t3 = wmul(c[1], FIX_1_501321110);
    let z1 = wmul(z1, -FIX_0_899976223);
    let z2 = wmul(z2, -FIX_2_562915447);
    let z3 = wadd(wmul(z3, -FIX_1_961570560), z5);
    let z4 = wadd(wmul(z4, -FIX_0_390180644), z5);

    let t0 = wadd(wadd(t0, z1), z3);
    let t1 = wadd(wadd(t1, z2), z4);
    let t2 = wadd(wadd(t2, z2), z3);
    let t3 = wadd(wadd(t3, z1), z4);

    [
        wdescale(wadd(tmp10, t3), shift),
        wdescale(wadd(tmp11, t2), shift),
        wdescale(wadd(tmp12, t1), shift),
        wdescale(wadd(tmp13, t0), shift),
        wdescale(wsub(tmp13, t0), shift),
        wdescale(wsub(tmp12, t1), shift),
        wdescale(wsub(tmp11, t2), shift),
        wdescale(wsub(tmp10, t3), shift),
    ]
}

/// Transpose an 8×8 block of `[i32; 8]` rows.
#[inline(always)]
fn transpose(rows: &[V8; 8]) -> [V8; 8] {
    std::array::from_fn(|i| std::array::from_fn(|j| rows[j][i]))
}

#[inline(always)]
fn load_rows(block: &[i32; 64]) -> [V8; 8] {
    std::array::from_fn(|y| std::array::from_fn(|x| block[y * 8 + x]))
}

#[inline(always)]
fn store_rows(block: &mut [i32; 64], rows: &[V8; 8]) {
    for (y, row) in rows.iter().enumerate() {
        block[y * 8..y * 8 + 8].copy_from_slice(row);
    }
}

#[inline(always)]
fn widen_all(rows: &[V8; 8]) -> [W8; 8] {
    std::array::from_fn(|i| widen(rows[i]))
}

/// Vectorised forward DCT: lane-per-row pass 1, lane-per-column pass 2.
pub fn fdct_fast(block: &mut [i32; 64]) {
    // Pass 1 transforms every row; vector lane l = row l, so the inputs are
    // the block's columns (one transpose), and the butterfly outputs come
    // back as coefficient-major vectors (rows of the transposed result).
    let cols = transpose(&load_rows(block));
    let p1 = fdct_1d_vec(&widen_all(&cols), false);
    // p1[u][r] = pass-1 coefficient u of row r. Pass 2 transforms every
    // column; lane l = column l, so inputs are the pass-1 rows: transpose
    // back.
    let rows = transpose(&p1);
    let p2 = fdct_1d_vec(&widen_all(&rows), true);
    // p2[v][c] = final coefficient (v, c): already row-major.
    store_rows(block, &p2);
}

/// Vectorised inverse DCT: lane-per-column pass 1, lane-per-row pass 2.
pub fn idct_fast(block: &mut [i32; 64]) {
    // Pass 1 transforms every column; lane l = column l, so the inputs are
    // the block's rows — contiguous loads, no transpose needed.
    let rows = load_rows(block);
    let p1 = idct_1d_vec(&widen_all(&rows), false);
    // p1[y][c] = pass-1 sample row y, column c. Pass 2 transforms every
    // row; lane l = row l, so inputs are the columns of p1.
    let cols = transpose(&p1);
    let p2 = idct_1d_vec(&widen_all(&cols), true);
    // p2[x][r] = final sample (r, x): transpose into row-major order.
    store_rows(block, &transpose(&p2));
}

/// The seed's naive separable f32 kernel, kept as the accuracy oracle for
/// the fixed-point kernels and as the "before" side of `bench codecs` /
/// E22. Not used on any production path.
pub mod naive {
    /// Forward 8×8 DCT-II on centred samples (float, O(N²) per 1-D pass).
    pub fn fdct(block: &mut [f32; 64]) {
        let mut tmp = [0f32; 64];
        for y in 0..8 {
            for u in 0..8 {
                let mut s = 0f32;
                for x in 0..8 {
                    s += block[y * 8 + x] * dct_cos(x, u);
                }
                tmp[y * 8 + u] = s * norm(u);
            }
        }
        for u in 0..8 {
            for v in 0..8 {
                let mut s = 0f32;
                for y in 0..8 {
                    s += tmp[y * 8 + u] * dct_cos(y, v);
                }
                block[v * 8 + u] = s * norm(v);
            }
        }
    }

    /// Inverse 8×8 DCT (float).
    pub fn idct(block: &mut [f32; 64]) {
        let mut tmp = [0f32; 64];
        for u in 0..8 {
            for y in 0..8 {
                let mut s = 0f32;
                for v in 0..8 {
                    s += norm(v) * block[v * 8 + u] * dct_cos(y, v);
                }
                tmp[y * 8 + u] = s;
            }
        }
        for y in 0..8 {
            for x in 0..8 {
                let mut s = 0f32;
                for u in 0..8 {
                    s += norm(u) * tmp[y * 8 + u] * dct_cos(x, u);
                }
                block[y * 8 + x] = s;
            }
        }
    }

    fn dct_cos(x: usize, u: usize) -> f32 {
        // cos((2x+1) u pi / 16), cached in a 64-entry table.
        use std::sync::OnceLock;
        static TABLE: OnceLock<[f32; 64]> = OnceLock::new();
        let t = TABLE.get_or_init(|| {
            let mut t = [0f32; 64];
            for x in 0..8 {
                for u in 0..8 {
                    t[x * 8 + u] =
                        (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos();
                }
            }
            t
        });
        t[x * 8 + u]
    }

    fn norm(u: usize) -> f32 {
        if u == 0 {
            0.5f32 / std::f32::consts::SQRT_2
        } else {
            0.5
        }
    }
}

/// Quantise one forward coefficient. The kernel outputs the true DCT
/// scaled by 8, so the divisor is `8 * q`; rounding is half-away-from-zero
/// to match the old float path's `.round()`.
#[inline(always)]
fn quantise(c: i32, q: i32) -> i32 {
    let d = q * 8;
    if c >= 0 {
        (c + d / 2) / d
    } else {
        -((-c + d / 2) / d)
    }
}

// ---------------------------------------------------------------------------
// Integer colour transforms (16-bit fixed point).
// ---------------------------------------------------------------------------

/// RGB → centred YCbCr in 16-bit fixed point. Returns samples in
/// −128..=127.
#[inline(always)]
fn rgb_to_ycbcr_centred(r: u8, g: u8, b: u8) -> (i32, i32, i32) {
    let (r, g, b) = (r as i32, g as i32, b as i32);
    let y = (19595 * r + 38470 * g + 7471 * b + 32768) >> 16;
    let cb = (-11056 * r - 21712 * g + 32768 * b + 32768) >> 16;
    let cr = (32768 * r - 27440 * g - 5328 * b + 32768) >> 16;
    (y - 128, cb, cr)
}

/// Centred YCbCr → RGB, clamped to u8. Inputs are clamped to ±2048 first:
/// valid streams stay within ±~384 (IDCT ringing), but hostile coefficient
/// streams can push IDCT output far enough to overflow the 16-bit
/// fixed-point products below.
#[inline(always)]
fn ycbcr_centred_to_rgb(y: i32, cb: i32, cr: i32) -> (u8, u8, u8) {
    let y = y.clamp(-2048, 2047) + 128;
    let cb = cb.clamp(-2048, 2047);
    let cr = cr.clamp(-2048, 2047);
    let r = y + ((91881 * cr + 32768) >> 16);
    let g = y - ((22554 * cb + 46802 * cr + 32768) >> 16);
    let b = y + ((116130 * cb + 32768) >> 16);
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

/// Signed zigzag varint (protobuf-style).
fn write_svarint(out: &mut Vec<u8>, v: i32) {
    let mut u = ((v << 1) ^ (v >> 31)) as u32;
    loop {
        if u < 0x80 {
            out.push(u as u8);
            return;
        }
        out.push((u & 0x7f) as u8 | 0x80);
        u >>= 7;
    }
}

fn read_svarint(data: &[u8], off: &mut usize) -> Result<i32> {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        if *off >= data.len() {
            return Err(Error::Truncated("DCT varint"));
        }
        let b = data[*off];
        *off += 1;
        u |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 31 {
            return Err(Error::Invalid {
                what: "DCT varint",
                detail: "too long",
            });
        }
    }
    Ok(((u >> 1) as i32) ^ -((u & 1) as i32))
}

/// Encode one quantised block: DC delta then (run, value) pairs, 0xFF = EOB
/// marker encoded as run-255.
fn encode_block(out: &mut Vec<u8>, coeffs: &[i32; 64], prev_dc: &mut i32) {
    write_svarint(out, coeffs[0] - *prev_dc);
    *prev_dc = coeffs[0];
    let mut run = 0u8;
    let mut last_nonzero = 0;
    for i in 1..64 {
        if coeffs[ZIGZAG[i]] != 0 {
            last_nonzero = i;
        }
    }
    for i in 1..=last_nonzero {
        let v = coeffs[ZIGZAG[i]];
        if v == 0 {
            run += 1;
        } else {
            out.push(run);
            write_svarint(out, v);
            run = 0;
        }
    }
    out.push(0xff); // end of block
}

fn decode_block(data: &[u8], off: &mut usize, prev_dc: &mut i32) -> Result<[i32; 64]> {
    let mut coeffs = [0i32; 64];
    let dc = read_svarint(data, off)?;
    // Wrapping: hostile streams may accumulate arbitrary DC deltas.
    *prev_dc = prev_dc.wrapping_add(dc);
    coeffs[0] = *prev_dc;
    let mut i = 1;
    loop {
        if *off >= data.len() {
            return Err(Error::Truncated("DCT block"));
        }
        let run = data[*off];
        *off += 1;
        if run == 0xff {
            break;
        }
        i += run as usize;
        if i >= 64 {
            return Err(Error::Invalid {
                what: "DCT block",
                detail: "run past block end",
            });
        }
        coeffs[ZIGZAG[i]] = read_svarint(data, off)?;
        i += 1;
        if i > 64 {
            return Err(Error::Invalid {
                what: "DCT block",
                detail: "coefficient overflow",
            });
        }
    }
    Ok(coeffs)
}

/// Gather one 8×8 block of centred YCbCr samples (edge-clamped), writing
/// the three planes. The interior fast path walks whole pixel rows; only
/// right/bottom edge blocks pay the per-pixel clamping.
#[inline]
fn gather_block(img: &Image, bx: usize, by: usize, planes: &mut [[i32; 64]; 3]) {
    let w = img.width();
    let h = img.height();
    let x0 = bx as u32 * 8;
    let y0 = by as u32 * 8;
    if x0 + 8 <= w && y0 + 8 <= h {
        for dy in 0..8 {
            let row = img.row(y0 + dy as u32);
            let base = (x0 as usize) * 4;
            let px = &row[base..base + 32];
            for dx in 0..8 {
                let (yy, cb, cr) = rgb_to_ycbcr_centred(px[dx * 4], px[dx * 4 + 1], px[dx * 4 + 2]);
                let idx = dy * 8 + dx;
                planes[0][idx] = yy;
                planes[1][idx] = cb;
                planes[2][idx] = cr;
            }
        }
    } else {
        for dy in 0..8u32 {
            for dx in 0..8u32 {
                let x = (x0 + dx).min(w - 1);
                let y = (y0 + dy).min(h - 1);
                let [r, g, b, _] = img.pixel(x, y).expect("in bounds");
                let (yy, cb, cr) = rgb_to_ycbcr_centred(r, g, b);
                let idx = (dy * 8 + dx) as usize;
                planes[0][idx] = yy;
                planes[1][idx] = cb;
                planes[2][idx] = cr;
            }
        }
    }
}

/// Encode an image with the given quality (1..=100; higher = better).
pub fn encode(img: &Image, quality: u8) -> Vec<u8> {
    encode_with(img, quality, Kernel::Fast)
}

/// Encode with an explicit transform kernel. Both kernels produce
/// bit-identical bytes; [`Kernel::Reference`] exists for the perf ablation.
pub fn encode_with(img: &Image, quality: u8, kernel: Kernel) -> Vec<u8> {
    let w = img.width();
    let h = img.height();
    let luma_q = scaled_table(&LUMA_Q, quality);
    let chroma_q = scaled_table(&CHROMA_Q, quality);

    let bw = w.div_ceil(8) as usize;
    let bh = h.div_ceil(8) as usize;
    let mut body = Vec::new();
    let mut prev_dc = [0i32; 3];

    let fdct: fn(&mut [i32; 64]) = match kernel {
        Kernel::Fast => fdct_fast,
        Kernel::Reference => fdct_reference,
    };

    let mut planes = [[0i32; 64]; 3];
    for by in 0..bh {
        for bx in 0..bw {
            gather_block(img, bx, by, &mut planes);
            for (p, plane) in planes.iter_mut().enumerate() {
                fdct(plane);
                let q = if p == 0 { &luma_q } else { &chroma_q };
                let mut coeffs = [0i32; 64];
                for i in 0..64 {
                    coeffs[i] = quantise(plane[i], q[i]);
                }
                encode_block(&mut body, &coeffs, &mut prev_dc[p]);
            }
        }
    }

    let compressed = deflate::deflate(&body, Level::Fast);
    let mut out = Vec::with_capacity(compressed.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&w.to_be_bytes());
    out.extend_from_slice(&h.to_be_bytes());
    out.push(quality.clamp(1, 100));
    out.extend_from_slice(&compressed);
    out
}

/// Bound on dequantised coefficients: real streams stay well inside
/// `|DCT| <= 8 * 128 * 8 = 8192` (×8 kernel scale); hostile streams can
/// carry arbitrary varints, so clamp before the multiply to keep the
/// fixed-point IDCT's intermediates in range.
const COEFF_LIMIT: i64 = 1 << 20;

/// Decode an image produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Image> {
    decode_with(data, Kernel::Fast)
}

/// Decode with an explicit transform kernel (bit-identical output).
pub fn decode_with(data: &[u8], kernel: Kernel) -> Result<Image> {
    if data.len() < 13 {
        return Err(Error::Truncated("DCT header"));
    }
    if data[..4] != MAGIC {
        return Err(Error::Invalid {
            what: "DCT container",
            detail: "bad magic",
        });
    }
    let w = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
    let h = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
    let quality = data[12];
    if w == 0 || h == 0 || w > crate::image::MAX_DIMENSION || h > crate::image::MAX_DIMENSION {
        return Err(Error::BadDimensions {
            width: w,
            height: h,
        });
    }
    let luma_q = scaled_table(&LUMA_Q, quality);
    let chroma_q = scaled_table(&CHROMA_Q, quality);
    let bw = w.div_ceil(8) as usize;
    let bh = h.div_ceil(8) as usize;
    let body = deflate::inflate(&data[13..], bw * bh * 3 * 200 + 1024)?;

    let idct: fn(&mut [i32; 64]) = match kernel {
        Kernel::Fast => idct_fast,
        Kernel::Reference => idct_reference,
    };

    let mut img = Image::new(w, h)?;
    let mut off = 0usize;
    let mut prev_dc = [0i32; 3];
    let mut planes = [[0i32; 64]; 3];
    for by in 0..bh {
        for bx in 0..bw {
            for (p, plane) in planes.iter_mut().enumerate() {
                let coeffs = decode_block(&body, &mut off, &mut prev_dc[p])?;
                let q = if p == 0 { &luma_q } else { &chroma_q };
                for i in 0..64 {
                    let dq = coeffs[i] as i64 * q[i] as i64;
                    plane[i] = dq.clamp(-COEFF_LIMIT, COEFF_LIMIT) as i32;
                }
                idct(plane);
            }
            for dy in 0..8u32 {
                for dx in 0..8u32 {
                    let x = bx as u32 * 8 + dx;
                    let y = by as u32 * 8 + dy;
                    if x >= w || y >= h {
                        continue;
                    }
                    let idx = (dy * 8 + dx) as usize;
                    let (r, g, b) =
                        ycbcr_centred_to_rgb(planes[0][idx], planes[1][idx], planes[2][idx]);
                    img.set_pixel(x, y, [r, g, b, 255]);
                }
            }
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn photo_like(w: u32, h: u32) -> Image {
        // Smooth gradients + sensor-like noise: what real photographs look
        // like to a compressor (DCT quantises the noise away; lossless
        // codecs must spend bits on it).
        let mut img = Image::new(w, h).unwrap();
        let mut state = 0x9e3779b9u32;
        for y in 0..h {
            for x in 0..w {
                let fx = x as f32 / w as f32;
                let fy = y as f32 / h as f32;
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let noise = ((state >> 24) as i32 % 24) - 12;
                let r = (128.0 + 100.0 * (fx * 6.0).sin() + noise as f32).clamp(0.0, 255.0) as u8;
                let g = (128.0 + 100.0 * (fy * 5.0).cos() + noise as f32).clamp(0.0, 255.0) as u8;
                let b =
                    (128.0 + 80.0 * ((fx + fy) * 4.0).sin() + noise as f32).clamp(0.0, 255.0) as u8;
                img.set_pixel(x, y, [r, g, b, 255]);
            }
        }
        img
    }

    #[test]
    fn dct_idct_identity() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as i32 - 128;
        }
        let original = block;
        fdct_fast(&mut block);
        // The forward kernel emits true DCT × 8; the inverse expects
        // dequantised (true-scale) coefficients, so divide the 8 back out
        // the same way quantise(c, 1) would.
        for c in block.iter_mut() {
            *c = quantise(*c, 1);
        }
        idct_fast(&mut block);
        for i in 0..64 {
            assert!(
                (block[i] - original[i]).abs() <= 1,
                "i={i}: {} vs {}",
                block[i],
                original[i]
            );
        }
    }

    #[test]
    fn dc_only_block() {
        // A flat block must produce a single DC coefficient, scaled by 8.
        let mut block = [50i32; 64];
        fdct_fast(&mut block);
        assert_eq!(block[0], 8 * 400, "DC = 8 * 8 * value, got {}", block[0]);
        for (i, &c) in block.iter().enumerate().skip(1) {
            assert!(c.abs() <= 2, "AC[{i}] = {c}");
        }
    }

    #[test]
    fn fixed_point_matches_naive_f32_closely() {
        // The integer kernel is the production transform; the seed's f32
        // kernel is the accuracy oracle. Quantised coefficients may differ
        // by at most one step at any quality.
        let mut state = 0xfeed_beefu32;
        for trial in 0..200 {
            let mut int_block = [0i32; 64];
            let mut f32_block = [0f32; 64];
            for i in 0..64 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = ((state >> 20) as i32 % 256) - 128;
                int_block[i] = v;
                f32_block[i] = v as f32;
            }
            fdct_fast(&mut int_block);
            naive::fdct(&mut f32_block);
            for q in [1u8, 25, 50, 75, 95, 100] {
                let table = scaled_table(&LUMA_Q, q);
                for i in 0..64 {
                    let ours = quantise(int_block[i], table[i]);
                    let theirs = (f32_block[i] / table[i] as f32).round() as i32;
                    assert!(
                        (ours - theirs).abs() <= 1,
                        "trial {trial} q {q} i {i}: int {ours} vs f32 {theirs}"
                    );
                }
            }
        }
    }

    proptest! {
        // Tentpole acceptance: the vectorised kernel is bit-identical to
        // the scalar reference for arbitrary sample blocks...
        #[test]
        fn fast_fdct_equals_reference(samples in proptest::collection::vec(-128i32..=127, 64)) {
            let mut a = [0i32; 64];
            a.copy_from_slice(&samples);
            let mut b = a;
            fdct_fast(&mut a);
            fdct_reference(&mut b);
            prop_assert_eq!(a, b);
        }

        // ...and for the inverse, over the full hostile dequantised range.
        #[test]
        fn fast_idct_equals_reference(coeffs in proptest::collection::vec(-(1i32 << 20)..=(1 << 20), 64)) {
            let mut a = [0i32; 64];
            a.copy_from_slice(&coeffs);
            let mut b = a;
            idct_fast(&mut a);
            idct_reference(&mut b);
            prop_assert_eq!(a, b);
        }

        // Whole-pipeline parity at every quality: encode/decode bytes do
        // not depend on the kernel selected.
        #[test]
        fn kernel_choice_never_changes_wire_bytes(seed in 0u32..1000, quality in 1u8..=100) {
            let mut img = Image::new(24, 16).unwrap();
            let mut state = seed | 1;
            for y in 0..16 {
                for x in 0..24 {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    img.set_pixel(x, y, [(state >> 24) as u8, (state >> 16) as u8, (state >> 8) as u8, 255]);
                }
            }
            let fast = encode_with(&img, quality, Kernel::Fast);
            let refr = encode_with(&img, quality, Kernel::Reference);
            prop_assert_eq!(&fast, &refr);
            let d_fast = decode_with(&fast, Kernel::Fast).unwrap();
            let d_ref = decode_with(&fast, Kernel::Reference).unwrap();
            prop_assert_eq!(d_fast, d_ref);
        }
    }

    #[test]
    fn svarint_round_trip() {
        let mut buf = Vec::new();
        let values = [0, 1, -1, 63, -64, 1000, -100000, i32::MAX, i32::MIN];
        for &v in &values {
            write_svarint(&mut buf, v);
        }
        let mut off = 0;
        for &v in &values {
            assert_eq!(read_svarint(&buf, &mut off).unwrap(), v);
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn high_quality_is_near_lossless_on_photo() {
        let img = photo_like(64, 64);
        let enc = encode(&img, 95);
        let back = decode(&enc).unwrap();
        let err = img.mean_abs_error(&back);
        assert!(err < 4.0, "q95 error {err}");
    }

    #[test]
    fn quality_monotonic_size_and_error() {
        let img = photo_like(96, 96);
        let hi = encode(&img, 90);
        let lo = encode(&img, 10);
        assert!(
            lo.len() < hi.len(),
            "q10 {} should be smaller than q90 {}",
            lo.len(),
            hi.len()
        );
        let err_hi = img.mean_abs_error(&decode(&hi).unwrap());
        let err_lo = img.mean_abs_error(&decode(&lo).unwrap());
        assert!(
            err_lo > err_hi,
            "q10 err {err_lo} should exceed q90 err {err_hi}"
        );
    }

    #[test]
    fn beats_lossless_on_photo_content() {
        let img = photo_like(128, 128);
        let dct = encode(&img, 50);
        let png = crate::png::encode(&img, crate::png::PngOptions::default());
        assert!(
            dct.len() < png.len(),
            "DCT ({}) should beat PNG ({}) on photographic content",
            dct.len(),
            png.len()
        );
    }

    #[test]
    fn non_multiple_of_8_dims() {
        let img = photo_like(33, 19);
        let back = decode(&encode(&img, 80)).unwrap();
        assert_eq!(back.width(), 33);
        assert_eq!(back.height(), 19);
        assert!(img.mean_abs_error(&back) < 10.0);
    }

    #[test]
    fn flat_image_tiny() {
        let img = Image::filled(64, 64, [100, 150, 200, 255]).unwrap();
        let enc = encode(&img, 75);
        assert!(
            enc.len() < 200,
            "flat image should encode tiny, got {}",
            enc.len()
        );
        let back = decode(&enc).unwrap();
        assert!(img.mean_abs_error(&back) < 2.0);
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x55aa55aau32;
        for len in 0..256 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
            if len >= 13 {
                buf[..4].copy_from_slice(&MAGIC);
                buf[4..8].copy_from_slice(&16u32.to_be_bytes());
                buf[8..12].copy_from_slice(&16u32.to_be_bytes());
                let _ = decode(&buf);
            }
        }
    }

    #[test]
    fn hostile_coefficients_decode_without_panic() {
        // A hand-built stream with extreme DC deltas and AC values: the
        // clamp + wrapping DC must keep the fixed-point IDCT in range.
        let mut body = Vec::new();
        let mut prev_dc = 0i32;
        for _ in 0..4 * 3 {
            let mut coeffs = [0i32; 64];
            coeffs[0] = i32::MAX / 2;
            coeffs[1] = i32::MIN / 2;
            coeffs[63] = i32::MAX / 3;
            encode_block(&mut body, &coeffs, &mut prev_dc);
        }
        let compressed = deflate::deflate(&body, Level::Fast);
        let mut data = Vec::new();
        data.extend_from_slice(&MAGIC);
        data.extend_from_slice(&16u32.to_be_bytes());
        data.extend_from_slice(&16u32.to_be_bytes());
        data.push(50);
        data.extend_from_slice(&compressed);
        let _ = decode(&data);
    }
}
