//! The codec abstraction used by `RegionUpdate` payloads, and the RTP
//! payload-type registry negotiated in SDP.
//!
//! Draft §5.2.2: "The 7 bit PT field carries the actual payload type of the
//! content which can be PNG, JPEG, Theora, or any other media type which has
//! an RTP payload specification. All AH and participant software
//! implementations MUST support PNG images."

use crate::dct;
use crate::deflate::Level;
use crate::image::Image;
use crate::png::{self, PngOptions};
use crate::rle;
use crate::{Error, Result};

/// The codecs this implementation ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Uncompressed RGBA (width/height header + raw pixels).
    Raw,
    /// PNG — the mandatory lossless codec.
    Png,
    /// Block-DCT lossy codec (the "JPEG" role).
    Dct,
    /// Run-length encoding (the VNC-style baseline).
    Rle,
}

impl CodecKind {
    /// All kinds, in registry order.
    pub const ALL: [CodecKind; 4] = [
        CodecKind::Raw,
        CodecKind::Png,
        CodecKind::Dct,
        CodecKind::Rle,
    ];

    /// The SDP encoding name for this codec.
    pub fn encoding_name(self) -> &'static str {
        match self {
            CodecKind::Raw => "raw",
            CodecKind::Png => "png",
            CodecKind::Dct => "dct",
            CodecKind::Rle => "rle",
        }
    }

    /// Parse from an SDP encoding name (case-insensitive).
    pub fn from_encoding_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "raw" => Some(CodecKind::Raw),
            "png" => Some(CodecKind::Png),
            "dct" | "jpeg" => Some(CodecKind::Dct),
            "rle" => Some(CodecKind::Rle),
            _ => None,
        }
    }

    /// Whether decoding recovers the exact input pixels.
    pub fn lossless(self) -> bool {
        !matches!(self, CodecKind::Dct)
    }
}

/// Encoding parameters.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// DEFLATE effort for PNG.
    pub level: Level,
    /// Quality 1..=100 for the lossy codec.
    pub quality: u8,
    /// Which DCT transform implementation to run. Both are bit-identical
    /// (wire bytes never depend on this); [`dct::Kernel::Reference`] is the
    /// scalar ablation path.
    pub dct_kernel: dct::Kernel,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            level: Level::Default,
            quality: 75,
            dct_kernel: dct::Kernel::default(),
        }
    }
}

/// A payload image codec.
pub trait Codec {
    /// Which codec this is.
    fn kind(&self) -> CodecKind;
    /// Encode an image to payload bytes.
    fn encode(&self, img: &Image) -> Vec<u8>;
    /// Decode payload bytes back to an image.
    fn decode(&self, data: &[u8]) -> Result<Image>;
}

/// Unified codec implementation parameterised by kind.
#[derive(Debug, Clone, Copy)]
pub struct AnyCodec {
    kind: CodecKind,
    opts: EncodeOptions,
}

impl AnyCodec {
    /// Create a codec of the given kind with default options.
    pub fn new(kind: CodecKind) -> Self {
        AnyCodec {
            kind,
            opts: EncodeOptions::default(),
        }
    }

    /// Create with explicit options.
    pub fn with_options(kind: CodecKind, opts: EncodeOptions) -> Self {
        AnyCodec { kind, opts }
    }
}

impl Codec for AnyCodec {
    fn kind(&self) -> CodecKind {
        self.kind
    }

    fn encode(&self, img: &Image) -> Vec<u8> {
        match self.kind {
            CodecKind::Raw => {
                let mut out = Vec::with_capacity(img.data().len() + 12);
                out.extend_from_slice(b"ARAW");
                out.extend_from_slice(&img.width().to_be_bytes());
                out.extend_from_slice(&img.height().to_be_bytes());
                out.extend_from_slice(img.data());
                out
            }
            CodecKind::Png => {
                // RGB is smaller, but only lossless when the image is fully
                // opaque (the common case for screen content); otherwise
                // keep the alpha channel.
                let opaque = img.data().iter().skip(3).step_by(4).all(|&a| a == 255);
                let color = if opaque {
                    png::PngColor::Rgb
                } else {
                    png::PngColor::Rgba
                };
                png::encode(
                    img,
                    PngOptions {
                        color,
                        level: self.opts.level,
                    },
                )
            }
            CodecKind::Dct => dct::encode_with(img, self.opts.quality, self.opts.dct_kernel),
            CodecKind::Rle => rle::encode(img),
        }
    }

    fn decode(&self, data: &[u8]) -> Result<Image> {
        match self.kind {
            CodecKind::Raw => {
                if data.len() < 12 || &data[..4] != b"ARAW" {
                    return Err(Error::Invalid {
                        what: "raw image",
                        detail: "bad header",
                    });
                }
                let w = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
                let h = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
                Image::from_rgba(w, h, data[12..].to_vec())
            }
            CodecKind::Png => png::decode(data),
            CodecKind::Dct => dct::decode(data),
            CodecKind::Rle => rle::decode(data),
        }
    }
}

/// Maps RTP payload-type values (the 7-bit PT in the RegionUpdate parameter
/// field) to codecs, as negotiated in SDP.
#[derive(Debug, Clone)]
pub struct CodecRegistry {
    entries: Vec<(u8, AnyCodec)>,
}

/// Default dynamic payload-type assignments used by this implementation's
/// SDP offers (the draft's §10.3 example uses the dynamic range 96–127).
pub mod default_pt {
    /// PNG payload type.
    pub const PNG: u8 = 101;
    /// Lossy DCT payload type.
    pub const DCT: u8 = 102;
    /// RLE payload type.
    pub const RLE: u8 = 103;
    /// Raw payload type.
    pub const RAW: u8 = 104;
}

impl Default for CodecRegistry {
    fn default() -> Self {
        let mut r = CodecRegistry {
            entries: Vec::new(),
        };
        r.register(default_pt::PNG, AnyCodec::new(CodecKind::Png));
        r.register(default_pt::DCT, AnyCodec::new(CodecKind::Dct));
        r.register(default_pt::RLE, AnyCodec::new(CodecKind::Rle));
        r.register(default_pt::RAW, AnyCodec::new(CodecKind::Raw));
        r
    }
}

impl CodecRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        CodecRegistry {
            entries: Vec::new(),
        }
    }

    /// Register (or replace) a codec under an RTP payload type.
    pub fn register(&mut self, pt: u8, codec: AnyCodec) {
        let pt = pt & 0x7f;
        if let Some(slot) = self.entries.iter_mut().find(|(p, _)| *p == pt) {
            slot.1 = codec;
        } else {
            self.entries.push((pt, codec));
        }
    }

    /// Look up the codec for a payload type.
    pub fn get(&self, pt: u8) -> Option<&AnyCodec> {
        self.entries
            .iter()
            .find(|(p, _)| *p == (pt & 0x7f))
            .map(|(_, c)| c)
    }

    /// Find the payload type assigned to a codec kind.
    pub fn pt_for(&self, kind: CodecKind) -> Option<u8> {
        self.entries
            .iter()
            .find(|(_, c)| c.kind() == kind)
            .map(|(p, _)| *p)
    }

    /// Registered (pt, kind) pairs.
    pub fn list(&self) -> impl Iterator<Item = (u8, CodecKind)> + '_ {
        self.entries.iter().map(|(p, c)| (*p, c.kind()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Rect;

    fn sample() -> Image {
        let mut img = Image::filled(40, 30, [230, 230, 230, 255]).unwrap();
        img.fill_rect(Rect::new(5, 5, 20, 10), [40, 80, 160, 255]);
        img
    }

    #[test]
    fn lossless_kinds_round_trip_exactly() {
        let img = sample();
        for kind in CodecKind::ALL {
            let codec = AnyCodec::new(kind);
            let enc = codec.encode(&img);
            let back = codec.decode(&enc).unwrap();
            if kind.lossless() {
                assert_eq!(back, img, "{kind:?}");
            } else {
                assert!(img.mean_abs_error(&back) < 12.0, "{kind:?}");
            }
        }
    }

    #[test]
    fn registry_defaults() {
        let reg = CodecRegistry::default();
        assert_eq!(reg.get(default_pt::PNG).unwrap().kind(), CodecKind::Png);
        assert_eq!(reg.pt_for(CodecKind::Dct), Some(default_pt::DCT));
        assert!(reg.get(42).is_none());
        assert_eq!(reg.list().count(), 4);
    }

    #[test]
    fn registry_replace() {
        let mut reg = CodecRegistry::empty();
        reg.register(100, AnyCodec::new(CodecKind::Png));
        reg.register(100, AnyCodec::new(CodecKind::Rle));
        assert_eq!(reg.get(100).unwrap().kind(), CodecKind::Rle);
        assert_eq!(reg.list().count(), 1);
    }

    #[test]
    fn encoding_names_round_trip() {
        for kind in CodecKind::ALL {
            assert_eq!(
                CodecKind::from_encoding_name(kind.encoding_name()),
                Some(kind)
            );
        }
        assert_eq!(CodecKind::from_encoding_name("jpeg"), Some(CodecKind::Dct));
        assert_eq!(CodecKind::from_encoding_name("h264"), None);
    }

    #[test]
    fn raw_codec_header_checked() {
        let codec = AnyCodec::new(CodecKind::Raw);
        assert!(codec.decode(b"nope").is_err());
        assert!(codec
            .decode(b"ARAW\x00\x00\x00\x02\x00\x00\x00\x02xx")
            .is_err());
    }

    #[test]
    fn size_ordering_on_ui_content() {
        // On synthetic UI content: PNG < RLE < RAW (draft §4.2 rationale).
        let img = sample();
        let png = AnyCodec::new(CodecKind::Png).encode(&img).len();
        let rle = AnyCodec::new(CodecKind::Rle).encode(&img).len();
        let raw = AnyCodec::new(CodecKind::Raw).encode(&img).len();
        assert!(png < rle, "png {png} < rle {rle}");
        assert!(rle < raw, "rle {rle} < raw {raw}");
    }
}
