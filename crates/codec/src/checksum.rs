//! CRC-32 (ISO-HDLC, as used by PNG), Adler-32 (as used by zlib), and a
//! fast non-cryptographic 64-bit content hash (used by the tile-encode
//! cache to content-address identical pixel runs across frames).

/// CRC-32 lookup table for polynomial 0xEDB88320, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// Streaming CRC-32 (PNG variant: init all-ones, final XOR all-ones).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.state = table[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Streaming Adler-32 (RFC 1950 §8.2).
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

const ADLER_MOD: u32 = 65_521;

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Start a new Adler-32 computation.
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        // Process in chunks small enough that b cannot overflow before the
        // modulo (5552 is the standard bound from the zlib sources).
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// One-shot Adler-32 of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = Adler32::new();
    a.update(data);
    a.finish()
}

/// Multiplier for [`fast_hash64`]: the 64-bit golden-ratio constant.
const FH_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fast non-cryptographic 64-bit hash over `data`.
///
/// Consumes eight bytes per multiply-rotate round (an order of magnitude
/// faster than the byte-at-a-time CRC-32 above) and finishes with a
/// splitmix64-style avalanche so single-bit input changes diffuse across
/// the whole output. Length is folded into the seed, so a prefix and its
/// zero-padded extension hash differently. Suitable for content-addressed
/// caches and dedup tables; NOT for adversarial inputs or wire integrity
/// (use [`crc32`] there).
pub fn fast_hash64(data: &[u8]) -> u64 {
    let mut h = 0x517c_c1b7_2722_0a95u64 ^ (data.len() as u64).wrapping_mul(FH_K);
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ v).wrapping_mul(FH_K).rotate_left(27);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(buf))
            .wrapping_mul(FH_K)
            .rotate_left(27);
    }
    // splitmix64 finalizer.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_golden_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // PNG spec example: CRC of "IEND" chunk type with empty data.
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn adler32_golden_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b"123456789"), 0x091E_01DE);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 + 3) as u8).collect();
        let mut c = Crc32::new();
        let mut a = Adler32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
            a.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
        assert_eq!(a.finish(), adler32(&data));
    }

    #[test]
    fn fast_hash64_is_deterministic_and_length_aware() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
        assert_eq!(fast_hash64(&data), fast_hash64(&data));
        // A prefix must not collide with its zero-padded extension.
        let mut padded = data[..100].to_vec();
        padded.extend_from_slice(&[0u8; 8]);
        assert_ne!(fast_hash64(&data[..100]), fast_hash64(&padded));
        assert_ne!(fast_hash64(&[]), fast_hash64(&[0]));
    }

    #[test]
    fn fast_hash64_single_bit_flip_diffuses() {
        let a = vec![0x5au8; 1024];
        let mut b = a.clone();
        b[512] ^= 0x01;
        let (ha, hb) = (fast_hash64(&a), fast_hash64(&b));
        assert_ne!(ha, hb);
        // Avalanche sanity: a decent fraction of output bits flip.
        let flipped = (ha ^ hb).count_ones();
        assert!(flipped >= 16, "weak diffusion: {flipped} bits");
    }

    #[test]
    fn fast_hash64_no_trivial_collisions_on_tile_like_inputs() {
        // 256 distinct single-colour "tiles" must produce 256 distinct
        // hashes (the cache's common case: flat UI regions).
        let mut seen = std::collections::HashSet::new();
        for c in 0..=255u8 {
            let tile = vec![c; 64 * 64 * 4];
            assert!(seen.insert(fast_hash64(&tile)), "collision at {c}");
        }
    }

    #[test]
    fn adler_no_overflow_on_long_ff_runs() {
        let data = vec![0xffu8; 1 << 20];
        // Just checking it terminates and matches a two-chunk computation.
        let whole = adler32(&data);
        let mut st = Adler32::new();
        st.update(&data[..1 << 19]);
        st.update(&data[1 << 19..]);
        assert_eq!(st.finish(), whole);
    }
}
