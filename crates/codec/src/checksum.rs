//! CRC-32 (ISO-HDLC, as used by PNG) and Adler-32 (as used by zlib).

/// CRC-32 lookup table for polynomial 0xEDB88320, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// Streaming CRC-32 (PNG variant: init all-ones, final XOR all-ones).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &b in data {
            self.state = table[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Streaming Adler-32 (RFC 1950 §8.2).
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

const ADLER_MOD: u32 = 65_521;

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Start a new Adler-32 computation.
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        // Process in chunks small enough that b cannot overflow before the
        // modulo (5552 is the standard bound from the zlib sources).
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Finish and return the checksum.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// One-shot Adler-32 of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = Adler32::new();
    a.update(data);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_golden_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // PNG spec example: CRC of "IEND" chunk type with empty data.
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn adler32_golden_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b"123456789"), 0x091E_01DE);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 + 3) as u8).collect();
        let mut c = Crc32::new();
        let mut a = Adler32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
            a.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
        assert_eq!(a.finish(), adler32(&data));
    }

    #[test]
    fn adler_no_overflow_on_long_ff_runs() {
        let data = vec![0xffu8; 1 << 20];
        // Just checking it terminates and matches a two-chunk computation.
        let whole = adler32(&data);
        let mut st = Adler32::new();
        st.update(&data[..1 << 19]);
        st.update(&data[1 << 19..]);
        assert_eq!(st.finish(), whole);
    }
}
