//! Content classification: synthetic (UI/text) vs photographic.
//!
//! Draft §4.2 says updates "can be encoded with PNG, JPEG, JPEG 2000,
//! Theora or other media types, *according to their characteristics*" —
//! lossless PNG for computer-generated regions, lossy coding for
//! photographic ones. This module supplies the decision heuristic: screen
//! content has few distinct colours and long flat runs; photographs have
//! dense small-amplitude gradients almost everywhere.

use std::collections::HashSet;

use crate::image::Image;

/// The two coding regimes of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentClass {
    /// Computer-generated: flat fills, text, hard edges → lossless PNG.
    Synthetic,
    /// Photographic/video: smooth gradients plus noise → lossy DCT.
    Photographic,
}

/// Classification with its evidence (exposed for tuning and tests).
#[derive(Debug, Clone, Copy)]
pub struct Classification {
    /// The verdict.
    pub class: ContentClass,
    /// Distinct sampled colours / sampled pixels, 0..=1.
    pub colour_ratio: f64,
    /// Fraction of sampled horizontal neighbour pairs with a small nonzero
    /// luma difference (1..=24) — the photographic-texture signature.
    pub texture_ratio: f64,
}

/// Sample budget: classification cost must stay negligible next to the
/// encode it steers.
const MAX_SAMPLES: u32 = 4096;

/// Classify an image region.
pub fn classify(img: &Image) -> Classification {
    let (w, h) = (img.width(), img.height());
    let total = (w as u64 * h as u64) as u32;
    let step = (total / MAX_SAMPLES).max(1);

    let mut colours: HashSet<[u8; 3]> = HashSet::new();
    let mut samples = 0u32;
    let mut textured = 0u32;
    let mut pairs = 0u32;
    let mut idx = 0u32;
    for y in 0..h {
        for x in 0..w {
            idx = idx.wrapping_add(1);
            if !idx.is_multiple_of(step) {
                continue;
            }
            let [r, g, b, _] = img.pixel(x, y).expect("in bounds");
            colours.insert([r, g, b]);
            samples += 1;
            if x + 1 < w {
                let [r2, g2, b2, _] = img.pixel(x + 1, y).expect("in bounds");
                let luma =
                    |r: u8, g: u8, b: u8| (r as i32 * 299 + g as i32 * 587 + b as i32 * 114) / 1000;
                let d = (luma(r, g, b) - luma(r2, g2, b2)).abs();
                pairs += 1;
                if (1..=24).contains(&d) {
                    textured += 1;
                }
            }
        }
    }
    let colour_ratio = if samples == 0 {
        0.0
    } else {
        colours.len() as f64 / samples as f64
    };
    let texture_ratio = if pairs == 0 {
        0.0
    } else {
        textured as f64 / pairs as f64
    };
    // Photographs (and video frames) are covered in small-amplitude
    // gradients: measured texture ratios sit above 0.9 for noisy content
    // and stay below 0.01 for flat UI and hard-edged text, whose luma
    // steps are either zero (flat runs) or large (glyph edges). Grayscale
    // photographs keep the texture signature even with few distinct
    // colours, so texture alone decides; the colour ratio is reported as
    // supporting evidence.
    let photographic = texture_ratio > 0.35;
    Classification {
        class: if photographic {
            ContentClass::Photographic
        } else {
            ContentClass::Synthetic
        },
        colour_ratio,
        texture_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Rect;

    fn photo(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h).unwrap();
        let mut state = 0x1234_5678u32;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let noise = ((state >> 24) % 16) as i32 - 8;
                let base = 100 + (x as i32 * 60 / w as i32) + (y as i32 * 40 / h as i32);
                let v = (base + noise).clamp(0, 255) as u8;
                img.set_pixel(x, y, [v, v.wrapping_add(10), v.wrapping_sub(10), 255]);
            }
        }
        img
    }

    fn ui(w: u32, h: u32) -> Image {
        let mut img = Image::filled(w, h, [240, 240, 240, 255]).unwrap();
        img.fill_rect(Rect::new(0, 0, w, 20), [50, 80, 140, 255]);
        for i in 0..20 {
            img.fill_rect(
                Rect::new((i * 13) % w, 30 + (i * 7) % (h - 32), 8, 2),
                [20, 20, 20, 255],
            );
        }
        img
    }

    #[test]
    fn photo_classified_photographic() {
        let c = classify(&photo(160, 120));
        assert_eq!(c.class, ContentClass::Photographic, "{c:?}");
    }

    #[test]
    fn ui_classified_synthetic() {
        let c = classify(&ui(160, 120));
        assert_eq!(c.class, ContentClass::Synthetic, "{c:?}");
    }

    #[test]
    fn flat_fill_synthetic() {
        let img = Image::filled(64, 64, [128, 64, 32, 255]).unwrap();
        assert_eq!(classify(&img).class, ContentClass::Synthetic);
    }

    #[test]
    fn text_page_synthetic() {
        // Hard black-on-white edges: large steps, few colours.
        let mut img = Image::filled(200, 100, [255, 255, 255, 255]).unwrap();
        for i in 0..400u32 {
            let x = (i * 7) % 200;
            let y = (i * 13) % 100;
            img.set_pixel(x, y, [0, 0, 0, 255]);
        }
        assert_eq!(classify(&img).class, ContentClass::Synthetic);
    }

    #[test]
    fn tiny_regions_never_panic() {
        for (w, h) in [(1u32, 1u32), (2, 1), (1, 2), (3, 3)] {
            let _ = classify(&Image::filled(w, h, [9, 9, 9, 255]).unwrap());
        }
    }

    #[test]
    fn smooth_gradient_without_noise_is_borderline_consistent() {
        // A pure gradient: lots of distinct colours, lots of small steps —
        // the DCT side wins, which is also the cheaper encoding for it.
        let mut img = Image::new(128, 128).unwrap();
        for y in 0..128 {
            for x in 0..128 {
                img.set_pixel(x, y, [(x * 2) as u8, (y * 2) as u8, ((x + y) as u8), 255]);
            }
        }
        let c = classify(&img);
        assert_eq!(c.class, ContentClass::Photographic, "{c:?}");
    }
}
