//! The RGBA framebuffer image type shared across the workspace.

use crate::{Error, Result};

/// Bytes per pixel (always RGBA8 internally).
pub const BYTES_PER_PIXEL: usize = 4;

/// Hard cap on image dimensions; protects decoders from hostile headers.
pub const MAX_DIMENSION: u32 = 16_384;

/// A rectangle in pixel coordinates. Follows the draft's convention (§4.1):
/// origin at the upper-left, units in pixels, fields unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (x of the upper-left corner).
    pub left: u32,
    /// Top edge (y of the upper-left corner).
    pub top: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Rect {
    /// Construct a rectangle.
    pub fn new(left: u32, top: u32, width: u32, height: u32) -> Self {
        Rect {
            left,
            top,
            width,
            height,
        }
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> u32 {
        self.left.saturating_add(self.width)
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> u32 {
        self.top.saturating_add(self.height)
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether this rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Whether the point (x, y) lies inside.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.left && x < self.right() && y >= self.top && y < self.bottom()
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.left >= self.left
                && other.top >= self.top
                && other.right() <= self.right()
                && other.bottom() <= self.bottom())
    }

    /// Intersection with another rectangle, if non-empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let left = self.left.max(other.left);
        let top = self.top.max(other.top);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if left < right && top < bottom {
            Some(Rect::new(left, top, right - left, bottom - top))
        } else {
            None
        }
    }

    /// Whether the two rectangles overlap.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let left = self.left.min(other.left);
        let top = self.top.min(other.top);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        Rect::new(left, top, right - left, bottom - top)
    }

    /// Translate by a signed offset, saturating at zero.
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        let left = (self.left as i64 + dx).max(0) as u32;
        let top = (self.top as i64 + dy).max(0) as u32;
        Rect::new(left, top, self.width, self.height)
    }
}

/// An RGBA8 image with row-major storage.
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Image")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("bytes", &self.data.len())
            .finish()
    }
}

impl Image {
    /// Create an image filled with opaque black.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        Self::filled(width, height, [0, 0, 0, 255])
    }

    /// Create an image filled with `rgba`.
    pub fn filled(width: u32, height: u32, rgba: [u8; 4]) -> Result<Self> {
        check_dims(width, height)?;
        let pixels = width as usize * height as usize;
        let mut data = Vec::with_capacity(pixels * BYTES_PER_PIXEL);
        for _ in 0..pixels {
            data.extend_from_slice(&rgba);
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Wrap existing RGBA data (must be exactly `width * height * 4` bytes).
    pub fn from_rgba(width: u32, height: u32, data: Vec<u8>) -> Result<Self> {
        check_dims(width, height)?;
        let expected = width as usize * height as usize * BYTES_PER_PIXEL;
        if data.len() != expected {
            return Err(Error::SizeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The image's bounds as a rectangle at the origin.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    /// Raw RGBA bytes, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Consume into raw RGBA bytes.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    /// One row of pixels.
    pub fn row(&self, y: u32) -> &[u8] {
        let stride = self.width as usize * BYTES_PER_PIXEL;
        let start = y as usize * stride;
        &self.data[start..start + stride]
    }

    /// Get a pixel; `None` outside bounds.
    pub fn pixel(&self, x: u32, y: u32) -> Option<[u8; 4]> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let idx = (y as usize * self.width as usize + x as usize) * BYTES_PER_PIXEL;
        Some([
            self.data[idx],
            self.data[idx + 1],
            self.data[idx + 2],
            self.data[idx + 3],
        ])
    }

    /// Set a pixel; out-of-bounds writes are ignored.
    pub fn set_pixel(&mut self, x: u32, y: u32, rgba: [u8; 4]) {
        if x >= self.width || y >= self.height {
            return;
        }
        let idx = (y as usize * self.width as usize + x as usize) * BYTES_PER_PIXEL;
        self.data[idx..idx + 4].copy_from_slice(&rgba);
    }

    /// Fill a rectangle (clipped to bounds) with a colour.
    pub fn fill_rect(&mut self, rect: Rect, rgba: [u8; 4]) {
        let Some(r) = rect.intersect(&self.bounds()) else {
            return;
        };
        for y in r.top..r.bottom() {
            let row_start = (y as usize * self.width as usize + r.left as usize) * BYTES_PER_PIXEL;
            for px in 0..r.width as usize {
                let idx = row_start + px * BYTES_PER_PIXEL;
                self.data[idx..idx + 4].copy_from_slice(&rgba);
            }
        }
    }

    /// Extract a sub-image (clipped to bounds; empty intersection yields a
    /// 1×1 transparent image error — callers should check first).
    pub fn crop(&self, rect: Rect) -> Result<Image> {
        let r = rect.intersect(&self.bounds()).ok_or(Error::Invalid {
            what: "crop",
            detail: "rectangle outside image",
        })?;
        let mut data = Vec::with_capacity(r.width as usize * r.height as usize * BYTES_PER_PIXEL);
        for y in r.top..r.bottom() {
            let start = (y as usize * self.width as usize + r.left as usize) * BYTES_PER_PIXEL;
            data.extend_from_slice(&self.data[start..start + r.width as usize * BYTES_PER_PIXEL]);
        }
        Image::from_rgba(r.width, r.height, data)
    }

    /// Blit `src` so its upper-left corner lands at (`left`, `top`),
    /// clipping to this image's bounds.
    pub fn blit(&mut self, src: &Image, left: u32, top: u32) {
        let dst_rect = Rect::new(left, top, src.width, src.height);
        let Some(clipped) = dst_rect.intersect(&self.bounds()) else {
            return;
        };
        let src_x0 = clipped.left - left;
        let src_y0 = clipped.top - top;
        let row_bytes = clipped.width as usize * BYTES_PER_PIXEL;
        for dy in 0..clipped.height {
            let sy = (src_y0 + dy) as usize;
            let src_start = (sy * src.width as usize + src_x0 as usize) * BYTES_PER_PIXEL;
            let dyy = (clipped.top + dy) as usize;
            let dst_start = (dyy * self.width as usize + clipped.left as usize) * BYTES_PER_PIXEL;
            self.data[dst_start..dst_start + row_bytes]
                .copy_from_slice(&src.data[src_start..src_start + row_bytes]);
        }
    }

    /// Move a rectangle within the image to a new position — the operation
    /// behind the draft's `MoveRectangle` message (§5.2.3). "Source and
    /// destination rectangles may overlap", so the copy direction is chosen
    /// to be overlap-safe.
    pub fn move_rect(&mut self, src: Rect, dst_left: u32, dst_top: u32) {
        let Some(src) = src.intersect(&self.bounds()) else {
            return;
        };
        let dst = Rect::new(dst_left, dst_top, src.width, src.height);
        let Some(dst_clipped) = dst.intersect(&self.bounds()) else {
            return;
        };
        // Clip source to what the destination can hold.
        let w = dst_clipped.width.min(src.width) as usize;
        let h = dst_clipped.height.min(src.height);
        if w == 0 || h == 0 {
            return;
        }
        let row_bytes = w * BYTES_PER_PIXEL;
        let stride = self.width as usize * BYTES_PER_PIXEL;
        let copy_row = |data: &mut Vec<u8>, sy: usize, dy: usize, sx: usize, dx: usize| {
            let s = sy * stride + sx * BYTES_PER_PIXEL;
            let d = dy * stride + dx * BYTES_PER_PIXEL;
            data.copy_within(s..s + row_bytes, d);
        };
        if dst_clipped.top <= src.top {
            // Moving up (or same row moving left/right): top-to-bottom.
            for i in 0..h {
                copy_row(
                    &mut self.data,
                    (src.top + i) as usize,
                    (dst_clipped.top + i) as usize,
                    src.left as usize,
                    dst_clipped.left as usize,
                );
            }
        } else {
            // Moving down: bottom-to-top so we never read overwritten rows.
            for i in (0..h).rev() {
                copy_row(
                    &mut self.data,
                    (src.top + i) as usize,
                    (dst_clipped.top + i) as usize,
                    src.left as usize,
                    dst_clipped.left as usize,
                );
            }
        }
        // Horizontal overlap on the same rows: copy_within handles
        // overlapping ranges (it is memmove-like), so rows are safe.
    }

    /// Rectangles (as a coarse per-row-band list) where `self` and `other`
    /// differ. Both images must have identical dimensions.
    pub fn diff_rows(&self, other: &Image) -> Vec<Rect> {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let mut out: Vec<Rect> = Vec::new();
        for y in 0..self.height {
            if self.row(y) != other.row(y) {
                // Find the changed span within the row.
                let a = self.row(y);
                let b = other.row(y);
                let first = a
                    .chunks_exact(4)
                    .zip(b.chunks_exact(4))
                    .position(|(p, q)| p != q)
                    .unwrap_or(0) as u32;
                let last = (a.chunks_exact(4).count()
                    - a.chunks_exact(4)
                        .rev()
                        .zip(b.chunks_exact(4).rev())
                        .position(|(p, q)| p != q)
                        .unwrap_or(0)) as u32;
                let row_rect = Rect::new(first, y, last.saturating_sub(first).max(1), 1);
                // Merge with previous band when horizontally equal and
                // vertically adjacent.
                if let Some(prev) = out.last_mut() {
                    if prev.left == row_rect.left
                        && prev.width == row_rect.width
                        && prev.bottom() == y
                    {
                        prev.height += 1;
                        continue;
                    }
                }
                out.push(row_rect);
            }
        }
        out
    }

    /// Serialize as a binary PPM (P6) — the universally readable snapshot
    /// format used by the demo tools to dump what a participant sees.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.width as usize * self.height as usize * 3);
        for px in self.data.chunks_exact(4) {
            out.extend_from_slice(&px[..3]);
        }
        out
    }

    /// Nearest-neighbour scale to a new size (participant-side scaling,
    /// draft §4.2: "participant-side scaling can be used to optimize
    /// transmission of data to participants with a small screen").
    pub fn scale_to(&self, width: u32, height: u32) -> Result<Image> {
        check_dims(width, height)?;
        let mut out = Image::new(width, height)?;
        for y in 0..height {
            let sy = (y as u64 * self.height as u64 / height as u64) as u32;
            for x in 0..width {
                let sx = (x as u64 * self.width as u64 / width as u64) as u32;
                out.set_pixel(x, y, self.pixel(sx, sy).expect("source in bounds"));
            }
        }
        Ok(out)
    }

    /// Mean absolute per-channel error vs another image of the same size
    /// (used to validate lossy codecs).
    pub fn mean_abs_error(&self, other: &Image) -> f64 {
        assert_eq!(self.data.len(), other.data.len());
        if self.data.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a as i32 - *b as i32).unsigned_abs() as u64)
            .sum();
        total as f64 / self.data.len() as f64
    }
}

fn check_dims(width: u32, height: u32) -> Result<()> {
    if width == 0 || height == 0 || width > MAX_DIMENSION || height > MAX_DIMENSION {
        return Err(Error::BadDimensions { width, height });
    }
    // Guard total allocation (≤ 16k × 16k × 4 = 1 GiB would be absurd for a
    // screen update; cap at 256 MiB).
    let bytes = width as u64 * height as u64 * BYTES_PER_PIXEL as u64;
    if bytes > 256 * 1024 * 1024 {
        return Err(Error::BadDimensions { width, height });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(10, 20, 30, 40);
        assert_eq!(r.right(), 40);
        assert_eq!(r.bottom(), 60);
        assert_eq!(r.area(), 1200);
        assert!(r.contains(10, 20));
        assert!(r.contains(39, 59));
        assert!(!r.contains(40, 20));
        assert!(!r.contains(10, 60));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        let c = Rect::new(20, 20, 5, 5);
        assert_eq!(a.intersect(&c), None);
        assert!(!a.intersects(&c));
        // Touching edges do not intersect.
        let d = Rect::new(10, 0, 5, 5);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn rect_contains_rect() {
        let outer = Rect::new(0, 0, 100, 100);
        assert!(outer.contains_rect(&Rect::new(10, 10, 50, 50)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(60, 60, 50, 50)));
        assert!(
            outer.contains_rect(&Rect::new(500, 500, 0, 0)),
            "empty rect always contained"
        );
    }

    #[test]
    fn image_construction_and_pixels() {
        let mut img = Image::filled(4, 3, [1, 2, 3, 4]).unwrap();
        assert_eq!(img.pixel(0, 0), Some([1, 2, 3, 4]));
        assert_eq!(img.pixel(4, 0), None);
        img.set_pixel(2, 1, [9, 9, 9, 9]);
        assert_eq!(img.pixel(2, 1), Some([9, 9, 9, 9]));
        // Out-of-bounds set is a no-op.
        img.set_pixel(100, 100, [0; 4]);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(Image::new(0, 5).is_err());
        assert!(Image::new(5, 0).is_err());
        assert!(Image::new(MAX_DIMENSION + 1, 1).is_err());
    }

    #[test]
    fn from_rgba_validates_len() {
        assert!(Image::from_rgba(2, 2, vec![0; 16]).is_ok());
        assert!(matches!(
            Image::from_rgba(2, 2, vec![0; 15]),
            Err(Error::SizeMismatch {
                expected: 16,
                actual: 15
            })
        ));
    }

    #[test]
    fn crop_and_blit_round_trip() {
        let mut img = Image::new(10, 10).unwrap();
        img.fill_rect(Rect::new(2, 3, 4, 5), [100, 150, 200, 255]);
        let cropped = img.crop(Rect::new(2, 3, 4, 5)).unwrap();
        assert_eq!(cropped.width(), 4);
        assert_eq!(cropped.height(), 5);
        assert_eq!(cropped.pixel(0, 0), Some([100, 150, 200, 255]));

        let mut dst = Image::new(10, 10).unwrap();
        dst.blit(&cropped, 2, 3);
        assert_eq!(dst.data(), img.data());
    }

    #[test]
    fn blit_clips_at_edges() {
        let mut img = Image::new(4, 4).unwrap();
        let patch = Image::filled(3, 3, [255, 0, 0, 255]).unwrap();
        img.blit(&patch, 2, 2); // only 2x2 lands inside
        assert_eq!(img.pixel(2, 2), Some([255, 0, 0, 255]));
        assert_eq!(img.pixel(3, 3), Some([255, 0, 0, 255]));
        assert_eq!(img.pixel(1, 1), Some([0, 0, 0, 255]));
        // Fully outside: no-op, no panic.
        img.blit(&patch, 100, 100);
    }

    #[test]
    fn move_rect_non_overlapping() {
        let mut img = Image::new(10, 10).unwrap();
        img.fill_rect(Rect::new(0, 0, 2, 2), [7, 7, 7, 255]);
        img.move_rect(Rect::new(0, 0, 2, 2), 5, 5);
        assert_eq!(img.pixel(5, 5), Some([7, 7, 7, 255]));
        assert_eq!(img.pixel(6, 6), Some([7, 7, 7, 255]));
        // Source pixels remain (move_rect copies; clearing is the caller's
        // business, matching how scroll updates work).
        assert_eq!(img.pixel(0, 0), Some([7, 7, 7, 255]));
    }

    #[test]
    fn move_rect_overlapping_down() {
        // A vertical gradient scrolled down by 1 must not smear.
        let mut img = Image::new(1, 5).unwrap();
        for y in 0..5 {
            img.set_pixel(0, y, [y as u8, 0, 0, 255]);
        }
        img.move_rect(Rect::new(0, 0, 1, 4), 0, 1);
        for y in 1..5u32 {
            assert_eq!(img.pixel(0, y), Some([(y - 1) as u8, 0, 0, 255]), "row {y}");
        }
    }

    #[test]
    fn move_rect_overlapping_up() {
        let mut img = Image::new(1, 5).unwrap();
        for y in 0..5 {
            img.set_pixel(0, y, [y as u8, 0, 0, 255]);
        }
        img.move_rect(Rect::new(0, 1, 1, 4), 0, 0);
        for y in 0..4u32 {
            assert_eq!(img.pixel(0, y), Some([(y + 1) as u8, 0, 0, 255]), "row {y}");
        }
    }

    #[test]
    fn move_rect_overlapping_horizontal() {
        let mut img = Image::new(5, 1).unwrap();
        for x in 0..5 {
            img.set_pixel(x, 0, [x as u8, 0, 0, 255]);
        }
        img.move_rect(Rect::new(0, 0, 4, 1), 1, 0);
        for x in 1..5u32 {
            assert_eq!(img.pixel(x, 0), Some([(x - 1) as u8, 0, 0, 255]), "col {x}");
        }
    }

    #[test]
    fn diff_rows_finds_change() {
        let a = Image::new(8, 8).unwrap();
        let mut b = a.clone();
        b.fill_rect(Rect::new(2, 3, 3, 2), [1, 1, 1, 255]);
        let diffs = a.diff_rows(&b);
        assert_eq!(diffs, vec![Rect::new(2, 3, 3, 2)]);
        assert!(a.diff_rows(&a).is_empty());
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::filled(4, 3, [10, 20, 30, 255]).unwrap();
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
        assert_eq!(&ppm[11..14], &[10, 20, 30]);
    }

    #[test]
    fn scale_to_preserves_solid_regions() {
        let mut img = Image::filled(40, 40, [10, 20, 30, 255]).unwrap();
        img.fill_rect(Rect::new(0, 0, 20, 40), [200, 0, 0, 255]);
        let small = img.scale_to(20, 20).unwrap();
        assert_eq!(
            small.pixel(4, 10),
            Some([200, 0, 0, 255]),
            "left half keeps its colour"
        );
        assert_eq!(
            small.pixel(15, 10),
            Some([10, 20, 30, 255]),
            "right half too"
        );
        // Identity scale is exact.
        assert_eq!(img.scale_to(40, 40).unwrap(), img);
        // Upscale keeps dimensions.
        let big = img.scale_to(80, 60).unwrap();
        assert_eq!((big.width(), big.height()), (80, 60));
        assert!(img.scale_to(0, 10).is_err());
    }

    #[test]
    fn mean_abs_error_zero_for_identical() {
        let a = Image::filled(3, 3, [10, 20, 30, 255]).unwrap();
        assert_eq!(a.mean_abs_error(&a), 0.0);
        let b = Image::filled(3, 3, [11, 20, 30, 255]).unwrap();
        assert!(a.mean_abs_error(&b) > 0.0);
    }
}
