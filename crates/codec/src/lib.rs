//! Image payload codecs for the application/desktop sharing protocol.
//!
//! The draft (§4.2) lets a `RegionUpdate` carry "PNG, JPEG, JPEG 2000, Theora
//! or other media types", and mandates that "All AH and participant software
//! implementations MUST support PNG images". This crate provides:
//!
//! * [`image::Image`] — the RGBA framebuffer type shared by the whole
//!   workspace (blitting, cropping, rectangle moves, comparison).
//! * [`deflate`] — a from-scratch DEFLATE (RFC 1951) implementation: full
//!   inflate, and deflate with stored, fixed-Huffman and dynamic-Huffman
//!   blocks over an LZ77 hash-chain matcher.
//! * [`zlib`] — the RFC 1950 wrapper (header + Adler-32) used by PNG.
//! * [`png`] — PNG (RFC 2083-era subset: 8-bit RGB/RGBA, all five scanline
//!   filters with a heuristic chooser) standing in for
//!   `draft-boyaci-avt-png`.
//! * [`dct`] — a quality-parameterised 8×8 block-DCT lossy codec standing in
//!   for JPEG: same architecture (colour transform, DCT, quantisation,
//!   zigzag, entropy coding), small enough to audit.
//! * [`rle`] — per-row run-length encoding of raw pixels, the VNC-style
//!   baseline codec.
//! * [`codec`] — the [`codec::Codec`] trait, concrete codec implementations
//!   and the RTP payload-type registry used in SDP negotiation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod classify;
pub mod codec;
pub mod dct;
pub mod deflate;
pub mod error;
pub mod image;
pub mod png;
pub mod rle;
pub mod zlib;

pub use classify::{classify, ContentClass};
pub use codec::{Codec, CodecKind, CodecRegistry};
pub use error::Error;
pub use image::{Image, Rect};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, Error>;
