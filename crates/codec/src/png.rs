//! PNG encoder/decoder — the mandatory payload format of the draft
//! (`draft-boyaci-avt-png`: "All AH and participant software implementations
//! MUST support PNG images").
//!
//! Supported subset: 8-bit truecolour (RGB, colour type 2) and truecolour
//! with alpha (RGBA, colour type 6), non-interlaced, with all five scanline
//! filters and a per-row minimum-sum-of-absolute-differences filter chooser.
//! This covers everything a screen-sharing payload needs; palette and
//! interlaced images are intentionally out of scope and rejected cleanly.

use crate::checksum::Crc32;
use crate::deflate::Level;
use crate::image::{Image, MAX_DIMENSION};
use crate::zlib;
use crate::{Error, Result};

/// The 8-byte PNG signature.
pub const SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1a, b'\n'];

/// Pixel layout written by the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PngColor {
    /// 8-bit RGB (colour type 2) — smaller when alpha is irrelevant, which
    /// is the common case for screen content.
    Rgb,
    /// 8-bit RGBA (colour type 6).
    Rgba,
}

impl PngColor {
    fn color_type(self) -> u8 {
        match self {
            PngColor::Rgb => 2,
            PngColor::Rgba => 6,
        }
    }

    fn bytes_per_pixel(self) -> usize {
        match self {
            PngColor::Rgb => 3,
            PngColor::Rgba => 4,
        }
    }
}

/// Encoder options.
#[derive(Debug, Clone, Copy)]
pub struct PngOptions {
    /// Pixel layout.
    pub color: PngColor,
    /// DEFLATE effort.
    pub level: Level,
}

impl Default for PngOptions {
    fn default() -> Self {
        PngOptions {
            color: PngColor::Rgb,
            level: Level::Default,
        }
    }
}

/// Encode `img` as a PNG file.
pub fn encode(img: &Image, opts: PngOptions) -> Vec<u8> {
    let bpp = opts.color.bytes_per_pixel();
    let w = img.width() as usize;
    let h = img.height() as usize;

    // Extract rows in the target layout.
    let mut raw = Vec::with_capacity(w * h * bpp);
    for y in 0..img.height() {
        let row = img.row(y);
        match opts.color {
            PngColor::Rgba => raw.extend_from_slice(row),
            PngColor::Rgb => {
                for px in row.chunks_exact(4) {
                    raw.extend_from_slice(&px[..3]);
                }
            }
        }
    }

    // Filter each scanline, choosing the filter with the smallest sum of
    // absolute differences (the standard heuristic). Two row buffers swap
    // roles so no candidate is ever copied.
    let stride = w * bpp;
    let mut filtered = Vec::with_capacity((stride + 1) * h);
    let zero_row = vec![0u8; stride];
    let mut scratch = vec![0u8; stride];
    let mut best = vec![0u8; stride];
    for y in 0..h {
        let cur = &raw[y * stride..(y + 1) * stride];
        let prev: &[u8] = if y == 0 {
            &zero_row
        } else {
            &raw[(y - 1) * stride..y * stride]
        };
        let mut best_filter = 0u8;
        let mut best_score = u64::MAX;
        for f in 0..5u8 {
            apply_filter(f, cur, prev, bpp, &mut scratch);
            let score: u64 = scratch
                .iter()
                .map(|&b| (b as i8).unsigned_abs() as u64)
                .sum();
            if score < best_score {
                best_score = score;
                best_filter = f;
                std::mem::swap(&mut scratch, &mut best);
            }
        }
        filtered.push(best_filter);
        filtered.extend_from_slice(&best);
    }

    let idat = zlib::compress(&filtered, opts.level);

    let mut out = Vec::with_capacity(idat.len() + 64);
    out.extend_from_slice(&SIGNATURE);
    // IHDR
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&img.width().to_be_bytes());
    ihdr.extend_from_slice(&img.height().to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(opts.color.color_type());
    ihdr.push(0); // compression: deflate
    ihdr.push(0); // filter method 0
    ihdr.push(0); // no interlace
    write_chunk(&mut out, b"IHDR", &ihdr);
    write_chunk(&mut out, b"IDAT", &idat);
    write_chunk(&mut out, b"IEND", &[]);
    out
}

/// Decode a PNG file into an RGBA [`Image`].
pub fn decode(data: &[u8]) -> Result<Image> {
    if data.len() < SIGNATURE.len() || data[..8] != SIGNATURE {
        return Err(Error::Invalid {
            what: "PNG",
            detail: "bad signature",
        });
    }
    let mut off = 8;
    let mut header: Option<(u32, u32, PngColor)> = None;
    let mut idat: Vec<u8> = Vec::new();
    let mut seen_iend = false;
    while off < data.len() {
        let (kind, body, next) = read_chunk(data, off)?;
        off = next;
        match &kind {
            b"IHDR" => {
                if body.len() != 13 {
                    return Err(Error::Invalid {
                        what: "IHDR",
                        detail: "length != 13",
                    });
                }
                let w = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
                let h = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
                if w == 0 || h == 0 || w > MAX_DIMENSION || h > MAX_DIMENSION {
                    return Err(Error::BadDimensions {
                        width: w,
                        height: h,
                    });
                }
                if body[8] != 8 {
                    return Err(Error::Unsupported("PNG bit depth != 8"));
                }
                let color = match body[9] {
                    2 => PngColor::Rgb,
                    6 => PngColor::Rgba,
                    _ => return Err(Error::Unsupported("PNG colour type")),
                };
                if body[10] != 0 || body[11] != 0 {
                    return Err(Error::Unsupported("PNG compression/filter method"));
                }
                if body[12] != 0 {
                    return Err(Error::Unsupported("interlaced PNG"));
                }
                header = Some((w, h, color));
            }
            b"IDAT" => idat.extend_from_slice(body),
            b"IEND" => {
                seen_iend = true;
                break;
            }
            _ => {
                // Ancillary chunk: ignore. Critical unknown chunks
                // (uppercase first letter) must be rejected.
                if kind[0].is_ascii_uppercase() {
                    return Err(Error::Unsupported("unknown critical PNG chunk"));
                }
            }
        }
    }
    let (w, h, color) = header.ok_or(Error::Invalid {
        what: "PNG",
        detail: "missing IHDR",
    })?;
    if !seen_iend {
        return Err(Error::Truncated("PNG (no IEND)"));
    }
    let bpp = color.bytes_per_pixel();
    let stride = w as usize * bpp;
    let expected = (stride + 1) * h as usize;
    let filtered = zlib::decompress(&idat, expected + 1)?;
    if filtered.len() != expected {
        return Err(Error::SizeMismatch {
            expected,
            actual: filtered.len(),
        });
    }

    // Unfilter in place, row by row.
    let mut raw = vec![0u8; stride * h as usize];
    for y in 0..h as usize {
        let filter = filtered[y * (stride + 1)];
        let src = &filtered[y * (stride + 1) + 1..(y + 1) * (stride + 1)];
        let (done, cur) = raw.split_at_mut(y * stride);
        let prev: &[u8] = if y == 0 {
            &[]
        } else {
            &done[(y - 1) * stride..]
        };
        let cur = &mut cur[..stride];
        unfilter(filter, src, prev, bpp, cur)?;
    }

    // Convert to RGBA.
    let rgba = match color {
        PngColor::Rgba => raw,
        PngColor::Rgb => {
            let mut out = Vec::with_capacity(w as usize * h as usize * 4);
            for px in raw.chunks_exact(3) {
                out.extend_from_slice(px);
                out.push(255);
            }
            out
        }
    };
    Image::from_rgba(w, h, rgba)
}

fn write_chunk(out: &mut Vec<u8>, kind: &[u8; 4], body: &[u8]) {
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(body);
    let mut crc = Crc32::new();
    crc.update(kind);
    crc.update(body);
    out.extend_from_slice(&crc.finish().to_be_bytes());
}

fn read_chunk(data: &[u8], off: usize) -> Result<([u8; 4], &[u8], usize)> {
    if data.len() < off + 12 {
        return Err(Error::Truncated("PNG chunk"));
    }
    let len = u32::from_be_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]) as usize;
    if len > 1 << 30 || data.len() < off + 12 + len {
        return Err(Error::Truncated("PNG chunk body"));
    }
    let kind: [u8; 4] = [data[off + 4], data[off + 5], data[off + 6], data[off + 7]];
    let body = &data[off + 8..off + 8 + len];
    let stored = u32::from_be_bytes([
        data[off + 8 + len],
        data[off + 9 + len],
        data[off + 10 + len],
        data[off + 11 + len],
    ]);
    let mut crc = Crc32::new();
    crc.update(&kind);
    crc.update(body);
    if crc.finish() != stored {
        return Err(Error::ChecksumMismatch("PNG chunk CRC"));
    }
    Ok((kind, body, off + 12 + len))
}

/// Paeth predictor (PNG spec §9.4).
fn paeth(a: u8, b: u8, c: u8) -> u8 {
    let p = a as i32 + b as i32 - c as i32;
    let pa = (p - a as i32).abs();
    let pb = (p - b as i32).abs();
    let pc = (p - c as i32).abs();
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

/// Apply filter `f` to `cur` (with `prev` the unfiltered previous row),
/// writing into `out`. Dispatches to per-filter slice passes — None/Sub/
/// Up/Average have no loop-carried output dependency and autovectorise;
/// Paeth runs per-bpp so the predictor's neighbour loads stay in
/// registers. Output is byte-identical to [`apply_filter_generic`]
/// (proptest-pinned below).
fn apply_filter(f: u8, cur: &[u8], prev: &[u8], bpp: usize, out: &mut [u8]) {
    let n = cur.len().min(bpp);
    match f {
        0 => out.copy_from_slice(cur),
        1 => {
            out[..n].copy_from_slice(&cur[..n]);
            for ((o, &x), &a) in out[n..].iter_mut().zip(&cur[n..]).zip(cur.iter()) {
                *o = x.wrapping_sub(a);
            }
        }
        2 => {
            for ((o, &x), &b) in out.iter_mut().zip(cur).zip(prev) {
                *o = x.wrapping_sub(b);
            }
        }
        3 => {
            // Head: a = 0, so the predictor is b/2.
            for i in 0..n {
                out[i] = cur[i].wrapping_sub(prev[i] / 2);
            }
            for i in bpp..cur.len() {
                let p = ((cur[i - bpp] as u16 + prev[i] as u16) / 2) as u8;
                out[i] = cur[i].wrapping_sub(p);
            }
        }
        _ => {
            // Head: a = c = 0 and paeth(0, b, 0) = b.
            for i in 0..n {
                out[i] = cur[i].wrapping_sub(prev[i]);
            }
            match bpp {
                3 => apply_paeth_tail::<3>(cur, prev, out),
                4 => apply_paeth_tail::<4>(cur, prev, out),
                _ => apply_paeth_tail_dyn(cur, prev, bpp, out),
            }
        }
    }
}

/// Paeth apply for bytes past the first pixel, with compile-time bpp.
#[inline]
fn apply_paeth_tail<const N: usize>(cur: &[u8], prev: &[u8], out: &mut [u8]) {
    for i in N..cur.len() {
        out[i] = cur[i].wrapping_sub(paeth(cur[i - N], prev[i], prev[i - N]));
    }
}

fn apply_paeth_tail_dyn(cur: &[u8], prev: &[u8], bpp: usize, out: &mut [u8]) {
    for i in bpp..cur.len() {
        out[i] = cur[i].wrapping_sub(paeth(cur[i - bpp], prev[i], prev[i - bpp]));
    }
}

/// The original byte-at-a-time filter loop, kept as the semantic reference
/// the specialised passes are proptest-checked against.
#[cfg(test)]
fn apply_filter_generic(f: u8, cur: &[u8], prev: &[u8], bpp: usize, out: &mut [u8]) {
    for i in 0..cur.len() {
        let x = cur[i];
        let a = if i >= bpp { cur[i - bpp] } else { 0 };
        let b = prev[i];
        let c = if i >= bpp { prev[i - bpp] } else { 0 };
        out[i] = match f {
            0 => x,
            1 => x.wrapping_sub(a),
            2 => x.wrapping_sub(b),
            3 => x.wrapping_sub(((a as u16 + b as u16) / 2) as u8),
            _ => x.wrapping_sub(paeth(a, b, c)),
        };
    }
}

/// Reverse filter `f`, writing the reconstructed row into `cur`. First-row
/// calls pass an empty `prev`; each filter then degenerates to a simpler
/// pass (Up → copy, Average → a-only, Paeth → Sub, since
/// `paeth(a, 0, 0) = a`). Byte-identical to [`unfilter_generic`].
fn unfilter(f: u8, src: &[u8], prev: &[u8], bpp: usize, cur: &mut [u8]) -> Result<()> {
    if f > 4 {
        return Err(Error::Invalid {
            what: "PNG filter",
            detail: "type > 4",
        });
    }
    let n = src.len().min(bpp);
    match (f, prev.is_empty()) {
        (0, _) | (2, true) => cur.copy_from_slice(src),
        (1, _) | (4, true) => match bpp {
            3 => unfilter_sub::<3>(src, cur),
            4 => unfilter_sub::<4>(src, cur),
            _ => unfilter_sub_dyn(src, bpp, cur),
        },
        (2, false) => {
            for ((o, &s), &b) in cur.iter_mut().zip(src).zip(prev) {
                *o = s.wrapping_add(b);
            }
        }
        (3, true) => {
            cur[..n].copy_from_slice(&src[..n]);
            for i in bpp..src.len() {
                cur[i] = src[i].wrapping_add(cur[i - bpp] / 2);
            }
        }
        (3, false) => {
            for i in 0..n {
                cur[i] = src[i].wrapping_add(prev[i] / 2);
            }
            match bpp {
                3 => unfilter_avg_tail::<3>(src, prev, cur),
                4 => unfilter_avg_tail::<4>(src, prev, cur),
                _ => {
                    for i in bpp..src.len() {
                        let p = ((cur[i - bpp] as u16 + prev[i] as u16) / 2) as u8;
                        cur[i] = src[i].wrapping_add(p);
                    }
                }
            }
        }
        (4, false) => {
            for i in 0..n {
                cur[i] = src[i].wrapping_add(prev[i]);
            }
            match bpp {
                3 => unfilter_paeth_tail::<3>(src, prev, cur),
                4 => unfilter_paeth_tail::<4>(src, prev, cur),
                _ => {
                    for i in bpp..src.len() {
                        cur[i] = src[i].wrapping_add(paeth(cur[i - bpp], prev[i], prev[i - bpp]));
                    }
                }
            }
        }
        _ => unreachable!("filter type validated above"),
    }
    Ok(())
}

/// Sub unfilter (also Paeth's first row): loop-carried at distance `N`,
/// with `N` known at compile time so the bounds and offsets fold away.
#[inline]
fn unfilter_sub<const N: usize>(src: &[u8], cur: &mut [u8]) {
    let n = src.len().min(N);
    cur[..n].copy_from_slice(&src[..n]);
    for i in N..src.len() {
        cur[i] = src[i].wrapping_add(cur[i - N]);
    }
}

fn unfilter_sub_dyn(src: &[u8], bpp: usize, cur: &mut [u8]) {
    let n = src.len().min(bpp);
    cur[..n].copy_from_slice(&src[..n]);
    for i in bpp..src.len() {
        cur[i] = src[i].wrapping_add(cur[i - bpp]);
    }
}

/// Average unfilter past the first pixel, compile-time bpp.
#[inline]
fn unfilter_avg_tail<const N: usize>(src: &[u8], prev: &[u8], cur: &mut [u8]) {
    for i in N..src.len() {
        let p = ((cur[i - N] as u16 + prev[i] as u16) / 2) as u8;
        cur[i] = src[i].wrapping_add(p);
    }
}

/// Paeth unfilter past the first pixel, compile-time bpp.
#[inline]
fn unfilter_paeth_tail<const N: usize>(src: &[u8], prev: &[u8], cur: &mut [u8]) {
    for i in N..src.len() {
        cur[i] = src[i].wrapping_add(paeth(cur[i - N], prev[i], prev[i - N]));
    }
}

/// The original byte-at-a-time unfilter loop, kept as the semantic
/// reference for the proptests.
#[cfg(test)]
fn unfilter_generic(f: u8, src: &[u8], prev: &[u8], bpp: usize, cur: &mut [u8]) {
    for i in 0..src.len() {
        let a = if i >= bpp { cur[i - bpp] } else { 0 };
        let b = if prev.is_empty() { 0 } else { prev[i] };
        let c = if i >= bpp && !prev.is_empty() {
            prev[i - bpp]
        } else {
            0
        };
        cur[i] = match f {
            0 => src[i],
            1 => src[i].wrapping_add(a),
            2 => src[i].wrapping_add(b),
            3 => src[i].wrapping_add(((a as u16 + b as u16) / 2) as u8),
            _ => src[i].wrapping_add(paeth(a, b, c)),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Rect;

    fn test_image(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h).unwrap();
        for y in 0..h {
            for x in 0..w {
                img.set_pixel(
                    x,
                    y,
                    [(x * 7) as u8, (y * 11) as u8, ((x + y) * 3) as u8, 255],
                );
            }
        }
        img
    }

    #[test]
    fn round_trip_rgb() {
        let img = test_image(37, 23);
        let png = encode(
            &img,
            PngOptions {
                color: PngColor::Rgb,
                level: Level::Default,
            },
        );
        let back = decode(&png).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn round_trip_rgba() {
        let mut img = test_image(16, 16);
        img.set_pixel(3, 3, [10, 20, 30, 128]); // non-opaque alpha
        let png = encode(
            &img,
            PngOptions {
                color: PngColor::Rgba,
                level: Level::Default,
            },
        );
        let back = decode(&png).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn one_by_one() {
        let img = Image::filled(1, 1, [9, 8, 7, 255]).unwrap();
        for color in [PngColor::Rgb, PngColor::Rgba] {
            let png = encode(
                &img,
                PngOptions {
                    color,
                    level: Level::Default,
                },
            );
            assert_eq!(decode(&png).unwrap(), img);
        }
    }

    #[test]
    fn flat_image_compresses_hard() {
        let img = Image::filled(256, 256, [240, 240, 240, 255]).unwrap();
        let png = encode(&img, PngOptions::default());
        assert!(
            png.len() < 1000,
            "flat 256x256 should be tiny, got {}",
            png.len()
        );
        assert_eq!(decode(&png).unwrap(), img);
    }

    #[test]
    fn ui_like_image_beats_raw_substantially() {
        // Text-ish content: sparse dark pixels on a light background.
        let mut img = Image::filled(320, 200, [250, 250, 250, 255]).unwrap();
        for i in 0..600u32 {
            let x = (i * 37) % 320;
            let y = (i * 17) % 200;
            img.fill_rect(Rect::new(x, y, 3, 1), [20, 20, 20, 255]);
        }
        let png = encode(&img, PngOptions::default());
        let raw = 320 * 200 * 4;
        assert!(png.len() * 10 < raw, "png {} vs raw {raw}", png.len());
        assert_eq!(decode(&png).unwrap(), img);
    }

    #[test]
    fn signature_and_chunk_layout() {
        let img = Image::filled(2, 2, [1, 2, 3, 255]).unwrap();
        let png = encode(&img, PngOptions::default());
        assert_eq!(&png[..8], &SIGNATURE);
        assert_eq!(&png[12..16], b"IHDR");
        // IHDR body: width=2, height=2, depth 8, colour 2.
        assert_eq!(&png[16..20], &2u32.to_be_bytes());
        assert_eq!(&png[20..24], &2u32.to_be_bytes());
        assert_eq!(png[24], 8);
        assert_eq!(png[25], 2);
        // Last 12 bytes are the IEND chunk with its fixed CRC.
        let tail = &png[png.len() - 12..];
        assert_eq!(&tail[4..8], b"IEND");
        assert_eq!(&tail[8..12], &0xAE42_6082u32.to_be_bytes());
    }

    #[test]
    fn corrupted_crc_rejected() {
        let img = test_image(8, 8);
        let mut png = encode(&img, PngOptions::default());
        // Flip a byte inside the IDAT body (after signature + IHDR chunk).
        let idx = 8 + 25 + 20;
        png[idx] ^= 0xff;
        assert!(decode(&png).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let img = test_image(8, 8);
        let png = encode(&img, PngOptions::default());
        for cut in [0, 4, 8, 20, png.len() - 13, png.len() - 1] {
            assert!(decode(&png[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_dimensions_rejected() {
        let img = Image::filled(2, 2, [0, 0, 0, 255]).unwrap();
        let mut png = encode(&img, PngOptions::default());
        // Overwrite IHDR width with a huge value and fix the CRC.
        png[16..20].copy_from_slice(&0xffff_fff0u32.to_be_bytes());
        let mut crc = Crc32::new();
        crc.update(b"IHDR");
        crc.update(&png[16..29]);
        let crc_pos = 29;
        png[crc_pos..crc_pos + 4].copy_from_slice(&crc.finish().to_be_bytes());
        assert!(matches!(decode(&png), Err(Error::BadDimensions { .. })));
    }

    #[test]
    fn all_filters_exercised() {
        // Gradient images favour Sub/Up/Average/Paeth on different rows; the
        // decoder must handle whatever the chooser picked. Verify via a
        // spread of content types.
        type PixelFn = fn(u32, u32) -> [u8; 4];
        let cases: Vec<(u32, u32, PixelFn)> = vec![
            (31, 17, |x, _y| [(x * 8) as u8, 0, 0, 255]),
            (17, 31, |_x, y| [0, (y * 8) as u8, 0, 255]),
            (23, 23, |x, y| {
                [(x ^ y) as u8, (x + y) as u8, (x * y) as u8, 255]
            }),
            (16, 16, |_, _| [128, 128, 128, 255]),
        ];
        for (w, h, f) in cases {
            let mut img = Image::new(w, h).unwrap();
            for y in 0..h {
                for x in 0..w {
                    img.set_pixel(x, y, f(x, y));
                }
            }
            let png = encode(&img, PngOptions::default());
            assert_eq!(decode(&png).unwrap(), img, "{w}x{h}");
        }
    }

    #[test]
    fn decode_never_panics_on_noise() {
        let mut state = 0x13572468u32;
        for len in 0..256 {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                *b = (state >> 24) as u8;
            }
            let _ = decode(&buf);
            // Also with a valid signature prefix.
            if len >= 8 {
                buf[..8].copy_from_slice(&SIGNATURE);
                let _ = decode(&buf);
            }
        }
    }

    #[test]
    fn paeth_matches_spec_cases() {
        assert_eq!(paeth(0, 0, 0), 0);
        assert_eq!(paeth(10, 0, 0), 10); // p=10, pa=0
        assert_eq!(paeth(0, 10, 0), 10); // pb=0
        assert_eq!(paeth(5, 5, 5), 5);
        assert_eq!(paeth(100, 200, 150), 150); // p=150, pc=0
    }

    mod filter_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            // The specialised apply passes must match the generic loop for
            // every filter type and bpp, with and without a previous row.
            #[test]
            fn specialised_apply_matches_generic(
                pixels in proptest::collection::vec(any::<u8>(), 1..96),
                prev_pixels in proptest::collection::vec(any::<u8>(), 1..96),
                f in 0u8..5,
                bpp in (0usize..3).prop_map(|i| [1, 3, 4][i]),
            ) {
                let stride = pixels.len().max(prev_pixels.len()) * bpp;
                let cur: Vec<u8> = pixels.iter().cycle().take(stride).copied().collect();
                let prev: Vec<u8> = prev_pixels.iter().cycle().take(stride).copied().collect();
                let mut fast = vec![0u8; stride];
                let mut slow = vec![0u8; stride];
                apply_filter(f, &cur, &prev, bpp, &mut fast);
                apply_filter_generic(f, &cur, &prev, bpp, &mut slow);
                prop_assert_eq!(&fast, &slow, "filter {} bpp {}", f, bpp);
            }

            // ...and the specialised unfilter passes likewise, including the
            // first-row (empty prev) degenerate forms.
            #[test]
            fn specialised_unfilter_matches_generic(
                src in proptest::collection::vec(any::<u8>(), 1..384),
                prev in proptest::collection::vec(any::<u8>(), 0..384),
                f in 0u8..5,
                bpp in (0usize..3).prop_map(|i| [1, 3, 4][i]),
            ) {
                let n = src.len().min(prev.len());
                let (src, prev) = if prev.is_empty() {
                    (&src[..], &prev[..])
                } else {
                    (&src[..n], &prev[..n])
                };
                let mut fast = vec![0u8; src.len()];
                let mut slow = vec![0u8; src.len()];
                unfilter(f, src, prev, bpp, &mut fast).unwrap();
                unfilter_generic(f, src, prev, bpp, &mut slow);
                prop_assert_eq!(&fast, &slow, "filter {} bpp {}", f, bpp);
            }

            // Every filter type round-trips through apply + unfilter at
            // every bpp, for both the first row and an interior row.
            #[test]
            fn filter_unfilter_round_trip(
                pixels in proptest::collection::vec(any::<u8>(), 1..96),
                prev_pixels in proptest::collection::vec(any::<u8>(), 1..96),
                f in 0u8..5,
                bpp in (0usize..3).prop_map(|i| [1, 3, 4][i]),
                first_row in any::<bool>(),
            ) {
                let stride = pixels.len().max(prev_pixels.len()) * bpp;
                let cur: Vec<u8> = pixels.iter().cycle().take(stride).copied().collect();
                let prev: Vec<u8> = if first_row {
                    vec![0u8; stride]
                } else {
                    prev_pixels.iter().cycle().take(stride).copied().collect()
                };
                let mut ftd = vec![0u8; stride];
                apply_filter(f, &cur, &prev, bpp, &mut ftd);
                // The decoder passes an empty prev for the first row.
                let dec_prev: &[u8] = if first_row { &[] } else { &prev };
                let mut back = vec![0u8; stride];
                unfilter(f, &ftd, dec_prev, bpp, &mut back).unwrap();
                prop_assert_eq!(&back, &cur, "filter {} bpp {}", f, bpp);
            }
        }
    }
}
