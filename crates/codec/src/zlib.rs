//! zlib container (RFC 1950): 2-byte header, DEFLATE body, Adler-32 trailer.

use crate::checksum::adler32;
use crate::deflate::{self, Level};
use crate::{Error, Result};

/// Compress `data` into a zlib stream.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    // CMF: CM=8 (deflate), CINFO=7 (32K window) -> 0x78.
    out.push(0x78);
    // FLG: FLEVEL bits, FDICT=0, FCHECK so that (CMF<<8 | FLG) % 31 == 0.
    let flevel: u8 = match level {
        Level::Store | Level::Fast => 0,
        Level::Default => 2,
        Level::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = ((0x78u16 << 8) | flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(flg);
    out.extend_from_slice(&deflate::deflate(data, level));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompress a zlib stream, bounding output at `max_out` bytes.
pub fn decompress(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    if data.len() < 6 {
        return Err(Error::Truncated("zlib stream"));
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0f != 8 {
        return Err(Error::Invalid {
            what: "zlib header",
            detail: "compression method not 8",
        });
    }
    if !((cmf as u16) << 8 | flg as u16).is_multiple_of(31) {
        return Err(Error::Invalid {
            what: "zlib header",
            detail: "FCHECK failed",
        });
    }
    if flg & 0x20 != 0 {
        return Err(Error::Unsupported("zlib preset dictionary"));
    }
    let body = &data[2..data.len() - 4];
    let out = deflate::inflate(body, max_out)?;
    let stored = u32::from_be_bytes([
        data[data.len() - 4],
        data[data.len() - 3],
        data[data.len() - 2],
        data[data.len() - 1],
    ]);
    if adler32(&out) != stored {
        return Err(Error::ChecksumMismatch("Adler-32"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_levels() {
        let data = b"zlib container round trip ".repeat(100);
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            assert_eq!(decompress(&c, 1 << 20).unwrap(), data);
        }
    }

    #[test]
    fn header_check_valid() {
        let c = compress(b"x", Level::Default);
        assert_eq!(((c[0] as u16) << 8 | c[1] as u16) % 31, 0);
        assert_eq!(c[0], 0x78);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut c = compress(b"hello zlib", Level::Default);
        let n = c.len();
        c[n - 1] ^= 0xff;
        assert_eq!(
            decompress(&c, 1 << 20),
            Err(Error::ChecksumMismatch("Adler-32"))
        );
    }

    #[test]
    fn bad_method_rejected() {
        let mut c = compress(b"hello", Level::Default);
        c[0] = 0x79; // CM = 9
        assert!(matches!(
            decompress(&c, 1 << 20),
            Err(Error::Invalid { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let c = compress(b"hello", Level::Default);
        assert_eq!(
            decompress(&c[..3], 1 << 20),
            Err(Error::Truncated("zlib stream"))
        );
    }

    #[test]
    fn fcheck_enforced() {
        let mut c = compress(b"hello", Level::Default);
        c[1] ^= 0x01;
        assert!(matches!(
            decompress(&c, 1 << 20),
            Err(Error::Invalid { .. })
        ));
    }

    #[test]
    fn empty_round_trip() {
        let c = compress(b"", Level::Default);
        assert_eq!(decompress(&c, 16).unwrap(), b"");
    }
}
