//! LSB-first bit I/O as used by DEFLATE (RFC 1951 §3.1.1).

use crate::{Error, Result};

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    /// Bit accumulator.
    acc: u32,
    /// Number of valid bits in `acc`.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 24 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u32) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (0..=16); the first bit read is the LSB of the result.
    pub fn read_bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 16);
        if n == 0 {
            return Ok(0);
        }
        self.refill();
        if self.nbits < n {
            return Err(Error::Truncated("deflate bitstream"));
        }
        let v = self.acc & ((1u32 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<u32> {
        self.read_bits(1)
    }

    /// Discard bits to the next byte boundary (for stored blocks).
    pub fn align_to_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Read `n` whole bytes after aligning (stored-block payload).
    pub fn read_aligned_bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        self.align_to_byte();
        let mut out = Vec::with_capacity(n);
        // Drain accumulator first.
        while self.nbits >= 8 && out.len() < n {
            out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
        let remaining = n - out.len();
        if self.data.len() - self.pos < remaining {
            return Err(Error::Truncated("deflate stored block"));
        }
        out.extend_from_slice(&self.data[self.pos..self.pos + remaining]);
        self.pos += remaining;
        Ok(out)
    }

    /// Bytes fully consumed from the underlying slice (after the current
    /// accumulator content is accounted for).
    pub fn bytes_consumed(&self) -> usize {
        self.pos - (self.nbits as usize).div_ceil(8)
    }
}

/// Writes bits LSB-first into a growing byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `n` bits of `value` (first bit written = LSB of value).
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1u32 << n));
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Write a Huffman code of `len` bits. DEFLATE packs Huffman codes
    /// starting from the most-significant bit, so the code is bit-reversed
    /// before LSB-first emission.
    pub fn write_code(&mut self, code: u32, len: u32) {
        self.write_bits(reverse_bits(code, len), len);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Append whole bytes (caller must be byte-aligned).
    pub fn write_aligned_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_aligned_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Current length in whole bits (for cost accounting).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Finish, flushing any partial byte with zero padding.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// Reverse the low `len` bits of `code`.
pub fn reverse_bits(code: u32, len: u32) -> u32 {
    let mut v = 0;
    for i in 0..len {
        if code & (1 << i) != 0 {
            v |= 1 << (len - 1 - i);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11, 2);
        w.write_bits(0x5a5a, 16);
        w.write_bits(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert_eq!(r.read_bits(16).unwrap(), 0x5a5a);
        assert_eq!(r.read_bit().unwrap(), 1);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_aligned_bytes(&[0xaa, 0xbb]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        assert_eq!(r.read_aligned_bytes(2).unwrap(), vec![0xaa, 0xbb]);
    }

    #[test]
    fn truncation_detected() {
        let mut r = BitReader::new(&[0xff]);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
    }

    #[test]
    fn read_aligned_bytes_drains_accumulator() {
        // Fill the reader accumulator first, then ask for aligned bytes.
        let data = [0x01, 0x02, 0x03, 0x04, 0x05];
        let mut r = BitReader::new(&data);
        assert_eq!(r.read_bits(4).unwrap(), 0x1);
        let got = r.read_aligned_bytes(3).unwrap();
        assert_eq!(got, vec![0x02, 0x03, 0x04]);
    }
}
