//! Canonical Huffman codes: construction from code lengths (RFC 1951
//! §3.2.2), bit-serial decoding, and a length-limited code builder for the
//! compressor (zlib-style overflow repair).

use crate::deflate::bits::BitReader;
use crate::{Error, Result};

/// Maximum code length allowed in the litlen/dist alphabets.
pub const MAX_BITS: usize = 15;

/// An encoder-side canonical code table: per-symbol (code, length).
#[derive(Debug, Clone)]
pub struct EncTable {
    /// `code[i]` is the canonical code for symbol i (0 if unused).
    pub codes: Vec<u16>,
    /// `lens[i]` is the code length for symbol i (0 if unused).
    pub lens: Vec<u8>,
}

impl EncTable {
    /// Build canonical codes from code lengths.
    pub fn from_lens(lens: &[u8]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut bl_count = vec![0u16; max_len + 1];
        for &l in lens {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u16; max_len + 2];
        let mut code = 0u16;
        for bits in 1..=max_len {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = vec![0u16; lens.len()];
        for (i, &l) in lens.iter().enumerate() {
            if l > 0 {
                codes[i] = next_code[l as usize];
                next_code[l as usize] += 1;
            }
        }
        EncTable {
            codes,
            lens: lens.to_vec(),
        }
    }
}

/// A decoder for one canonical Huffman code, using the count/offset
/// bit-serial algorithm (puff-style): O(code length) per symbol, no large
/// tables, and total over arbitrary inputs.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// count[len] = number of codes of that length.
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Decoder {
    /// Build from per-symbol code lengths. Lengths of zero mean the symbol
    /// is absent. Returns an error for over-subscribed codes.
    pub fn from_lens(lens: &[u8]) -> Result<Self> {
        let mut count = [0u16; MAX_BITS + 1];
        for &l in lens {
            if l as usize > MAX_BITS {
                return Err(Error::Invalid {
                    what: "huffman code",
                    detail: "length > 15",
                });
            }
            count[l as usize] += 1;
        }
        if count[0] as usize == lens.len() {
            return Err(Error::Invalid {
                what: "huffman code",
                detail: "no symbols",
            });
        }
        // Check for over-subscription (Kraft sum must not exceed 1).
        let mut left = 1i32;
        for &c in count.iter().skip(1) {
            left <<= 1;
            left -= c as i32;
            if left < 0 {
                return Err(Error::Invalid {
                    what: "huffman code",
                    detail: "over-subscribed",
                });
            }
        }
        // Offsets of the first symbol of each length into `symbols`.
        let mut offs = [0u16; MAX_BITS + 2];
        #[allow(clippy::needless_range_loop)] // offs[len+1] from offs[len]: a true prefix sum
        for len in 1..=MAX_BITS {
            offs[len + 1] = offs[len] + count[len];
        }
        let mut symbols = vec![0u16; lens.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lens.iter().enumerate() {
            if l > 0 {
                symbols[offs[l as usize] as usize] = sym as u16;
                offs[l as usize] += 1;
            }
        }
        Ok(Decoder { count, symbols })
    }

    /// Decode one symbol from the bit reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: u32 = 0;
        for len in 1..=MAX_BITS {
            code |= r.read_bit()?;
            let cnt = self.count[len] as u32;
            if code < first + cnt {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err(Error::Invalid {
            what: "huffman code",
            detail: "invalid code word",
        })
    }
}

/// Compute length-limited Huffman code lengths for the given symbol
/// frequencies using the package-merge algorithm (Larmore & Hirschberg).
///
/// Returns a `lens` vector parallel to `freqs` with lengths in
/// `0..=max_len`, forming an *optimal, complete* canonical code (Kraft sum
/// exactly 1) whenever at least two symbols are present.
pub fn build_lengths(freqs: &[u32], max_len: usize) -> Vec<u8> {
    assert!(max_len <= MAX_BITS);
    let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u8; freqs.len()];
    match active.len() {
        0 => return lens,
        1 => {
            // A single symbol still needs one bit on the wire.
            lens[active[0]] = 1;
            return lens;
        }
        _ => {}
    }
    let n = active.len();
    assert!(
        n <= (1usize << max_len),
        "alphabet too large for length limit"
    );

    // A list element: accumulated weight plus the indices (into `active`)
    // of every leaf it contains.
    #[derive(Clone)]
    struct Elem {
        weight: u64,
        leaves: Vec<u16>,
    }

    // Leaf items sorted by (weight, symbol) for determinism.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&k| (freqs[active[k]], active[k]));
    let items: Vec<Elem> = order
        .iter()
        .map(|&k| Elem {
            weight: freqs[active[k]] as u64,
            leaves: vec![k as u16],
        })
        .collect();

    // list_1 = items; list_j = merge(items, package(list_{j-1})).
    let mut list = items.clone();
    for _ in 1..max_len {
        // Package: pair consecutive elements, dropping an odd trailing one.
        let mut packages = Vec::with_capacity(list.len() / 2);
        let mut it = list.chunks_exact(2);
        for pair in &mut it {
            let mut leaves = pair[0].leaves.clone();
            leaves.extend_from_slice(&pair[1].leaves);
            packages.push(Elem {
                weight: pair[0].weight + pair[1].weight,
                leaves,
            });
        }
        // Merge items and packages by weight (stable: items first on ties).
        let mut merged = Vec::with_capacity(items.len() + packages.len());
        let (mut i, mut p) = (0, 0);
        while i < items.len() || p < packages.len() {
            let take_item =
                p >= packages.len() || (i < items.len() && items[i].weight <= packages[p].weight);
            if take_item {
                merged.push(items[i].clone());
                i += 1;
            } else {
                merged.push(packages[p].clone());
                p += 1;
            }
        }
        list = merged;
    }

    // The first 2n-2 elements of the final list: each appearance of a leaf
    // adds one to its code length.
    let mut depth = vec![0u8; n];
    for elem in list.iter().take(2 * n - 2) {
        for &leaf in &elem.leaves {
            depth[leaf as usize] += 1;
        }
    }
    for (k, &sym) in active.iter().enumerate() {
        lens[sym] = depth[k];
    }
    lens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::bits::BitWriter;

    fn kraft(lens: &[u8]) -> f64 {
        lens.iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum()
    }

    #[test]
    fn canonical_codes_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let t = EncTable::from_lens(&lens);
        assert_eq!(
            t.codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn decoder_inverts_encoder() {
        let lens = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let enc = EncTable::from_lens(&lens);
        let dec = Decoder::from_lens(&lens).unwrap();
        let mut w = BitWriter::new();
        let seq: Vec<u16> = vec![0, 5, 7, 3, 6, 1, 2, 4, 5, 5];
        for &s in &seq {
            w.write_code(enc.codes[s as usize] as u32, enc.lens[s as usize] as u32);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &seq {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(Decoder::from_lens(&[1, 1, 1]).is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Decoder::from_lens(&[0, 0, 0]).is_err());
    }

    #[test]
    fn build_lengths_two_symbols() {
        let lens = build_lengths(&[5, 3], 15);
        assert_eq!(lens, vec![1, 1]);
        assert!((kraft(&lens) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn build_lengths_single_symbol() {
        let lens = build_lengths(&[0, 7, 0], 15);
        assert_eq!(lens, vec![0, 1, 0]);
    }

    #[test]
    fn build_lengths_skewed_complete() {
        let freqs = [1000, 500, 250, 125, 60, 30, 15, 7, 3, 1];
        let lens = build_lengths(&freqs, 15);
        assert!(
            (kraft(&lens) - 1.0).abs() < 1e-9,
            "kraft = {}",
            kraft(&lens)
        );
        // More frequent symbols must not get longer codes.
        for i in 1..freqs.len() {
            assert!(lens[i] >= lens[i - 1]);
        }
        // Must be decodable.
        Decoder::from_lens(&lens).unwrap();
    }

    #[test]
    fn build_lengths_respects_limit() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let mut freqs = vec![0u32; 40];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        let lens = build_lengths(&freqs, 7);
        assert!(lens.iter().all(|&l| l <= 7), "lens {lens:?}");
        assert!(
            (kraft(&lens) - 1.0).abs() < 1e-9,
            "kraft = {}",
            kraft(&lens)
        );
        Decoder::from_lens(&lens).unwrap();
    }

    #[test]
    fn build_lengths_uniform() {
        let lens = build_lengths(&[1; 256], 15);
        assert!(lens.iter().all(|&l| l == 8));
    }
}
